//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box` — measuring median wall-clock time over a fixed number of
//! timed batches and printing one line per benchmark.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    batches: usize,
}

impl Bencher {
    /// Times `routine`, collecting one sample per batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and per-batch iteration sizing: target ~20ms per batch.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(per_batch).expect("clamped to 10000"));
        }
    }

    fn median(&mut self) -> Duration {
        self.samples.sort_unstable();
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.sample_size = samples.max(3);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let name = format!("{}/{id}", self.name);
        self.criterion.run_one(&name, |b| f(b));
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let name = format!("{}/{id}", self.name);
        self.criterion.run_one(&name, |b| f(b, input));
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        self.run_one(&id.to_string(), |b| f(b));
    }

    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            batches: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median();
        println!("bench: {name:<50} {median:>12.2?}/iter");
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
