//! Offline vendored stand-in for `serde_json`: JSON text printing and
//! parsing over the vendored [`serde::Value`] tree.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as human-indented JSON.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors serde_json.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on non-UTF-8 input, malformed JSON or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(Error::custom)?;
    from_str(text)
}

fn print_value(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
                // `{}` prints integral floats without a fraction; those are
                // stored as Value::Int by the vendored serde, so a bare
                // integer here can only come from a hand-built Float.
            } else {
                out.push_str("null"); // serde_json's behaviour for non-finite
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Array(items) => print_seq(items.iter(), '[', ']', indent, depth, out, |v, out| {
            print_value(v, indent, depth + 1, out);
        }),
        Value::Object(fields) => {
            print_seq(
                fields.iter(),
                '{',
                '}',
                indent,
                depth,
                out,
                |(k, v), out| {
                    print_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    print_value(v, indent, depth + 1, out);
                },
            );
        }
    }
}

fn print_seq<I: ExactSizeIterator>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut print_item: impl FnMut(I::Item, &mut String),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        print_item(item, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::custom)?,
                                16,
                            )
                            .map_err(Error::custom)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                None => return Err(Error("unterminated string".into())),
                _ => unreachable!("loop stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::custom)?;
        if !float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Float(2.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".into(), Value::Str("x \"y\"\n".into())),
        ]);
        for pretty in [false, true] {
            let mut text = String::new();
            print_value(&v, if pretty { Some(2) } else { None }, 0, &mut text);
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let xs = vec![8.1f64, 0.30000000000000004, 1e-9, -2.5];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }
}
