//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supported shapes — the ones this workspace
//! uses:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit variants only (serialized as the variant name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    let body = match &ty.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{0}::{1} => serde::Value::Str(\"{1}\".to_string())",
                        ty.name, v
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {} {{ fn to_value(&self) -> serde::Value {{ {} }} }}",
        ty.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse_type(input);
    let name = &ty.name;
    let body = match &ty.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.default {
                        format!(
                            "{0}: match value.get(\"{0}\") {{ \
                               Some(v) => serde::Deserialize::from_value(v)?, \
                               None => Default::default() }}",
                            f.name
                        )
                    } else {
                        format!(
                            "{0}: serde::Deserialize::from_value(value.get(\"{0}\")\
                               .ok_or_else(|| serde::Error::custom(\"missing field `{0}` in {1}\"))?)?",
                            f.name, name
                        )
                    }
                })
                .collect();
            format!(
                "if value.as_object().is_none() {{ \
                   return Err(serde::Error::custom(\"expected object for {name}\")); }} \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array()\
                   .ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?; \
                 if items.len() != {n} {{ \
                   return Err(serde::Error::custom(\"expected {n} elements for {name}\")); }} \
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match value {{ \
                   serde::Value::Str(s) => match s.as_str() {{ {}, \
                     other => Err(serde::Error::custom(format!(\
                       \"unknown {name} variant `{{other}}`\"))) }}, \
                   other => Err(serde::Error::custom(format!(\
                     \"expected string for {name}, got {{other:?}}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{ \
           fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct ParsedType {
    name: String,
    shape: Shape,
}

/// Parses `struct Name { ... }`, `struct Name(...)`, or `enum Name { ... }`
/// from the derive input, skipping attributes, visibility and `where`-less
/// bodies. Generics are rejected (nothing in this workspace derives on a
/// generic type).
fn parse_type(input: TokenStream) -> ParsedType {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" | "crate" => {}
                    "struct" | "enum" => {
                        kind = Some(s);
                        if let Some(TokenTree::Ident(n)) = tokens.next() {
                            name = Some(n.to_string());
                        }
                        break;
                    }
                    _ => {}
                }
            }
            TokenTree::Group(_) => {} // pub(crate) restriction group
            _ => {}
        }
    }
    let kind = kind.expect("derive input contains `struct` or `enum`");
    let name = name.expect("type name follows the keyword");

    // The next group is the body; a `<` first would mean generics.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde derive does not support generic types")
            }
            Some(_) => {}
            None => panic!("type body not found for {name}"),
        }
    };

    let shape = if kind == "enum" {
        Shape::UnitEnum(parse_unit_variants(body.stream()))
    } else {
        match body.delimiter() {
            Delimiter::Brace => Shape::Named(parse_named_fields(body.stream())),
            Delimiter::Parenthesis => Shape::Tuple(count_tuple_fields(body.stream())),
            d => panic!("unsupported struct body delimiter {d:?} for {name}"),
        }
    };
    ParsedType { name, shape }
}

/// Parses `ident: Type, ...` fields, honouring `#[serde(default)]` and
/// skipping other attributes and visibility. Commas inside angle brackets
/// (e.g. `BTreeMap<String, u32>`) are not field separators.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let mut default = false;
        // Attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        let attr = g.stream().to_string();
                        if attr.starts_with("serde") && attr.contains("default") {
                            default = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Possible pub(crate)-style restriction follows.
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        let _ = tokens.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token {other} in struct body"),
            }
        };
        fields.push(Field { name, default });
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

/// Counts tuple-struct fields by top-level commas.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tt in body {
        saw_token = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would overcount by one; none of our types use one.
    if saw_token {
        count + 1
    } else {
        0
    }
}

/// Parses unit enum variants, rejecting data-carrying ones.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next(); // attribute group
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                match tokens.peek() {
                    Some(TokenTree::Group(_)) => {
                        panic!("vendored serde derive supports unit enum variants only")
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                        panic!("vendored serde derive does not support discriminants")
                    }
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token {other} in enum body"),
        }
    }
    variants
}
