//! Offline vendored stand-in for `serde`.
//!
//! The build container has no network access, so this crate provides the
//! subset of serde's surface this workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over an in-memory JSON-like
//! [`Value`] tree, plus derive macros re-exported from `serde_derive`
//! (supporting named-field structs, newtype/tuple structs and
//! unit-variant enums, with the `#[serde(default)]` field attribute).
//!
//! The `serde_json` vendor crate layers text parsing/printing on top.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value tree: the data model of this vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number (round-trips u64/i64 exactly).
    Int(i128),
    /// Non-integral JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list (preserves field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object value by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value` does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {got:?}")))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t)))),
                    other => type_error("integer", other),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.fract() == 0.0 && self.is_finite() && self.abs() < 1e15 {
            // Integral floats print without a fraction anyway; storing them
            // as ints keeps text round trips exact.
            Value::Int(*self as i128)
        } else {
            Value::Float(*self)
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => type_error("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Keys are not restricted to strings, so maps serialize as arrays
        // of `[key, value]` pairs (round-trippable for any key type).
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => type_error("array of [key, value] pairs", other),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => type_error("2-element array", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
