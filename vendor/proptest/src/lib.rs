//! Offline vendored stand-in for `proptest`.
//!
//! Provides the macro surface this workspace's property tests use —
//! `proptest!`, `prop_compose!`, `prop_assert!`, `prop_assert_eq!`,
//! `any`, range strategies, `ProptestConfig::with_cases`,
//! `proptest::collection::vec` — running each test as a fixed number of
//! deterministic pseudo-random cases. There is no shrinking: a failing
//! case reports its index and seed, which together with the deterministic
//! generator makes it exactly reproducible.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, SampleUniform, SeedableRng};

/// Execution configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic case generator passed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for one test case.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator: the core abstraction of this mini-proptest.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.start..self.end)
    }
}

/// A strategy built from a sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(pub F);

impl<F: Fn(&mut TestRng) -> T, T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.rng().gen::<u64>()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.rng().gen::<i64>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}

/// Strategy for a whole type domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Tuples of strategies sample component-wise, left to right, mirroring
/// proptest's tuple strategies.
macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::Strategy;

    /// Vector length specification: a fixed size or a half-open range.
    pub trait VecLen {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut super::TestRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _: &mut super::TestRng) -> usize {
            *self
        }
    }

    impl VecLen for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut super::TestRng) -> usize {
            use rand::Rng as _;
            rng.rng().gen_range(self.start..self.end)
        }
    }

    /// Strategy for vectors of `inner`-generated elements.
    pub struct VecStrategy<S, L> {
        inner: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut super::TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.inner.sample(rng)).collect()
        }
    }

    /// A vector of `len` elements (fixed, or drawn from a range) each
    /// sampled from `inner`.
    #[must_use]
    pub fn vec<S: Strategy, L: VecLen>(inner: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { inner, len }
    }
}

/// Error type carried by `prop_assert!` failures.
pub type TestCaseError = String;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_compose, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// location information instead of panicking the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Defines a named strategy-producing function from component strategies,
/// mirroring proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Runs each contained test function over many deterministic random
/// cases, mirroring proptest's `proptest!` block syntax.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    // A fixed per-test seed stream: deterministic across
                    // runs, distinct across cases.
                    let seed = 0x5EED_0000_0000_0000u64 ^ u64::from(case);
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(message) = outcome {
                        panic!("property failed on case {case} (seed {seed:#x}): {message}");
                    }
                }
            }
        )+
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
