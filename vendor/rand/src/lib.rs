//! Offline vendored stand-in for `rand`.
//!
//! Provides the subset this workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over primitive integer/float ranges, `Rng::gen`, and
//! `SliceRandom::choose`. The generator is a fixed splitmix64-seeded
//! xoshiro256++ — deterministic per seed and stable across builds, which
//! is all the property tests and benchmarks need (the exact stream does
//! not have to match upstream `rand`).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly over a half-open range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self;
}

/// The user-facing generator interface.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: AsStdRng,
    {
        T::sample(self.as_std_rng(), range)
    }

    /// Samples a value of a `Standard`-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::generate(self.as_std_rng())
    }
}

/// Helper trait tying the object-safe [`Rng`] surface to the concrete
/// generator (this vendored crate has exactly one).
pub trait AsStdRng {
    /// The underlying concrete generator.
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// Types with a natural uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Generates one value.
    fn generate(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for bool {
    fn generate(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn generate(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn generate(rng: &mut rngs::StdRng) -> i64 {
        rng.next_u64() as i64
    }
}

macro_rules! sample_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut rngs::StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let offset = rng.bounded(span);
                ((range.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

sample_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f64 {
    fn sample(rng: &mut rngs::StdRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let unit = rng.unit_f64();
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut rngs::StdRng, range: Range<f32>) -> f32 {
        f64::sample(rng, f64::from(range.start)..f64::from(range.end)) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Uniform value in `[0, span)` (`span > 0`) via Lemire-style
        /// rejection-free multiply-shift (tiny bias is irrelevant here).
        pub(crate) fn bounded(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub(crate) fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{AsStdRng, Rng};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng + AsStdRng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: Rng + AsStdRng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = rng.as_std_rng().bounded(self.len() as u64) as usize;
                self.get(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&x));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
