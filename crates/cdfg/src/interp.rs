//! Reference interpreter for CDFGs.
//!
//! The interpreter computes each node's value in topological order using
//! wrapping 64-bit integer arithmetic. Synthesized datapaths (see the
//! `pchls-rtl` crate) are verified by comparing their cycle-accurate
//! simulation output against this interpreter on random stimuli.

use std::collections::BTreeMap;

use crate::error::CdfgError;
use crate::graph::{Cdfg, NodeId};
use crate::op::OpKind;

/// The value type flowing through a CDFG: a 64-bit two's-complement word.
pub type Value = i64;

/// A binding of primary-input names to values.
pub type Stimulus = BTreeMap<String, Value>;

/// Evaluates a [`Cdfg`] on concrete inputs.
///
/// # Example
///
/// ```
/// use pchls_cdfg::{CdfgBuilder, Interpreter, Stimulus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CdfgBuilder::new("g");
/// let x = b.input("x");
/// let y = b.input("y");
/// let s = b.add(x, y);
/// b.output("sum", s);
/// let g = b.finish()?;
///
/// let mut stim = Stimulus::new();
/// stim.insert("x".into(), 2);
/// stim.insert("y".into(), 40);
/// let out = Interpreter::new(&g).run(&stim)?;
/// assert_eq!(out["sum"], 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<'g> {
    graph: &'g Cdfg,
}

impl<'g> Interpreter<'g> {
    /// Creates an interpreter for `graph`.
    #[must_use]
    pub fn new(graph: &'g Cdfg) -> Interpreter<'g> {
        Interpreter { graph }
    }

    /// Runs the graph on `stimulus`, returning the value of every primary
    /// output by name.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownOp`] if `stimulus` lacks a value for
    /// some primary input (reported by input name).
    pub fn run(&self, stimulus: &Stimulus) -> Result<BTreeMap<String, Value>, CdfgError> {
        Ok(self
            .run_all(stimulus)?
            .into_iter()
            .filter_map(|(id, v)| {
                let n = self.graph.node(id);
                (n.kind() == OpKind::Output).then(|| (n.label().to_owned(), v))
            })
            .collect())
    }

    /// Runs the graph and returns the value computed at *every* node.
    ///
    /// Output nodes carry the value they export. Useful for cross-checking
    /// intermediate register contents in a simulated datapath.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interpreter::run`].
    pub fn run_all(&self, stimulus: &Stimulus) -> Result<BTreeMap<NodeId, Value>, CdfgError> {
        let mut values: Vec<Value> = vec![0; self.graph.len()];
        for &id in self.graph.topological() {
            let node = self.graph.node(id);
            let v = match node.kind() {
                OpKind::Input => *stimulus.get(node.label()).ok_or_else(|| {
                    CdfgError::UnknownOp(format!("missing input {}", node.label()))
                })?,
                OpKind::Add => {
                    let o = self.graph.operands(id);
                    values[o[0].index()].wrapping_add(values[o[1].index()])
                }
                OpKind::Sub => {
                    let o = self.graph.operands(id);
                    values[o[0].index()].wrapping_sub(values[o[1].index()])
                }
                OpKind::Mul => {
                    let o = self.graph.operands(id);
                    values[o[0].index()].wrapping_mul(values[o[1].index()])
                }
                OpKind::Comp => {
                    let o = self.graph.operands(id);
                    Value::from(values[o[0].index()] > values[o[1].index()])
                }
                OpKind::Output => values[self.graph.operands(id)[0].index()],
            };
            values[id.index()] = v;
        }
        Ok(self
            .graph
            .node_ids()
            .map(|id| (id, values[id.index()]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdfgBuilder;

    fn stim(pairs: &[(&str, Value)]) -> Stimulus {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    #[test]
    fn arithmetic_kinds() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let s = b.sub(x, y);
        let m = b.mul(x, y);
        let c = b.gt(x, y);
        b.output("a", a);
        b.output("s", s);
        b.output("m", m);
        b.output("c", c);
        let g = b.finish().unwrap();
        let out = Interpreter::new(&g)
            .run(&stim(&[("x", 7), ("y", 3)]))
            .unwrap();
        assert_eq!(out["a"], 10);
        assert_eq!(out["s"], 4);
        assert_eq!(out["m"], 21);
        assert_eq!(out["c"], 1);
    }

    #[test]
    fn comparison_is_strict() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.gt(x, y);
        b.output("c", c);
        let g = b.finish().unwrap();
        let it = Interpreter::new(&g);
        assert_eq!(it.run(&stim(&[("x", 3), ("y", 3)])).unwrap()["c"], 0);
        assert_eq!(it.run(&stim(&[("x", 4), ("y", 3)])).unwrap()["c"], 1);
        assert_eq!(it.run(&stim(&[("x", 2), ("y", 3)])).unwrap()["c"], 0);
    }

    #[test]
    fn wrapping_semantics() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        b.output("m", m);
        let g = b.finish().unwrap();
        let out = Interpreter::new(&g)
            .run(&stim(&[("x", i64::MAX), ("y", 2)]))
            .unwrap();
        assert_eq!(out["m"], i64::MAX.wrapping_mul(2));
    }

    #[test]
    fn missing_input_is_an_error() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        b.output("o", x);
        let g = b.finish().unwrap();
        let err = Interpreter::new(&g).run(&Stimulus::new()).unwrap_err();
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn run_all_exposes_intermediates() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let m = b.mul(a, a);
        b.output("o", m);
        let g = b.finish().unwrap();
        let all = Interpreter::new(&g)
            .run_all(&stim(&[("x", 2), ("y", 3)]))
            .unwrap();
        assert_eq!(all[&a], 5);
        assert_eq!(all[&m], 25);
    }
}
