//! Structural diffing of two CDFGs: [`diff`] matches the nodes of an
//! edited graph against a base graph and reports what changed — the
//! added/removed operations, the rewired region, and the *edit cone*
//! (every node whose dependence cone the edit intersects) as a
//! [`NodeSet`].
//!
//! The cone is the contract delta compilation is built on: a node
//! outside the cone has a bit-for-bit identical ancestor subgraph and
//! descendant subgraph in both graphs (under the node mapping), so any
//! per-node artifact derived purely from those cones — reachability
//! rows, ASAP levels, [`cone_fingerprints`](crate::cone_fingerprints)
//! — can be reused from the base graph without recomputation. The cone
//! is a conservative superset of where such artifacts change: staying
//! outside it is proof of reuse, being inside it is only suspicion of
//! change.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::{diff, CdfgBuilder, GraphEdit, OpKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CdfgBuilder::new("g");
//! let x = b.input("x");
//! let y = b.input("y");
//! let a = b.add(x, y);
//! b.output("o", a);
//! let base = b.finish()?;
//!
//! let mut edit = GraphEdit::new(&base);
//! edit.add_op(OpKind::Mul, &[a, a])?;
//! let edited = edit.finish()?;
//!
//! let delta = diff(&base, &edited);
//! assert_eq!(delta.added().len(), 1);
//! assert!(delta.removed().is_empty());
//! assert!(!delta.is_identity());
//! assert!(delta.cone_size() > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::analysis::NodeSet;
use crate::fingerprint::canonical_hashes;
use crate::graph::{Cdfg, NodeId};
use crate::op::OpKind;

/// The structural difference between a base graph and an edited graph,
/// produced by [`diff`].
///
/// Node ids of the two graphs are unrelated; the delta carries the
/// matching in both directions plus the derived change sets, all over
/// the *edited* graph's id universe unless noted otherwise.
#[derive(Debug, Clone)]
pub struct GraphDelta {
    base_len: usize,
    edited_len: usize,
    base_to_edited: Vec<Option<NodeId>>,
    edited_to_base: Vec<Option<NodeId>>,
    /// Edited-graph ids with no counterpart in the base, ascending.
    added: Vec<NodeId>,
    /// Base-graph ids with no counterpart in the edited graph, ascending.
    removed: Vec<NodeId>,
    /// Edited-graph nodes whose immediate structure changed: added
    /// nodes, nodes whose operand list differs under the mapping, and
    /// nodes whose out-edge multiset differs under the mapping.
    touched: NodeSet,
    /// Edited-graph nodes whose ancestor-side or descendant-side
    /// structure changed (touched nodes included): descendants of
    /// operand-side edits plus ancestors of out-edge-side edits.
    cone: NodeSet,
    degenerate: bool,
}

impl GraphDelta {
    /// Number of nodes in the base graph.
    #[must_use]
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of nodes in the edited graph.
    #[must_use]
    pub fn edited_len(&self) -> usize {
        self.edited_len
    }

    /// The edited-graph counterpart of base node `id`, if it survived
    /// the edit.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the base graph.
    #[must_use]
    pub fn map_base(&self, id: NodeId) -> Option<NodeId> {
        self.base_to_edited[id.index()]
    }

    /// The base-graph counterpart of edited node `id`, if it existed
    /// before the edit.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the edited graph.
    #[must_use]
    pub fn map_edited(&self, id: NodeId) -> Option<NodeId> {
        self.edited_to_base[id.index()]
    }

    /// Edited-graph ids of operations the edit added, ascending.
    #[must_use]
    pub fn added(&self) -> &[NodeId] {
        &self.added
    }

    /// Base-graph ids of operations the edit removed, ascending.
    #[must_use]
    pub fn removed(&self) -> &[NodeId] {
        &self.removed
    }

    /// Edited-graph nodes whose immediate structure changed (added,
    /// operand list rewired, or out-edge multiset changed).
    #[must_use]
    pub fn touched(&self) -> &NodeSet {
        &self.touched
    }

    /// The edit cone over the edited graph: the touched nodes, the
    /// descendants of every operand-side edit, and the ancestors of
    /// every out-edge-side edit. Nodes outside the cone have an
    /// edge-for-edge identical ancestor subgraph *and* descendant
    /// subgraph in both graphs under the mapping — so reachability
    /// rows, ASAP/ALAP levels and cone fingerprints are provably
    /// unchanged for them.
    #[must_use]
    pub fn cone(&self) -> &NodeSet {
        &self.cone
    }

    /// Number of edited-graph nodes inside the cone.
    #[must_use]
    pub fn cone_size(&self) -> usize {
        self.cone.count()
    }

    /// Whether the two graphs matched node-for-node with nothing
    /// touched: same length, identity mapping, empty cone. (Graph
    /// names are ignored by [`diff`].)
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.base_len == self.edited_len
            && !self.degenerate
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.touched.count() == 0
            && self
                .base_to_edited
                .iter()
                .enumerate()
                .all(|(i, m)| *m == Some(NodeId::new(i as u32)))
    }

    /// Whether the matcher could not produce an id-monotone mapping —
    /// the graphs are too dissimilar (or too symmetric) to diff
    /// reliably. The cone is the full edited graph in that case, so
    /// cone-size thresholds fall back to full recomputation naturally.
    #[must_use]
    pub fn degenerate(&self) -> bool {
        self.degenerate
    }

    /// The base counterpart of edited node `id` when the node is
    /// *clean*: mapped and outside the cone, i.e. every artifact
    /// derived from its dependence cones may be reused from the base.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the edited graph.
    #[must_use]
    pub fn clean_source(&self, id: NodeId) -> Option<NodeId> {
        if self.cone.contains(id) {
            None
        } else {
            self.edited_to_base[id.index()]
        }
    }
}

/// Matches the nodes of `edited` against `base` and computes the
/// [`GraphDelta`]: added/removed/rewired operations and the edit cone.
///
/// Matching is structural, not positional: nodes pair up by their
/// canonical dependence-cone hash (the per-node hash underlying
/// [`graph_fingerprint`](crate::graph_fingerprint)) first, then
/// leftovers pair by `(kind, label)` so the directly edited operations
/// still map when their cones changed. Graph names are ignored. The
/// result is exact for the edit APIs in this crate
/// ([`GraphEdit`](crate::GraphEdit)) and best-effort for arbitrary
/// graph pairs: when no id-monotone matching exists the delta is
/// marked [`degenerate`](GraphDelta::degenerate) with a full cone.
#[must_use]
pub fn diff(base: &Cdfg, edited: &Cdfg) -> GraphDelta {
    let canon_b = canonical_hashes(base);
    let canon_e = canonical_hashes(edited);

    // Primary matching key: canonical cone hash + kind + label. Nodes
    // untouched by the edit keep their canonical hash, so this pairs
    // the entire unchanged region. Classes are consumed in ascending
    // id order on both sides, which keeps equal-key ties monotone.
    let mut classes: HashMap<(u64, OpKind, &str), Vec<NodeId>> = HashMap::new();
    for node in edited.nodes().iter().rev() {
        classes
            .entry((canon_e[node.id().index()], node.kind(), node.label()))
            .or_default()
            .push(node.id());
    }

    let mut base_to_edited: Vec<Option<NodeId>> = vec![None; base.len()];
    let mut edited_to_base: Vec<Option<NodeId>> = vec![None; edited.len()];
    for node in base.nodes() {
        let key = (canon_b[node.id().index()], node.kind(), node.label());
        if let Some(class) = classes.get_mut(&key) {
            if let Some(e) = class.pop() {
                base_to_edited[node.id().index()] = Some(e);
                edited_to_base[e.index()] = Some(node.id());
            }
        }
    }

    // Secondary key for the leftovers (their cones changed): kind +
    // label. This recovers the directly edited nodes, whose labels are
    // stable under GraphEdit.
    let mut fallback: HashMap<(OpKind, &str), Vec<NodeId>> = HashMap::new();
    for node in edited.nodes().iter().rev() {
        if edited_to_base[node.id().index()].is_none() {
            fallback
                .entry((node.kind(), node.label()))
                .or_default()
                .push(node.id());
        }
    }
    for node in base.nodes() {
        if base_to_edited[node.id().index()].is_some() {
            continue;
        }
        if let Some(class) = fallback.get_mut(&(node.kind(), node.label())) {
            if let Some(e) = class.pop() {
                base_to_edited[node.id().index()] = Some(e);
                edited_to_base[e.index()] = Some(node.id());
            }
        }
    }

    let removed: Vec<NodeId> = base
        .node_ids()
        .filter(|id| base_to_edited[id.index()].is_none())
        .collect();
    let added: Vec<NodeId> = edited
        .node_ids()
        .filter(|id| edited_to_base[id.index()].is_none())
        .collect();

    // The mapping must be id-monotone for downstream remapping (and is
    // for every GraphEdit-produced pair: surviving ids only ever shift
    // down past removals and new ids append at the end).
    let monotone = base_to_edited
        .iter()
        .flatten()
        .try_fold(None::<NodeId>, |prev, &e| match prev {
            Some(p) if p >= e => None,
            _ => Some(Some(e)),
        })
        .is_some();
    if !monotone {
        return GraphDelta {
            base_len: base.len(),
            edited_len: edited.len(),
            base_to_edited,
            edited_to_base,
            added,
            removed,
            touched: NodeSet::full(edited.len()),
            cone: NodeSet::full(edited.len()),
            degenerate: true,
        };
    }

    // Touched = added ∪ operand-list-changed ∪ out-edge-multiset-changed,
    // all judged under the mapping over the edited graph. Operand-side
    // changes invalidate the *descendant* direction (fwd structure,
    // ASAP, ancestor sets of everything below); out-edge changes
    // invalidate the *ancestor* direction (bwd structure, ALAP,
    // descendant sets of everything above) — tracked separately so the
    // cone closure stays tight.
    let mut touched = NodeSet::empty(edited.len());
    let mut down_seed = vec![false; edited.len()];
    let mut up_seed = vec![false; edited.len()];
    for &id in &added {
        touched.insert(id);
        down_seed[id.index()] = true;
        up_seed[id.index()] = true;
    }
    let mut base_outs: Vec<Vec<(Option<NodeId>, usize)>> = vec![Vec::new(); base.len()];
    for e in base.edges() {
        base_outs[e.from.index()].push((base_to_edited[e.to.index()], e.port));
    }
    let mut edited_outs: Vec<Vec<(Option<NodeId>, usize)>> = vec![Vec::new(); edited.len()];
    for e in edited.edges() {
        edited_outs[e.from.index()].push((Some(e.to), e.port));
    }
    for (b_idx, mapped) in base_to_edited.iter().enumerate() {
        let Some(e_id) = *mapped else { continue };
        let b_id = NodeId::new(b_idx as u32);
        let preds_changed = {
            let bp = base.operands(b_id);
            let ep = edited.operands(e_id);
            bp.len() != ep.len()
                || bp
                    .iter()
                    .zip(ep)
                    .any(|(&bo, &eo)| base_to_edited[bo.index()] != Some(eo))
        };
        let succs_changed = {
            let mut bo = std::mem::take(&mut base_outs[b_idx]);
            let mut eo = std::mem::take(&mut edited_outs[e_id.index()]);
            bo.sort_unstable();
            eo.sort_unstable();
            bo != eo
        };
        let kind_changed = base.node(b_id).kind() != edited.node(e_id).kind();
        if preds_changed || succs_changed || kind_changed {
            touched.insert(e_id);
        }
        if preds_changed || kind_changed {
            down_seed[e_id.index()] = true;
        }
        if succs_changed || kind_changed {
            up_seed[e_id.index()] = true;
        }
    }

    // Cone closure: descendants of operand-side edits (forward pass)
    // and ancestors of out-edge-side edits (reverse pass). A node
    // outside both closures has an edge-for-edge identical ancestor
    // subgraph *and* descendant subgraph under the mapping.
    let mut down = vec![false; edited.len()];
    for &id in edited.topological() {
        down[id.index()] =
            down_seed[id.index()] || edited.operands(id).iter().any(|p| down[p.index()]);
    }
    let mut up = vec![false; edited.len()];
    for &id in edited.topological().iter().rev() {
        up[id.index()] = up_seed[id.index()] || edited.successors(id).iter().any(|s| up[s.index()]);
    }
    let mut cone = NodeSet::empty(edited.len());
    for id in edited.node_ids() {
        if down[id.index()] || up[id.index()] {
            cone.insert(id);
        }
    }

    GraphDelta {
        base_len: base.len(),
        edited_len: edited.len(),
        base_to_edited,
        edited_to_base,
        added,
        removed,
        touched,
        cone,
        degenerate: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Reachability;
    use crate::fingerprint::cone_fingerprints;
    use crate::{benchmarks, CdfgBuilder, GraphEdit};

    fn sample() -> Cdfg {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let m = b.mul(a, y);
        let s = b.sub(m, a);
        b.output("o", s);
        b.finish().unwrap()
    }

    #[test]
    fn identical_graphs_diff_to_identity() {
        let g = sample();
        let d = diff(&g, &g.clone());
        assert!(d.is_identity());
        assert!(!d.degenerate());
        assert_eq!(d.cone_size(), 0);
        for id in g.node_ids() {
            assert_eq!(d.map_base(id), Some(id));
            assert_eq!(d.clean_source(id), Some(id));
        }
    }

    #[test]
    fn added_op_is_detected_with_its_cone() {
        let g = sample();
        let a = NodeId::new(2); // the add
        let mut edit = GraphEdit::new(&g);
        let new = edit.add_op(OpKind::Mul, &[a, a]).unwrap();
        let edited = edit.finish().unwrap();
        let d = diff(&g, &edited);
        assert_eq!(d.added(), &[new]);
        assert!(d.removed().is_empty());
        assert!(d.touched().contains(new));
        // The new op and its ancestors are in the cone; x (an ancestor
        // of the add) is in the cone, the untouched mul/sub branch also
        // ancestors... check the output node: it has no touched
        // ancestor or descendant and must be clean.
        assert!(d.cone().contains(new));
        assert!(d.cone().contains(a), "producer of the new op is in cone");
        let out = edited
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Output)
            .unwrap()
            .id();
        assert!(
            !d.cone().contains(out),
            "output is unrelated to the new dead op"
        );
        assert_eq!(d.clean_source(out), d.map_edited(out));
    }

    #[test]
    fn removed_op_touches_its_producers() {
        let g = sample();
        let mut edit = GraphEdit::new(&g);
        // Add a dead op, finish, then remove it again from the edited
        // graph and diff against the *edited* base.
        let a = NodeId::new(2);
        edit.add_op(OpKind::Mul, &[a, a]).unwrap();
        let with_dead = edit.finish().unwrap();
        let mut edit2 = GraphEdit::new(&with_dead);
        edit2.remove_op(NodeId::new(6)).unwrap();
        let without = edit2.finish().unwrap();
        let d = diff(&with_dead, &without);
        assert_eq!(d.removed(), &[NodeId::new(6)]);
        assert!(d.added().is_empty());
        // The add lost an out-edge: it is touched in the edited graph.
        let add_in_edited = d.map_base(a).unwrap();
        assert!(d.touched().contains(add_in_edited));
    }

    #[test]
    fn rewire_touches_consumer_and_both_producers() {
        let g = sample();
        // `sub(m, a)` → `sub(m, y)`.
        let y = NodeId::new(1);
        let a = NodeId::new(2);
        let s = NodeId::new(4);
        let mut edit = GraphEdit::new(&g);
        edit.rewire_edge(s, 1, y).unwrap();
        let edited = edit.finish().unwrap();
        let d = diff(&g, &edited);
        assert!(d.added().is_empty() && d.removed().is_empty());
        let (s_e, a_e, y_e) = (
            d.map_base(s).unwrap(),
            d.map_base(a).unwrap(),
            d.map_base(y).unwrap(),
        );
        assert!(d.touched().contains(s_e), "consumer operand list changed");
        assert!(d.touched().contains(a_e), "old producer lost an out-edge");
        assert!(d.touched().contains(y_e), "new producer gained an out-edge");
    }

    #[test]
    fn cone_fingerprints_stable_outside_cone() {
        let g = benchmarks::hal();
        let reach = Reachability::new(&g);
        let base_fps = cone_fingerprints(&g, &reach);
        // Rewire one edge of some compute node.
        let target = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Output)
            .unwrap()
            .id();
        let donor = g
            .nodes()
            .iter()
            .find(|n| n.kind().produces_value() && !g.operands(target).contains(&n.id()))
            .unwrap()
            .id();
        let mut edit = GraphEdit::new(&g);
        edit.rewire_edge(target, 0, donor).unwrap();
        let edited = edit.finish().unwrap();
        let d = diff(&g, &edited);
        let edited_fps = cone_fingerprints(&edited, &Reachability::new(&edited));
        let mut changed_inside = 0;
        for id in edited.node_ids() {
            let Some(b) = d.map_edited(id) else { continue };
            if !d.cone().contains(id) {
                assert_eq!(
                    edited_fps[id.index()],
                    base_fps[b.index()],
                    "cone fingerprint changed outside the edit cone at {id}"
                );
            } else if edited_fps[id.index()] != base_fps[b.index()] {
                changed_inside += 1;
            }
        }
        assert!(changed_inside > 0, "the edit changed something in-cone");
    }

    #[test]
    fn unrelated_graphs_are_degenerate_or_fully_coned() {
        let a = benchmarks::hal();
        let b = benchmarks::cosine();
        let d = diff(&a, &b);
        // Whatever the matcher salvaged, no clean reuse may escape:
        // every mapped node must be in the cone or the delta degenerate.
        if !d.degenerate() {
            for id in b.node_ids() {
                if d.map_edited(id).is_some() && !d.cone().contains(id) {
                    // Clean survivors must genuinely have identical
                    // cones — spot-check via cone fingerprints.
                    let fa = cone_fingerprints(&a, &Reachability::new(&a));
                    let fb = cone_fingerprints(&b, &Reachability::new(&b));
                    assert_eq!(fb[id.index()], fa[d.map_edited(id).unwrap().index()]);
                }
            }
        }
    }
}
