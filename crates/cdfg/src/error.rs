//! Error type for CDFG construction and parsing.

use std::fmt;

use crate::graph::NodeId;

/// Errors produced while building, validating or parsing a CDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CdfgError {
    /// The graph contains a dependence cycle involving the given node.
    Cycle(NodeId),
    /// A node has the wrong number of operands for its kind.
    Arity {
        /// The offending node.
        node: NodeId,
        /// Operands the node's kind requires.
        expected: usize,
        /// Operands actually connected.
        found: usize,
    },
    /// Two edges drive the same operand port of one node.
    DuplicatePort {
        /// The consumer node.
        node: NodeId,
        /// The port driven twice.
        port: usize,
    },
    /// An edge sources its value from a node that produces none
    /// (an `output` node).
    SourceProducesNoValue(NodeId),
    /// An edge refers to a node id outside the graph.
    UnknownNode(NodeId),
    /// An operation mnemonic was not recognized.
    UnknownOp(String),
    /// A textual-format line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Two nodes share a name that must be unique (inputs and outputs).
    DuplicateName(String),
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::Cycle(n) => write!(f, "dependence cycle through node {n}"),
            CdfgError::Arity {
                node,
                expected,
                found,
            } => write!(
                f,
                "node {node} expects {expected} operand(s) but has {found}"
            ),
            CdfgError::DuplicatePort { node, port } => {
                write!(f, "operand port {port} of node {node} is driven twice")
            }
            CdfgError::SourceProducesNoValue(n) => {
                write!(f, "node {n} produces no value but is used as an operand")
            }
            CdfgError::UnknownNode(n) => write!(f, "node {n} does not exist in the graph"),
            CdfgError::UnknownOp(s) => write!(f, "unknown operation mnemonic `{s}`"),
            CdfgError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CdfgError::DuplicateName(name) => {
                write!(f, "duplicate input/output name `{name}`")
            }
        }
    }
}

impl std::error::Error for CdfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = CdfgError::Arity {
            node: NodeId::new(3),
            expected: 2,
            found: 1,
        };
        let s = e.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains('2'));
        assert!(s.contains('1'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CdfgError>();
    }
}
