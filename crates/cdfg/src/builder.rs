//! Fluent construction of CDFGs.

use crate::error::CdfgError;
use crate::graph::{Cdfg, Edge, NodeId};
use crate::op::OpKind;

/// Incrementally builds a [`Cdfg`].
///
/// The builder assigns dense [`NodeId`]s in creation order and defers all
/// validation to [`CdfgBuilder::finish`].
///
/// # Example
///
/// ```
/// use pchls_cdfg::{CdfgBuilder, OpKind};
///
/// # fn main() -> Result<(), pchls_cdfg::CdfgError> {
/// let mut b = CdfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let prod = b.mul(a, x);
/// let sum = b.add(prod, acc);
/// b.output("acc_next", sum);
/// let g = b.finish()?;
/// assert_eq!(g.name(), "mac");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CdfgBuilder {
    name: String,
    nodes: Vec<(OpKind, String)>,
    edges: Vec<Edge>,
}

impl CdfgBuilder {
    /// Starts building a graph with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> CdfgBuilder {
        CdfgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// A builder preloaded with an existing graph's nodes and edges, so
    /// a graph can be extended (new ids continue after the existing
    /// ones) and re-finished. For validated in-place edits — rewiring
    /// or removing existing nodes — use [`GraphEdit`](crate::GraphEdit)
    /// instead.
    #[must_use]
    pub fn from_graph(graph: &Cdfg) -> CdfgBuilder {
        CdfgBuilder {
            name: graph.name().to_owned(),
            nodes: graph
                .nodes()
                .iter()
                .map(|n| (n.kind(), n.label().to_owned()))
                .collect(),
            edges: graph.edges().to_vec(),
        }
    }

    fn push(&mut self, kind: OpKind, label: String, operands: &[NodeId]) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push((kind, label));
        for (port, &src) in operands.iter().enumerate() {
            self.edges.push(Edge {
                from: src,
                to: id,
                port,
            });
        }
        id
    }

    /// Adds a primary input named `name`.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(OpKind::Input, name.into(), &[])
    }

    /// Adds a primary output named `name` driven by `value`.
    pub fn output(&mut self, name: impl Into<String>, value: NodeId) -> NodeId {
        self.push(OpKind::Output, name.into(), &[value])
    }

    /// Adds an operation node of the given kind with the given operands.
    ///
    /// The node label is generated from the kind and id. Operand count is
    /// checked at [`CdfgBuilder::finish`] time.
    pub fn op(&mut self, kind: OpKind, operands: &[NodeId]) -> NodeId {
        let label = format!("{}{}", kind.mnemonic(), self.nodes.len());
        self.push(kind, label, operands)
    }

    /// Adds a labelled operation node.
    pub fn op_named(
        &mut self,
        kind: OpKind,
        label: impl Into<String>,
        operands: &[NodeId],
    ) -> NodeId {
        self.push(kind, label.into(), operands)
    }

    /// Shorthand for `op(OpKind::Add, &[a, b])`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.op(OpKind::Add, &[a, b])
    }

    /// Shorthand for `op(OpKind::Sub, &[a, b])` computing `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.op(OpKind::Sub, &[a, b])
    }

    /// Shorthand for `op(OpKind::Mul, &[a, b])`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.op(OpKind::Mul, &[a, b])
    }

    /// Greater-than comparison `a > b`.
    pub fn gt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.op(OpKind::Comp, &[a, b])
    }

    /// Less-than comparison `a < b`, expressed as `b > a`.
    pub fn lt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.gt(b, a)
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates and returns the finished graph.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError`] under the same conditions as
    /// [`Cdfg::from_parts`]: arity violations, cycles, duplicate
    /// input/output names, or outputs used as value sources.
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        Cdfg::from_parts(self.name, self.nodes, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
        assert_eq!(s.index(), 2);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn lt_swaps_operands() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.lt(x, y); // x < y  ==  y > x
        b.output("c", c);
        let g = b.finish().unwrap();
        let ops = g.operands(c);
        assert_eq!(ops[0], y);
        assert_eq!(ops[1], x);
    }

    #[test]
    fn generated_labels_are_distinct() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let c = b.add(a, y);
        b.output("o", c);
        let g = b.finish().unwrap();
        assert_ne!(g.node(a).label(), g.node(c).label());
    }

    #[test]
    fn from_graph_round_trips_and_extends() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        b.output("o", a);
        let g = b.finish().unwrap();

        let same = CdfgBuilder::from_graph(&g).finish().unwrap();
        assert_eq!(same, g);

        let mut b = CdfgBuilder::from_graph(&g);
        let m = b.mul(a, a);
        assert_eq!(m.index(), g.len());
        let bigger = b.finish().unwrap();
        assert_eq!(bigger.len(), g.len() + 1);
        assert_eq!(bigger.operands(m), &[a, a]);
    }

    #[test]
    fn finish_reports_arity_errors() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        b.op(OpKind::Add, &[x]); // missing one operand
        assert!(matches!(b.finish(), Err(CdfgError::Arity { .. })));
    }
}
