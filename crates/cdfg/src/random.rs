//! Seeded random DAG generation for property-based tests and scaling
//! benchmarks.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::CdfgBuilder;
use crate::graph::{Cdfg, NodeId};
use crate::op::OpKind;

/// Parameters for [`random_dag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomDagConfig {
    /// Number of computation (non-I/O) operations.
    pub ops: usize,
    /// Number of primary inputs (at least 1).
    pub inputs: usize,
    /// Number of primary outputs (at least 1).
    pub outputs: usize,
    /// Per-mille probability that a computation op is a multiplication;
    /// the remainder splits evenly between add, sub and comp.
    pub mul_permille: u32,
    /// Bias toward recent producers, creating deeper graphs. `0` picks
    /// operands uniformly (wide, shallow graphs); larger values
    /// re-sample closer to the most recent producer (narrow, deep graphs).
    pub depth_bias: u32,
    /// RNG seed; equal configs with equal seeds produce equal graphs.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            ops: 20,
            inputs: 4,
            outputs: 2,
            mul_permille: 300,
            depth_bias: 2,
            seed: 0,
        }
    }
}

/// Generates a pseudo-random, valid CDFG.
///
/// The generator is fully deterministic in the configuration (including
/// `seed`), making failures reproducible in property tests.
///
/// # Panics
///
/// Panics if `inputs` or `outputs` is zero.
///
/// # Example
///
/// ```
/// use pchls_cdfg::{random_dag, RandomDagConfig};
/// let cfg = RandomDagConfig { ops: 30, seed: 7, ..Default::default() };
/// let a = random_dag(&cfg);
/// let b = random_dag(&cfg);
/// assert_eq!(a, b); // deterministic
/// assert_eq!(a.len(), 30 + cfg.inputs + cfg.outputs);
/// ```
#[must_use]
pub fn random_dag(config: &RandomDagConfig) -> Cdfg {
    assert!(config.inputs > 0, "need at least one input");
    assert!(config.outputs > 0, "need at least one output");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = CdfgBuilder::new(format!("rand{}", config.seed));

    let mut producers: Vec<NodeId> = (0..config.inputs)
        .map(|i| b.input(format!("in{i}")))
        .collect();

    let mut consumed = std::collections::HashSet::new();
    for _ in 0..config.ops {
        let kind = if rng.gen_range(0..1000) < config.mul_permille {
            OpKind::Mul
        } else {
            *[OpKind::Add, OpKind::Sub, OpKind::Comp]
                .choose(&mut rng)
                .expect("non-empty slice")
        };
        let a = pick(&mut rng, &producers, config.depth_bias);
        let c = pick(&mut rng, &producers, config.depth_bias);
        consumed.insert(a);
        consumed.insert(c);
        producers.push(b.op(kind, &[a, c]));
    }

    // Outputs prefer sinks (producers nobody consumed yet) so the graph has
    // no dangling computations; fall back to random producers.
    let mut sinks: Vec<NodeId> = producers
        .iter()
        .copied()
        .filter(|p| !consumed.contains(p))
        .collect();
    for i in 0..config.outputs {
        let src = sinks.pop().unwrap_or_else(|| pick(&mut rng, &producers, 0));
        b.output(format!("out{i}"), src);
    }

    b.finish().expect("generator produces valid graphs")
}

/// Picks a producer, optionally biased toward the most recently created.
fn pick(rng: &mut StdRng, producers: &[NodeId], depth_bias: u32) -> NodeId {
    let mut idx = rng.gen_range(0..producers.len());
    for _ in 0..depth_bias {
        let other = rng.gen_range(0..producers.len());
        if other > idx {
            idx = other;
        }
    }
    producers[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDagConfig::default();
        assert_eq!(random_dag(&cfg), random_dag(&cfg));
        let other = RandomDagConfig { seed: 1, ..cfg };
        assert_ne!(random_dag(&cfg), random_dag(&other));
    }

    #[test]
    fn node_count_matches_config() {
        let cfg = RandomDagConfig {
            ops: 50,
            inputs: 3,
            outputs: 5,
            ..Default::default()
        };
        let g = random_dag(&cfg);
        assert_eq!(g.len(), 58);
        assert_eq!(g.inputs().count(), 3);
        assert_eq!(g.outputs().count(), 5);
    }

    #[test]
    fn all_mul_mix() {
        let cfg = RandomDagConfig {
            mul_permille: 1000,
            ops: 10,
            ..Default::default()
        };
        let g = random_dag(&cfg);
        assert_eq!(
            g.nodes().iter().filter(|n| n.kind() == OpKind::Mul).count(),
            10
        );
    }

    #[test]
    fn depth_bias_deepens_graph() {
        let shallow = random_dag(&RandomDagConfig {
            ops: 120,
            depth_bias: 0,
            seed: 42,
            ..Default::default()
        });
        let deep = random_dag(&RandomDagConfig {
            ops: 120,
            depth_bias: 8,
            seed: 42,
            ..Default::default()
        });
        let depth = |g: &Cdfg| crate::CriticalPath::new(g, |_| 1).length();
        assert!(depth(&deep) > depth(&shallow));
    }
}
