//! A line-oriented textual CDFG exchange format.
//!
//! ```text
//! # comment
//! cdfg hal
//! n0 input x
//! n1 input dx
//! n2 add n0 n1
//! n3 output xl n2
//! ```
//!
//! The first non-comment line names the graph; each following line declares
//! node `nK` (ids must be dense and in order). Inputs and outputs carry a
//! port name; computation nodes list their operand node ids in port order.

use std::fmt::Write as _;

use crate::error::CdfgError;
use crate::graph::{Cdfg, Edge, NodeId};
use crate::op::OpKind;

/// Serializes a graph to the textual format parsed by [`parse_cdfg`].
#[must_use]
pub fn write_cdfg(graph: &Cdfg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "cdfg {}", graph.name());
    for node in graph.nodes() {
        let _ = write!(s, "{} {}", node.id(), node.kind().mnemonic());
        if node.kind().is_io() {
            let _ = write!(s, " {}", node.label());
        }
        for &src in graph.operands(node.id()) {
            let _ = write!(s, " {src}");
        }
        s.push('\n');
    }
    s
}

/// Parses the textual format produced by [`write_cdfg`].
///
/// # Errors
///
/// Returns [`CdfgError::Parse`] for malformed lines and the usual
/// validation errors (arity, cycles, duplicate names) for structurally
/// invalid graphs.
///
/// # Example
///
/// ```
/// let text = "cdfg t\nn0 input x\nn1 output o n0\n";
/// let g = pchls_cdfg::parse_cdfg(text)?;
/// assert_eq!(g.name(), "t");
/// assert_eq!(pchls_cdfg::write_cdfg(&g), text);
/// # Ok::<(), pchls_cdfg::CdfgError>(())
/// ```
pub fn parse_cdfg(text: &str) -> Result<Cdfg, CdfgError> {
    let mut name: Option<String> = None;
    let mut nodes: Vec<(OpKind, String)> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line has a token");

        if name.is_none() {
            if head != "cdfg" {
                return Err(parse_err(lineno, "expected `cdfg <name>` header"));
            }
            let n = tok
                .next()
                .ok_or_else(|| parse_err(lineno, "missing graph name"))?;
            name = Some(n.to_owned());
            continue;
        }

        let id = parse_node_id(head, lineno)?;
        if id.index() != nodes.len() {
            return Err(parse_err(
                lineno,
                format!("expected node n{}, found {head}", nodes.len()),
            ));
        }
        let kind: OpKind = tok
            .next()
            .ok_or_else(|| parse_err(lineno, "missing operation"))?
            .parse()
            .map_err(|e: CdfgError| parse_err(lineno, e.to_string()))?;

        let label = if kind.is_io() {
            tok.next()
                .ok_or_else(|| parse_err(lineno, "input/output node needs a name"))?
                .to_owned()
        } else {
            format!("{}{}", kind.mnemonic(), nodes.len())
        };

        let operands: Vec<NodeId> = tok
            .map(|t| parse_node_id(t, lineno))
            .collect::<Result<_, _>>()?;
        for (port, &src) in operands.iter().enumerate() {
            edges.push(Edge {
                from: src,
                to: id,
                port,
            });
        }
        nodes.push((kind, label));
    }

    let name = name.ok_or_else(|| parse_err(0, "empty document"))?;
    Cdfg::from_parts(name, nodes, edges)
}

fn parse_node_id(tok: &str, lineno: usize) -> Result<NodeId, CdfgError> {
    tok.strip_prefix('n')
        .and_then(|d| d.parse::<u32>().ok())
        .map(NodeId::new)
        .ok_or_else(|| parse_err(lineno, format!("expected node id like `n3`, found `{tok}`")))
}

fn parse_err(line: usize, message: impl Into<String>) -> CdfgError {
    CdfgError::Parse {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn round_trip_benchmarks() {
        for g in [
            benchmarks::hal(),
            benchmarks::cosine(),
            benchmarks::elliptic(),
        ] {
            let text = write_cdfg(&g);
            let back = parse_cdfg(&text).unwrap();
            assert_eq!(back, g, "{} round trip", g.name());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\ncdfg t\n# body\nn0 input x\n\nn1 output o n0\n";
        let g = parse_cdfg(text).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn missing_header_is_reported() {
        let err = parse_cdfg("n0 input x\n").unwrap_err();
        assert!(matches!(err, CdfgError::Parse { line: 1, .. }));
    }

    #[test]
    fn out_of_order_ids_rejected() {
        let err = parse_cdfg("cdfg t\nn1 input x\n").unwrap_err();
        assert!(matches!(err, CdfgError::Parse { line: 2, .. }));
    }

    #[test]
    fn bad_operand_token_rejected() {
        let err = parse_cdfg("cdfg t\nn0 input x\nn1 output o q7\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("q7"), "{msg}");
    }

    #[test]
    fn unknown_op_rejected() {
        let err = parse_cdfg("cdfg t\nn0 frobnicate x\n").unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(parse_cdfg("# nothing\n").is_err());
    }
}
