//! Content-addressed structural fingerprinting of CDFGs.
//!
//! [`graph_fingerprint`] maps a [`Cdfg`] to a stable 64-bit hash of its
//! *structure*: the same value on every run, every platform and every
//! build (no [`std::collections::hash_map::RandomState`] seeding), and
//! invariant under the insertion order of operations and edges — two
//! graphs that differ only in the order their nodes/edges were pushed
//! through the builder fingerprint identically. A compile cache (e.g.
//! `pchls-serve`) can therefore address compiled artifacts by content
//! rather than by name or by pointer.
//!
//! The hash is *not* a proof of equality: structurally different graphs
//! can collide (both the generic 64-bit birthday bound and the classic
//! Weisfeiler–Lehman blind spots on highly symmetric graphs). Callers
//! that act on a fingerprint match must verify with a full equality
//! check, exactly like a hash map verifies keys within a bucket.
//!
//! # How it works
//!
//! Every node gets a canonical hash independent of its [`NodeId`]:
//!
//! 1. a **forward** pass in topological order hashes each node from its
//!    kind, its io label (compute-op labels are generated from the id by
//!    [`CdfgBuilder::op`](crate::CdfgBuilder::op) and are therefore
//!    excluded), and the port-ordered forward hashes of its operands;
//! 2. a **backward** pass in reverse topological order hashes each node
//!    from its kind and the *sorted multiset* of `(successor hash,
//!    operand port)` pairs of its out-edges;
//! 3. the node's canonical hash mixes the two, so a node is identified
//!    by its whole dependence cone in both directions.
//!
//! The fingerprint then combines the graph name, the node- and
//! edge-hash multisets (sorted, so insertion order cannot matter) and
//! the counts into one 64-bit value.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::{graph_fingerprint, CdfgBuilder, OpKind};
//!
//! # fn main() -> Result<(), pchls_cdfg::CdfgError> {
//! // The same dataflow, built in two different insertion orders.
//! let mut b = CdfgBuilder::new("g");
//! let x = b.input("x");
//! let y = b.input("y");
//! let s = b.op(OpKind::Add, &[x, y]);
//! b.output("o", s);
//! let first = b.finish()?;
//!
//! let mut b = CdfgBuilder::new("g");
//! let y = b.input("y");
//! let x = b.input("x");
//! let s = b.op(OpKind::Add, &[x, y]);
//! b.output("o", s);
//! let second = b.finish()?;
//!
//! assert_eq!(graph_fingerprint(&first), graph_fingerprint(&second));
//! # Ok(())
//! # }
//! ```

use crate::analysis::Reachability;
use crate::graph::Cdfg;

/// An incremental, order-sensitive stable hasher built from the same
/// primitives as [`graph_fingerprint`]: SplitMix64 avalanche over an
/// order-sensitive fold, FNV-1a for strings. Unlike
/// [`std::hash::DefaultHasher`] the result is identical on every run,
/// platform and build, so it is safe to persist (the on-disk result
/// store keys records by hashes produced here).
///
/// # Example
///
/// ```
/// use pchls_cdfg::StableHasher;
///
/// let mut h = StableHasher::new(0x1234);
/// h.write_u64(7);
/// h.write_str("hal");
/// let a = h.finish();
/// assert_eq!(a, {
///     let mut h = StableHasher::new(0x1234);
///     h.write_u64(7);
///     h.write_str("hal");
///     h.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher seeded with a caller-chosen domain tag, so hashes of
    /// different kinds of data never collide by construction.
    #[must_use]
    pub fn new(domain: u64) -> StableHasher {
        StableHasher { state: mix(domain) }
    }

    /// Folds one word into the hash (order-sensitive).
    pub fn write_u64(&mut self, word: u64) {
        self.state = fold(self.state, word);
    }

    /// Folds a string into the hash (FNV-1a over the bytes, then
    /// avalanched, then folded).
    pub fn write_str(&mut self, s: &str) {
        self.state = fold(self.state, hash_str(s));
    }

    /// The accumulated 64-bit hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        mix(self.state)
    }
}

/// SplitMix64 finalizer: the avalanche core of the fingerprint. Public
/// within the crate so tests can build expected values by hand.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Order-sensitive combination of a running hash with one more word.
fn fold(acc: u64, word: u64) -> u64 {
    mix(acc ^ mix(word))
}

/// Stable hash of a byte string (FNV-1a over the bytes, then avalanched).
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// A stable, structural, order-insensitive 64-bit fingerprint of
/// `graph`.
///
/// Guarantees (see the module docs for the construction):
///
/// * **deterministic** across processes, platforms and builds;
/// * **insertion-order-insensitive**: permuting the order in which
///   operations or edges were added — which relabels every
///   [`NodeId`](crate::NodeId) — does not change the fingerprint;
/// * **structural**: the graph name, every operation kind, the io port
///   labels, and the full dependence relation (with operand ports) all
///   feed the hash, so any structural mutation changes the fingerprint
///   with overwhelming probability.
///
/// Compute-op labels are excluded (they embed the insertion index), and
/// equal fingerprints do **not** prove equal graphs: follow a match
/// with a full equality verify before sharing anything derived from the
/// graph.
#[must_use]
pub fn graph_fingerprint(graph: &Cdfg) -> u64 {
    let n = graph.len();
    let canon = canonical_hashes(graph);
    let mut nodes: Vec<u64> = canon.clone();
    nodes.sort_unstable();
    let mut edges: Vec<u64> = graph
        .edges()
        .iter()
        .map(|e| {
            let mut h = fold(0x6564_6765, canon[e.from.index()]);
            h = fold(h, canon[e.to.index()]);
            fold(h, e.port as u64)
        })
        .collect();
    edges.sort_unstable();

    let mut fp = fold(0x7063_686c_732d_6664, hash_str(graph.name()));
    fp = fold(fp, n as u64);
    fp = fold(fp, graph.edges().len() as u64);
    for h in nodes {
        fp = fold(fp, h);
    }
    for h in edges {
        fp = fold(fp, h);
    }
    fp
}

/// The canonical per-node hash used by [`graph_fingerprint`]: a node is
/// identified by its whole dependence cone in both directions,
/// independently of its [`NodeId`](crate::NodeId). See the module docs
/// for the construction.
pub(crate) fn canonical_hashes(graph: &Cdfg) -> Vec<u64> {
    let n = graph.len();

    // Forward pass: hash(kind, io label, port-ordered operand hashes),
    // in topological order so operand hashes are ready when needed.
    let mut fwd = vec![0u64; n];
    for &id in graph.topological() {
        let node = graph.node(id);
        let mut h = fold(0x66_6f72_7761_7264, node.kind().index() as u64);
        if node.kind().is_io() {
            h = fold(h, hash_str(node.label()));
        }
        for (port, &src) in graph.operands(id).iter().enumerate() {
            h = fold(h, fwd[src.index()]);
            h = fold(h, port as u64);
        }
        fwd[id.index()] = h;
    }

    // Backward pass: hash(kind, io label, sorted multiset of
    // (successor hash, port at the successor)), in reverse topological
    // order. Sorting makes the out-edge combination order-insensitive.
    let mut bwd = vec![0u64; n];
    for &id in graph.topological().iter().rev() {
        let node = graph.node(id);
        let mut h = fold(0x6261_636b_7761_7264, node.kind().index() as u64);
        if node.kind().is_io() {
            h = fold(h, hash_str(node.label()));
        }
        let mut outs: Vec<u64> = graph
            .successors(id)
            .iter()
            .map(|&s| {
                // Recover the operand port(s) this value drives at `s`;
                // one value feeding two ports of one consumer appears
                // once per port in `successors`, and the port multiset
                // below disambiguates which ports.
                bwd[s.index()]
            })
            .zip(ports_at_consumers(graph, id))
            .map(|(sh, port)| fold(fold(0, sh), port as u64))
            .collect();
        outs.sort_unstable();
        for o in outs {
            h = fold(h, o);
        }
        bwd[id.index()] = h;
    }

    (0..n).map(|i| fold(fwd[i], bwd[i])).collect()
}

/// Per-node *cone fingerprints*: a stable hash of each node's full
/// ancestor/descendant dependence cone.
///
/// `cone[i]` folds the node's canonical structural hash (which already
/// encodes the shape of both cones — the same per-node hash that feeds
/// [`graph_fingerprint`]) with the ancestor and descendant populations
/// taken from the precomputed [`Reachability`] bitsets. Two uses:
///
/// * **permutation invariance**: relabeling the nodes permutes the
///   returned vector but never changes the multiset of values, so cone
///   fingerprints can be compared across graphs built in different
///   insertion orders;
/// * **edit locality**: an edit changes the cone fingerprints of
///   exactly the nodes whose dependence cone the edit intersects —
///   nodes outside the edit cone of [`diff`](crate::diff) keep their
///   value bit-for-bit, which is what lets delta compilation certify
///   reuse.
///
/// Like [`graph_fingerprint`] this is a hash, not a proof: act on a
/// match only after a full verify.
///
/// # Panics
///
/// Panics if `reach` was built for a different node count than `graph`.
#[must_use]
pub fn cone_fingerprints(graph: &Cdfg, reach: &Reachability) -> Vec<u64> {
    assert_eq!(
        reach.node_count(),
        graph.len(),
        "reachability built for a different graph"
    );
    let canon = canonical_hashes(graph);
    graph
        .node_ids()
        .map(|id| {
            let anc: usize = reach
                .ancestor_words(id)
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            let desc: usize = reach.descendant_count(id);
            let mut h = fold(0x636f_6e65_2d66_7030, canon[id.index()]);
            h = fold(h, anc as u64);
            fold(h, desc as u64)
        })
        .collect()
}

/// For each entry of `graph.successors(id)` (in order), the operand
/// port of that consumer driven by `id`. When one value feeds several
/// ports of the same consumer, the ports are yielded in ascending
/// order, matching the duplicate successor entries.
fn ports_at_consumers<'g>(graph: &'g Cdfg, id: crate::NodeId) -> impl Iterator<Item = usize> + 'g {
    graph.successors(id).iter().scan(
        std::collections::HashMap::<u32, usize>::new(),
        move |seen, &s| {
            let skip = seen.entry(s.index() as u32).or_insert(0);
            let port = graph
                .operands(s)
                .iter()
                .enumerate()
                .filter(|&(_, &src)| src == id)
                .map(|(p, _)| p)
                .nth(*skip)
                .expect("successor entry implies a driving port");
            *skip += 1;
            Some(port)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, CdfgBuilder, Edge, NodeId, OpKind};

    #[test]
    fn benchmarks_have_distinct_stable_fingerprints() {
        let fps: Vec<u64> = benchmarks::all().iter().map(graph_fingerprint).collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "two benchmarks collide");
            }
        }
        // Stability within a process (and across runs by construction:
        // no RandomState anywhere in the pipeline).
        for (g, fp) in benchmarks::all().iter().zip(&fps) {
            assert_eq!(graph_fingerprint(g), *fp);
        }
    }

    #[test]
    fn edge_insertion_order_is_ignored() {
        let g = benchmarks::hal();
        let nodes: Vec<(OpKind, String)> = g
            .nodes()
            .iter()
            .map(|n| (n.kind(), n.label().to_owned()))
            .collect();
        let mut edges = g.edges().to_vec();
        edges.reverse();
        let permuted = Cdfg::from_parts(g.name(), nodes, edges).unwrap();
        assert_ne!(permuted, g, "edge order differs under full equality");
        assert_eq!(graph_fingerprint(&permuted), graph_fingerprint(&g));
    }

    #[test]
    fn node_insertion_order_is_ignored() {
        let g = benchmarks::hal();
        let n = g.len();
        // Reverse the node order (a valid relabeling permutation).
        let perm: Vec<usize> = (0..n).rev().collect();
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let nodes: Vec<(OpKind, String)> = perm
            .iter()
            .map(|&old| {
                let nd = &g.nodes()[old];
                (nd.kind(), nd.label().to_owned())
            })
            .collect();
        let edges: Vec<Edge> = g
            .edges()
            .iter()
            .map(|e| Edge {
                from: NodeId::new(inv[e.from.index()] as u32),
                to: NodeId::new(inv[e.to.index()] as u32),
                port: e.port,
            })
            .collect();
        let permuted = Cdfg::from_parts(g.name(), nodes, edges).unwrap();
        assert_ne!(permuted, g, "node order differs under full equality");
        assert_eq!(graph_fingerprint(&permuted), graph_fingerprint(&g));
    }

    #[test]
    fn structural_mutations_change_the_fingerprint() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        b.output("o", m);
        let base = b.finish().unwrap();
        let fp = graph_fingerprint(&base);

        // Different name.
        let mut b = CdfgBuilder::new("h");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        b.output("o", m);
        assert_ne!(graph_fingerprint(&b.finish().unwrap()), fp);

        // Different kind.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Sub, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        b.output("o", m);
        assert_ne!(graph_fingerprint(&b.finish().unwrap()), fp);

        // Swapped operand ports on a non-commutative consumer.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[x, a]);
        b.output("o", m);
        assert_ne!(graph_fingerprint(&b.finish().unwrap()), fp);

        // Different io label.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("z");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        b.output("o", m);
        assert_ne!(graph_fingerprint(&b.finish().unwrap()), fp);

        // One extra (dead) operation.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        let _dead = b.op(OpKind::Sub, &[a, m]);
        b.output("o", m);
        assert_ne!(graph_fingerprint(&b.finish().unwrap()), fp);
    }

    #[test]
    fn compute_labels_do_not_feed_the_hash() {
        // The same structure with hand-picked compute labels must
        // fingerprint identically (labels of compute ops come from the
        // insertion index and would break permutation invariance).
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        b.output("o", a);
        let auto = b.finish().unwrap();

        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op_named(OpKind::Add, "my_adder", &[x, y]);
        b.output("o", a);
        let named = b.finish().unwrap();

        assert_ne!(auto, named, "labels differ under full equality");
        assert_eq!(graph_fingerprint(&auto), graph_fingerprint(&named));
    }

    #[test]
    fn double_port_fanout_is_distinguished() {
        // v drives both ports of one consumer vs. two different
        // consumers' single ports — the (successor, port) multiset and
        // the edge multiset must tell these apart.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let s = b.op(OpKind::Add, &[x, x]);
        b.output("o", s);
        let both_ports = b.finish().unwrap();

        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.op(OpKind::Add, &[x, y]);
        b.output("o", s);
        let split = b.finish().unwrap();

        assert_ne!(graph_fingerprint(&both_ports), graph_fingerprint(&split));
    }
}
