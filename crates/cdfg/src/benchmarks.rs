//! Standard high-level synthesis benchmark CDFGs.
//!
//! The DATE 2003 paper evaluates three classic benchmarks by name only:
//! `hal`, `cosine` and `elliptic`. This module reconstructs them from the
//! standard HLS benchmark suite those names refer to (see `DESIGN.md` §3
//! for the substitution rationale):
//!
//! * [`hal`] — the HAL second-order differential-equation solver of
//!   Paulin & Knight (`y'' + 3xy' + 3y = 0`): 6 multiplications, 2
//!   additions, 2 subtractions, 1 comparison.
//! * [`cosine`] — an 8-point fast discrete cosine transform in the
//!   Chen–Smith–Fralick style: stage-1 butterflies, an even half with one
//!   plane rotation and two `c4` scalings, and an odd half with two plane
//!   rotations, output butterflies and `√2` scalings (16 multiplications,
//!   24 additions/subtractions).
//! * [`elliptic`] — the fifth-order elliptic wave digital filter: 26
//!   additions and 8 multiplications over one primary input and seven
//!   state variables, structurally reconstructed from the published
//!   signal-flow graph (cascaded adder chains with multiplier taps and
//!   global feedback accumulation).
//!
//! Primary inputs (including filter coefficients) occupy the paper's
//! `input` module for one cycle; primary outputs occupy the `output`
//! module, matching the `imp`/`xpt` rows of Table 1.
//!
//! Extra graphs beyond the paper's set ([`ar_filter`], [`fir`],
//! [`fft_butterfly`]) support wider testing and the ablation studies.

use crate::builder::CdfgBuilder;
use crate::graph::{Cdfg, NodeId};

/// The HAL differential-equation benchmark (Paulin & Knight).
///
/// Computes one Euler step of `y'' = -3xy' - 3y`:
///
/// ```text
/// x1 = x + dx
/// u1 = u - 3*x*u*dx - 3*y*dx
/// y1 = y + u*dx
/// c  = x1 < a
/// ```
///
/// 21 nodes: 6 inputs, 6 `*`, 2 `+`, 2 `-`, 1 `>`, 4 outputs.
#[must_use]
pub fn hal() -> Cdfg {
    let mut b = CdfgBuilder::new("hal");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    let three = b.input("three");

    let t1 = b.mul(three, x); // 3x
    let t2 = b.mul(u, dx); // u·dx
    let t3 = b.mul(t1, t2); // 3x·u·dx
    let t4 = b.mul(three, y); // 3y
    let t5 = b.mul(t4, dx); // 3y·dx
    let t6 = b.mul(u, dx); // u·dx (recomputed, as in the original DFG)

    let s1 = b.sub(u, t3); // u - 3xudx
    let u1 = b.sub(s1, t5); // u1
    let x1 = b.add(x, dx); // x1
    let y1 = b.add(y, t6); // y1
    let c = b.lt(x1, a); // x1 < a

    b.output("x1", x1);
    b.output("y1", y1);
    b.output("u1", u1);
    b.output("c", c);
    b.finish().expect("hal is a valid CDFG")
}

/// An 8-point fast DCT flow graph (Chen–Smith–Fralick style), the
/// `cosine` benchmark.
///
/// 64 nodes: 16 inputs (8 samples + 8 coefficients), 16 `*`, 12 `+`,
/// 12 `-`, 8 outputs.
#[must_use]
pub fn cosine() -> Cdfg {
    let mut b = CdfgBuilder::new("cosine");
    let x: Vec<NodeId> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
    let c4 = b.input("c4");
    let c6 = b.input("c6");
    let s6 = b.input("s6");
    let k0 = b.input("k0");
    let k1 = b.input("k1");
    let k2 = b.input("k2");
    let k3 = b.input("k3");
    let r2 = b.input("sqrt2");

    // Stage 1: input butterflies.
    let a0 = b.add(x[0], x[7]);
    let a1 = b.add(x[1], x[6]);
    let a2 = b.add(x[2], x[5]);
    let a3 = b.add(x[3], x[4]);
    let a4 = b.sub(x[3], x[4]);
    let a5 = b.sub(x[2], x[5]);
    let a6 = b.sub(x[1], x[6]);
    let a7 = b.sub(x[0], x[7]);

    // Even half.
    let b0 = b.add(a0, a3);
    let b1 = b.add(a1, a2);
    let b2 = b.sub(a1, a2);
    let b3 = b.sub(a0, a3);
    let e0 = b.add(b0, b1);
    let e1 = b.sub(b0, b1);
    let y0 = b.mul(e0, c4);
    let y4 = b.mul(e1, c4);
    // Plane rotation producing y2/y6.
    let p0 = b.mul(b2, c6);
    let p1 = b.mul(b3, s6);
    let p2 = b.mul(b3, c6);
    let p3 = b.mul(b2, s6);
    let y2 = b.add(p0, p1);
    let y6 = b.sub(p2, p3);

    // Odd half: two plane rotations then output butterflies.
    let q0 = b.mul(a4, k0);
    let q1 = b.mul(a7, k1);
    let q2 = b.mul(a7, k0);
    let q3 = b.mul(a4, k1);
    let t0 = b.add(q0, q1);
    let t1 = b.sub(q2, q3);
    let q4 = b.mul(a5, k2);
    let q5 = b.mul(a6, k3);
    let q6 = b.mul(a6, k2);
    let q7 = b.mul(a5, k3);
    let t2 = b.add(q4, q5);
    let t3 = b.sub(q6, q7);
    let u0 = b.add(t0, t2);
    let u1 = b.sub(t1, t3);
    let u2 = b.add(t1, t3);
    let u3 = b.sub(t0, t2);
    let y1 = u0;
    let y7 = u1;
    let y3 = b.mul(u3, r2);
    let y5 = b.mul(u2, r2);

    for (i, y) in [y0, y1, y2, y3, y4, y5, y6, y7].into_iter().enumerate() {
        b.output(format!("y{i}"), y);
    }
    b.finish().expect("cosine is a valid CDFG")
}

/// The fifth-order elliptic wave digital filter, the `elliptic` benchmark.
///
/// Structural reconstruction of the published signal-flow graph: one
/// sample input and seven state variables feed two parallel cascades of
/// four adaptor sections each. Every section is a serial adder pair with
/// a multiplier tap branching off and rejoining one addition later (the
/// wave-digital adaptor shape), so multiplier latency overlaps adder
/// work just as in the published graph. Updated states and the filtered
/// sample are exported. 50 nodes: 8 inputs, 26 `+`, 8 `*`, 8 outputs;
/// critical path 20 cycles with 1-cycle adders, 2-cycle multipliers and
/// 1-cycle I/O — consistent with the paper's T = 22 constraint.
#[must_use]
pub fn elliptic() -> Cdfg {
    let mut b = CdfgBuilder::new("elliptic");
    let inp = b.input("in");
    let sv: Vec<NodeId> = (0..7).map(|i| b.input(format!("sv{i}"))).collect();

    // One wave-digital adaptor section: an entry adder, a multiplier tap
    // (the adaptor coefficient; modelled area-faithfully as a two-operand
    // multiply) and a parallel/rejoin adder pair. Returns (chain, state).
    let section = |b: &mut CdfgBuilder, prev: NodeId, state: NodeId| {
        let c1 = b.add(prev, state);
        let m = b.mul(c1, c1);
        let c2 = b.add(c1, state); // overlaps the multiplier
        let c3 = b.add(m, c2);
        (c3, c2)
    };

    // Cascade A: input conditioning through three states.
    let (a1, a1s) = section(&mut b, inp, sv[0]);
    let (a2, a2s) = section(&mut b, a1, sv[1]);
    let (a3, a3s) = section(&mut b, a2, sv[2]);
    let (a4, a4s) = section(&mut b, a3, a1s);

    // Cascade B: state-side conditioning, running in parallel with A.
    let (b1, b1s) = section(&mut b, sv[3], sv[4]);
    let (b2, b2s) = section(&mut b, b1, sv[5]);
    let (b3, b3s) = section(&mut b, b2, sv[6]);
    let (b4, _b4s) = section(&mut b, b3, b1s);

    // Output merge.
    let merge1 = b.add(a4, b4);
    let out = b.add(merge1, a4s);

    b.output("out", out);
    for (i, v) in [a1s, a2s, a3s, b1s, b2s, b3s, _b4s].into_iter().enumerate() {
        b.output(format!("sv{i}_next"), v);
    }
    b.finish().expect("elliptic is a valid CDFG")
}

/// Second-order auto-regressive lattice filter (`ar`), a common extra
/// benchmark: 16 multiplications, 12 additions.
#[must_use]
pub fn ar_filter() -> Cdfg {
    let mut b = CdfgBuilder::new("ar");
    let x: Vec<NodeId> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
    let k: Vec<NodeId> = (0..8).map(|i| b.input(format!("k{i}"))).collect();

    // First lattice stage: full 2x2 rotations on (x0,x1) and (x2,x3).
    let m0 = b.mul(x[0], k[0]);
    let m1 = b.mul(x[1], k[1]);
    let m2 = b.mul(x[0], k[2]);
    let m3 = b.mul(x[1], k[3]);
    let s0 = b.add(m0, m1);
    let s1 = b.add(m2, m3);
    let m4 = b.mul(x[2], k[0]);
    let m5 = b.mul(x[3], k[1]);
    let m6 = b.mul(x[2], k[2]);
    let m7 = b.mul(x[3], k[3]);
    let s2 = b.add(m4, m5);
    let s3 = b.add(m6, m7);

    // Second lattice stage on the rotated pairs.
    let m8 = b.mul(s0, k[4]);
    let m9 = b.mul(s2, k[5]);
    let m10 = b.mul(s0, k[6]);
    let m11 = b.mul(s2, k[7]);
    let s4 = b.add(m8, m9);
    let s5 = b.add(m10, m11);
    let m12 = b.mul(s1, k[4]);
    let m13 = b.mul(s3, k[5]);
    let m14 = b.mul(s1, k[6]);
    let m15 = b.mul(s3, k[7]);
    let s6 = b.add(m12, m13);
    let s7 = b.add(m14, m15);

    let o0 = b.add(s4, s6);
    let o1 = b.add(s5, s7);
    let y0 = b.add(o0, s1); // feed-through terms of the lattice
    let y1 = b.add(o1, s3);
    b.output("y0", y0);
    b.output("y1", y1);
    b.finish().expect("ar is a valid CDFG")
}

/// An `n`-tap finite impulse response filter: `n` multiplications and
/// `n-1` additions arranged as a balanced reduction tree.
///
/// # Panics
///
/// Panics if `taps` is zero.
#[must_use]
pub fn fir(taps: usize) -> Cdfg {
    assert!(taps > 0, "fir needs at least one tap");
    let mut b = CdfgBuilder::new(format!("fir{taps}"));
    let xs: Vec<NodeId> = (0..taps).map(|i| b.input(format!("x{i}"))).collect();
    let cs: Vec<NodeId> = (0..taps).map(|i| b.input(format!("c{i}"))).collect();
    let mut layer: Vec<NodeId> = xs.iter().zip(&cs).map(|(&x, &c)| b.mul(x, c)).collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    b.add(pair[0], pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    b.output("y", layer[0]);
    b.finish().expect("fir is a valid CDFG")
}

/// A radix-2 decimation-in-time FFT butterfly on complex operands
/// (4 multiplications, 3 additions, 3 subtractions).
#[must_use]
pub fn fft_butterfly() -> Cdfg {
    let mut b = CdfgBuilder::new("fft_bfly");
    let ar = b.input("a_re");
    let ai = b.input("a_im");
    let br = b.input("b_re");
    let bi = b.input("b_im");
    let wr = b.input("w_re");
    let wi = b.input("w_im");

    // t = w * b (complex multiply).
    let p0 = b.mul(br, wr);
    let p1 = b.mul(bi, wi);
    let p2 = b.mul(br, wi);
    let p3 = b.mul(bi, wr);
    let tr = b.sub(p0, p1);
    let ti = b.add(p2, p3);

    let xr = b.add(ar, tr);
    let xi = b.add(ai, ti);
    let yr = b.sub(ar, tr);
    let yi = b.sub(ai, ti);
    b.output("x_re", xr);
    b.output("x_im", xi);
    b.output("y_re", yr);
    b.output("y_im", yi);
    b.finish().expect("fft butterfly is a valid CDFG")
}

/// A cascade of `sections` direct-form-I IIR biquad sections:
/// `y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2`, with each section's output
/// feeding the next. Per section: 5 multiplications, 2 additions,
/// 2 subtractions, 9 dedicated inputs; one primary output.
///
/// # Panics
///
/// Panics if `sections` is zero.
#[must_use]
pub fn iir_biquad(sections: usize) -> Cdfg {
    assert!(sections > 0, "need at least one biquad section");
    let mut b = CdfgBuilder::new(format!("iir{sections}"));
    let mut x = b.input("x");
    for s in 0..sections {
        let b0 = b.input(format!("s{s}_b0"));
        let b1 = b.input(format!("s{s}_b1"));
        let b2 = b.input(format!("s{s}_b2"));
        let a1 = b.input(format!("s{s}_a1"));
        let a2 = b.input(format!("s{s}_a2"));
        let x1 = b.input(format!("s{s}_x1"));
        let x2 = b.input(format!("s{s}_x2"));
        let y1 = b.input(format!("s{s}_y1"));
        let y2 = b.input(format!("s{s}_y2"));

        let t0 = b.mul(b0, x);
        let t1 = b.mul(b1, x1);
        let t2 = b.mul(b2, x2);
        let t3 = b.mul(a1, y1);
        let t4 = b.mul(a2, y2);
        let s0 = b.add(t0, t1);
        let s1 = b.add(s0, t2);
        let s2 = b.sub(s1, t3);
        x = b.sub(s2, t4); // section output feeds the next section
    }
    b.output("y", x);
    b.finish().expect("iir is a valid CDFG")
}

/// The three benchmark graphs evaluated in the paper, in figure order.
#[must_use]
pub fn paper_set() -> Vec<Cdfg> {
    vec![hal(), cosine(), elliptic()]
}

/// Every benchmark this crate ships (paper set plus extras).
#[must_use]
pub fn all() -> Vec<Cdfg> {
    vec![
        hal(),
        cosine(),
        elliptic(),
        ar_filter(),
        fir(16),
        fft_butterfly(),
        iir_biquad(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::{CriticalPath, Interpreter, Stimulus};
    use std::collections::HashMap;

    fn histogram(g: &Cdfg) -> HashMap<OpKind, usize> {
        g.op_histogram().into_iter().collect()
    }

    #[test]
    fn hal_op_mix_matches_literature() {
        let h = histogram(&hal());
        assert_eq!(h[&OpKind::Mul], 6);
        assert_eq!(h[&OpKind::Add], 2);
        assert_eq!(h[&OpKind::Sub], 2);
        assert_eq!(h[&OpKind::Comp], 1);
        assert_eq!(h[&OpKind::Input], 6);
        assert_eq!(h[&OpKind::Output], 4);
    }

    #[test]
    fn elliptic_op_mix_matches_literature() {
        let h = histogram(&elliptic());
        assert_eq!(h[&OpKind::Add], 26, "EWF has 26 additions");
        assert_eq!(h[&OpKind::Mul], 8, "EWF has 8 multiplications");
        assert!(!h.contains_key(&OpKind::Sub));
        assert!(!h.contains_key(&OpKind::Comp));
    }

    #[test]
    fn cosine_op_mix() {
        let h = histogram(&cosine());
        assert_eq!(h[&OpKind::Mul], 16, "Chen DCT has 16 multiplications");
        assert_eq!(h[&OpKind::Add], 12);
        assert_eq!(h[&OpKind::Sub], 12);
        assert_eq!(h[&OpKind::Input], 16);
        assert_eq!(h[&OpKind::Output], 8);
    }

    #[test]
    fn ar_op_mix() {
        let h = histogram(&ar_filter());
        assert_eq!(h[&OpKind::Mul], 16);
        assert_eq!(h[&OpKind::Add], 12);
    }

    #[test]
    fn fir_counts_scale_with_taps() {
        for taps in [1, 2, 5, 16] {
            let h = histogram(&fir(taps));
            assert_eq!(h[&OpKind::Mul], taps);
            assert_eq!(*h.get(&OpKind::Add).unwrap_or(&0), taps - 1);
        }
    }

    /// Delay model used in the paper with the fastest library modules:
    /// io = 1, alu ops = 1, parallel multiplier = 2.
    fn fastest_delay(g: &Cdfg) -> impl Fn(crate::NodeId) -> u32 + '_ {
        |id| match g.node(id).kind() {
            OpKind::Mul => 2,
            _ => 1,
        }
    }

    #[test]
    fn paper_latency_constraints_are_feasible() {
        // The paper synthesizes hal at T=10, cosine at T=12, elliptic at
        // T=22; those latencies must be at least the critical path under
        // the fastest modules.
        let cases = [(hal(), 10), (cosine(), 12), (elliptic(), 22)];
        for (g, t) in cases {
            let cp = CriticalPath::new(&g, fastest_delay(&g));
            assert!(
                cp.length() <= t,
                "{}: critical path {} exceeds paper latency {t}",
                g.name(),
                cp.length()
            );
        }
    }

    #[test]
    fn hal_computes_the_difference_equation() {
        let g = hal();
        let mut stim = Stimulus::new();
        let (x, y, u, dx, a) = (2i64, 5, 7, 3, 100);
        stim.insert("x".into(), x);
        stim.insert("y".into(), y);
        stim.insert("u".into(), u);
        stim.insert("dx".into(), dx);
        stim.insert("a".into(), a);
        stim.insert("three".into(), 3);
        let out = Interpreter::new(&g).run(&stim).unwrap();
        assert_eq!(out["x1"], x + dx);
        assert_eq!(out["y1"], y + u * dx);
        assert_eq!(out["u1"], u - 3 * x * u * dx - 3 * y * dx);
        assert_eq!(out["c"], i64::from(x + dx < a));
    }

    #[test]
    fn fir_computes_dot_product() {
        let g = fir(4);
        let mut stim = Stimulus::new();
        for (i, (x, c)) in [(1, 10), (2, 20), (3, 30), (4, 40)].iter().enumerate() {
            stim.insert(format!("x{i}"), *x);
            stim.insert(format!("c{i}"), *c);
        }
        let out = Interpreter::new(&g).run(&stim).unwrap();
        assert_eq!(out["y"], 10 + 40 + 90 + 160);
    }

    #[test]
    fn fft_butterfly_is_correct() {
        let g = fft_butterfly();
        let mut stim = Stimulus::new();
        for (k, v) in [
            ("a_re", 1),
            ("a_im", 2),
            ("b_re", 3),
            ("b_im", 4),
            ("w_re", 5),
            ("w_im", 6),
        ] {
            stim.insert(k.into(), v);
        }
        let out = Interpreter::new(&g).run(&stim).unwrap();
        // t = w*b = (5+6i)(3+4i) = 15-24 + (20+18)i = -9 + 38i
        assert_eq!(out["x_re"], 1 - 9);
        assert_eq!(out["x_im"], 2 + 38);
        assert_eq!(out["y_re"], 1 + 9);
        assert_eq!(out["y_im"], 2 - 38);
    }

    #[test]
    fn iir_computes_the_difference_equation() {
        let g = iir_biquad(1);
        let mut stim = Stimulus::new();
        let vals = [
            ("x", 3i64),
            ("s0_b0", 2),
            ("s0_b1", 5),
            ("s0_b2", 7),
            ("s0_a1", 11),
            ("s0_a2", 13),
            ("s0_x1", 17),
            ("s0_x2", 19),
            ("s0_y1", 23),
            ("s0_y2", 29),
        ];
        for (k, v) in vals {
            stim.insert(k.into(), v);
        }
        let out = Interpreter::new(&g).run(&stim).unwrap();
        assert_eq!(out["y"], 2 * 3 + 5 * 17 + 7 * 19 - 11 * 23 - 13 * 29);
    }

    #[test]
    fn iir_op_mix_scales_with_sections() {
        for sections in [1, 3] {
            let h = histogram(&iir_biquad(sections));
            assert_eq!(h[&OpKind::Mul], 5 * sections);
            assert_eq!(h[&OpKind::Add], 2 * sections);
            assert_eq!(h[&OpKind::Sub], 2 * sections);
            assert_eq!(h[&OpKind::Input], 9 * sections + 1);
            assert_eq!(h[&OpKind::Output], 1);
        }
    }

    #[test]
    fn all_benchmarks_have_unique_names() {
        let set = all();
        let mut names: Vec<&str> = set.iter().map(Cdfg::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), set.len());
    }

    #[test]
    fn every_compute_node_feeds_something() {
        // No dead computations: every non-output node has a consumer.
        for g in all() {
            for node in g.nodes() {
                if node.kind() != OpKind::Output {
                    assert!(
                        !g.successors(node.id()).is_empty(),
                        "{}: {} ({}) is dead",
                        g.name(),
                        node.id(),
                        node.kind()
                    );
                }
            }
        }
    }
}
