//! Graph analyses: reachability (transitive closure) and critical path.

use crate::delta::GraphDelta;
use crate::graph::{Cdfg, NodeId};

/// Dense transitive-closure over a [`Cdfg`], answering ancestor /
/// descendant queries in O(1) after O(V·E/64) construction.
///
/// Binding uses this heavily: two dependence-ordered operations can always
/// share a functional unit because their execution intervals can never
/// overlap.
///
/// # Example
///
/// ```
/// use pchls_cdfg::{CdfgBuilder, Reachability};
///
/// # fn main() -> Result<(), pchls_cdfg::CdfgError> {
/// let mut b = CdfgBuilder::new("chain");
/// let x = b.input("x");
/// let y = b.input("y");
/// let a = b.add(x, y);
/// let m = b.mul(a, y);
/// b.output("o", m);
/// let g = b.finish()?;
/// let r = Reachability::new(&g);
/// assert!(r.reaches(x, m));
/// assert!(!r.reaches(m, x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachability {
    n: usize,
    words: usize,
    /// `desc[i]` = bitset of nodes reachable from `i` (excluding `i`).
    desc: Vec<u64>,
    /// `anc[i]` = bitset of nodes that reach `i` (excluding `i`) — the
    /// transpose of `desc`, precomputed so a fixed operation's full
    /// dependence cone (the set force-directed scheduling must refit) is
    /// two word-slices instead of two graph traversals.
    anc: Vec<u64>,
}

impl Reachability {
    /// Computes the transitive closure of `graph`.
    #[must_use]
    pub fn new(graph: &Cdfg) -> Reachability {
        let n = graph.len();
        let words = n.div_ceil(64);
        // `desc[i] |= desc[s] | {s}` for each edge i→s, successors first.
        let mut desc = vec![0u64; n * words];
        for &id in graph.topological().iter().rev() {
            let i = id.index();
            for &s in graph.successors(id) {
                let si = s.index();
                union_row(&mut desc, words, i, si);
                desc[i * words + si / 64] |= 1u64 << (si % 64);
            }
        }
        // `anc[s] |= anc[i] | {i}` for each edge i→s, predecessors first.
        let mut anc = vec![0u64; n * words];
        for &id in graph.topological() {
            let i = id.index();
            for &s in graph.successors(id) {
                let si = s.index();
                union_row(&mut anc, words, si, i);
                anc[si * words + i / 64] |= 1u64 << (i % 64);
            }
        }
        Reachability {
            n,
            words,
            desc,
            anc,
        }
    }

    /// Recomputes the transitive closure of an edited graph, reusing
    /// the bitset rows of `base` for every node outside the edit cone
    /// of `delta` (= `diff(base_graph, graph)`).
    ///
    /// A node outside the cone has identical ancestor and descendant
    /// subgraphs in both graphs under the delta's node mapping, so its
    /// rows are the base rows with the bit positions remapped; only
    /// in-cone rows are recomputed from the graph. The result is equal
    /// to `Reachability::new(graph)` (and compares equal under `==`).
    ///
    /// Falls back to a full recomputation when the delta is
    /// [`degenerate`](GraphDelta::degenerate).
    ///
    /// # Panics
    ///
    /// Panics if `base`/`graph` node counts disagree with the delta's.
    #[must_use]
    pub fn incremental(graph: &Cdfg, base: &Reachability, delta: &GraphDelta) -> Reachability {
        assert_eq!(base.n, delta.base_len(), "delta built for another base");
        assert_eq!(
            graph.len(),
            delta.edited_len(),
            "delta built for another edit"
        );
        if delta.degenerate() {
            return Reachability::new(graph);
        }
        let n = graph.len();
        let words = n.div_ceil(64);
        let mut desc = vec![0u64; n * words];
        let mut anc = vec![0u64; n * words];

        // Clean rows: remap the base bits through the node mapping.
        let mut clean = vec![false; n];
        for id in graph.node_ids() {
            let Some(b) = delta.clean_source(id) else {
                continue;
            };
            clean[id.index()] = true;
            let i = id.index();
            for (src_row, dst_row) in [
                (
                    base.descendant_words(b),
                    &mut desc[i * words..(i + 1) * words],
                ),
                (base.ancestor_words(b), &mut anc[i * words..(i + 1) * words]),
            ] {
                for bit in Reachability::iter_row(src_row) {
                    let m = delta
                        .map_base(bit)
                        .expect("cone theorem: neighbors of clean nodes are mapped")
                        .index();
                    dst_row[m / 64] |= 1u64 << (m % 64);
                }
            }
        }

        // Dirty rows, exactly as in `new` but touching only in-cone
        // nodes; the rows they read are either clean (prefilled) or
        // dirty-but-already-final in the traversal order.
        for &id in graph.topological().iter().rev() {
            let i = id.index();
            if clean[i] {
                continue;
            }
            for &s in graph.successors(id) {
                let si = s.index();
                union_row(&mut desc, words, i, si);
                desc[i * words + si / 64] |= 1u64 << (si % 64);
            }
        }
        for &id in graph.topological() {
            let si_outer = id.index();
            for &s in graph.successors(id) {
                if clean[s.index()] {
                    continue;
                }
                let si = s.index();
                union_row(&mut anc, words, si, si_outer);
                anc[si * words + si_outer / 64] |= 1u64 << (si_outer % 64);
            }
        }

        Reachability {
            n,
            words,
            desc,
            anc,
        }
    }

    /// Number of `u64` words per node bitset row.
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.words
    }

    /// Number of nodes in the analyzed graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Bitset of the nodes reachable from `id` (excluding `id`), one bit
    /// per node index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the analyzed graph.
    #[must_use]
    pub fn descendant_words(&self, id: NodeId) -> &[u64] {
        assert!(id.index() < self.n, "foreign id");
        &self.desc[id.index() * self.words..(id.index() + 1) * self.words]
    }

    /// Bitset of the nodes that reach `id` (excluding `id`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the analyzed graph.
    #[must_use]
    pub fn ancestor_words(&self, id: NodeId) -> &[u64] {
        assert!(id.index() < self.n, "foreign id");
        &self.anc[id.index() * self.words..(id.index() + 1) * self.words]
    }

    /// Whether node index `index` is set in a bitset row returned by
    /// [`Reachability::descendant_words`] /
    /// [`Reachability::ancestor_words`].
    #[must_use]
    pub fn bit(row: &[u64], index: usize) -> bool {
        row[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Iterates the node ids set in a bitset row, in ascending order.
    pub fn iter_row(row: &[u64]) -> impl Iterator<Item = NodeId> + '_ {
        row.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(NodeId::new((w * 64) as u32 + b))
            })
        })
    }

    /// Whether a directed path from `from` to `to` exists (`from != to`
    /// required for a `true` result; a node does not reach itself).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the analyzed graph.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.n && to.index() < self.n, "foreign id");
        let ti = to.index();
        self.desc[from.index() * self.words + ti / 64] & (1u64 << (ti % 64)) != 0
    }

    /// Whether `a` and `b` are dependence-ordered in either direction.
    #[must_use]
    pub fn ordered(&self, a: NodeId, b: NodeId) -> bool {
        self.reaches(a, b) || self.reaches(b, a)
    }

    /// Number of descendants of `id`.
    #[must_use]
    pub fn descendant_count(&self, id: NodeId) -> usize {
        let i = id.index();
        self.desc[i * self.words..(i + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// Lazily computed, shareable analysis handles for one [`Cdfg`].
///
/// Derived analyses like [`Reachability`] are pure functions of the
/// graph, yet historically every pass (synthesis kernel, force-directed
/// scheduling, clique partitioning) rebuilt its own copy. A cache
/// computes each analysis at most once and hands out shared references,
/// so a compile-once layer (e.g. `pchls-core`'s `Engine::compile`) can
/// reuse them across thousands of constraint points. Thread-safe: the
/// first caller on any thread computes, everyone else borrows.
///
/// # Example
///
/// ```
/// use pchls_cdfg::{benchmarks::hal, AnalysisCache};
///
/// let g = hal();
/// let cache = AnalysisCache::new();
/// let r1 = cache.reachability(&g) as *const _;
/// let r2 = cache.reachability(&g) as *const _;
/// assert_eq!(r1, r2, "computed once, shared after");
/// ```
#[derive(Debug, Default)]
pub struct AnalysisCache {
    reach: std::sync::OnceLock<Reachability>,
}

impl AnalysisCache {
    /// An empty cache; analyses are computed on first request.
    #[must_use]
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// A cache preseeded with an already computed transitive closure —
    /// the delta-compile path hands an incrementally patched
    /// [`Reachability`] straight to the compiled artifact instead of
    /// recomputing it on first request.
    #[must_use]
    pub fn with_reachability(reach: Reachability) -> AnalysisCache {
        let cache = AnalysisCache::default();
        cache
            .reach
            .set(reach)
            .expect("freshly created cache is empty");
        cache
    }

    /// The transitive closure of `graph`, computed on first call and
    /// shared afterwards. Callers must pass the same graph every time
    /// (the cache is per-graph by construction wherever it is embedded).
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count than the graph the
    /// closure was first computed for — the cheap detectable slice of
    /// "same graph every time" (same-size different graphs cannot be
    /// told apart without hashing and stay the caller's contract).
    pub fn reachability(&self, graph: &Cdfg) -> &Reachability {
        let reach = self.reach.get_or_init(|| Reachability::new(graph));
        assert_eq!(
            reach.node_count(),
            graph.len(),
            "AnalysisCache queried with a different graph than it was built for"
        );
        reach
    }
}

/// A fixed-capacity set of [`NodeId`]s stored as packed `u64` words —
/// the word-parallel replacement for a `Vec<bool>` membership array.
///
/// The payoff is not `contains` (a bool-vec answers that in O(1) too)
/// but the *row view*: [`NodeSet::words`] exposes the same packed layout
/// as [`Reachability::descendant_words`], so set intersections ("unbound
/// ∧ kind-compatible ∧ id > u") collapse to a handful of `AND`s walked
/// with `trailing_zeros` — see [`iter_and_above`].
///
/// Trailing bits beyond `len` are kept zero as an invariant, so whole-word
/// operations (`count`, intersection walks) never see phantom members.
///
/// # Example
///
/// ```
/// use pchls_cdfg::{NodeId, NodeSet};
///
/// let mut s = NodeSet::full(70);
/// s.remove(NodeId::new(3));
/// assert_eq!(s.count(), 69);
/// assert!(!s.contains(NodeId::new(3)));
/// assert!(s.contains(NodeId::new(69)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    len: usize,
    words: Vec<u64>,
}

impl NodeSet {
    /// An empty set over a universe of `len` node ids.
    #[must_use]
    pub fn empty(len: usize) -> NodeSet {
        NodeSet {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// The full set `{0, …, len-1}`.
    #[must_use]
    pub fn full(len: usize) -> NodeSet {
        let mut s = NodeSet::empty(len);
        s.fill();
        s
    }

    /// Size of the universe (not the member count — see [`NodeSet::count`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty (a zero-node graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `id` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        assert!(i < self.len, "foreign id");
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: NodeId) {
        let i = id.index();
        assert!(i < self.len, "foreign id");
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn remove(&mut self, id: NodeId) {
        let i = id.index();
        assert!(i < self.len, "foreign id");
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every id in the universe.
    pub fn fill(&mut self) {
        self.words.fill(!0u64);
        let tail = self.len % 64;
        if tail != 0 {
            *self.words.last_mut().expect("len % 64 != 0 implies words") = (1u64 << tail) - 1;
        }
    }

    /// Number of members (popcount over the words).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed word row — same layout as the [`Reachability`] rows, so
    /// the two can be `AND`ed word-for-word.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        Reachability::iter_row(&self.words)
    }
}

/// Walks the ids set in `a ∧ b` that are strictly greater than `above`,
/// in ascending order — the kernel's pair-enumeration primitive
/// ("unbound ∧ compatible-with-`u`'s-kind ∧ id > u") as two word `AND`s
/// plus a `trailing_zeros` loop, touching only surviving words.
///
/// Both rows must use the packed layout of [`NodeSet::words`] /
/// [`Reachability::descendant_words`] and be at least
/// `(above + 1).div_ceil(64)` words long; shorter of the two rows bounds
/// the walk.
pub fn iter_and_above<'a>(
    a: &'a [u64],
    b: &'a [u64],
    above: usize,
) -> impl Iterator<Item = NodeId> + 'a {
    let start = (above + 1) / 64;
    // Bits ≤ `above` in the first surviving word are masked off; later
    // words are taken whole.
    let first_mask = !0u64 << ((above + 1) % 64);
    let words = a.len().min(b.len());
    (start..words).flat_map(move |w| {
        let mut rest = a[w] & b[w];
        if w == start && !(above + 1).is_multiple_of(64) {
            rest &= first_mask;
        }
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let bit = rest.trailing_zeros();
            rest &= rest - 1;
            Some(NodeId::new((w * 64) as u32 + bit))
        })
    })
}

/// `rows[dst] |= rows[src]`, borrowing both rows disjointly.
fn union_row(rows: &mut [u64], words: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src, "a DAG has no self edges");
    let (lo, hi) = if dst < src { (dst, src) } else { (src, dst) };
    let (a, b) = rows.split_at_mut(hi * words);
    let (d, s) = if dst < src {
        (&mut a[lo * words..lo * words + words], &b[..words])
    } else {
        (&mut b[..words], &a[lo * words..lo * words + words])
    };
    for w in 0..words {
        d[w] |= s[w];
    }
}

/// Longest-path (critical path) analysis under a per-node delay function.
///
/// `level_from_source(v)` is the earliest cycle `v` could start if every
/// operation ran as soon as its operands finished (i.e. the unconstrained
/// ASAP start); `length` is the minimum latency of the whole graph.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    start: Vec<u32>,
    length: u32,
}

impl CriticalPath {
    /// Computes longest paths where node `v` contributes `delay(v)` cycles.
    ///
    /// `delay` must be total over the graph's nodes and every delay must be
    /// at least 1 for the result to be meaningful as a schedule bound.
    #[must_use]
    pub fn new(graph: &Cdfg, mut delay: impl FnMut(NodeId) -> u32) -> CriticalPath {
        let mut start = vec![0u32; graph.len()];
        let mut length = 0;
        for &id in graph.topological() {
            let s = graph
                .operands(id)
                .iter()
                .map(|&p| start[p.index()] + delay(p))
                .max()
                .unwrap_or(0);
            start[id.index()] = s;
            length = length.max(s + delay(id));
        }
        CriticalPath { start, length }
    }

    /// Earliest possible start cycle of `id` (unconstrained ASAP).
    #[must_use]
    pub fn earliest_start(&self, id: NodeId) -> u32 {
        self.start[id.index()]
    }

    /// Minimum achievable latency of the graph in cycles.
    #[must_use]
    pub fn length(&self) -> u32 {
        self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdfgBuilder, OpKind};

    fn sample() -> Cdfg {
        // x y      (inputs, delay 1)
        //  \ /
        //   a      add
        //   |
        //   m      mul
        //   |
        //   o      output
        let mut b = CdfgBuilder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let m = b.mul(a, y);
        b.output("o", m);
        b.finish().unwrap()
    }

    fn unit_delay(_: NodeId) -> u32 {
        1
    }

    #[test]
    fn critical_path_unit_delays() {
        let g = sample();
        let cp = CriticalPath::new(&g, unit_delay);
        // input(1) + add(1) + mul(1) + output(1) = 4
        assert_eq!(cp.length(), 4);
        let add = g.nodes().iter().find(|n| n.kind() == OpKind::Add).unwrap();
        assert_eq!(cp.earliest_start(add.id()), 1);
    }

    #[test]
    fn critical_path_weighted_mul() {
        let g = sample();
        let cp = CriticalPath::new(&g, |id| match g.node(id).kind() {
            OpKind::Mul => 4,
            _ => 1,
        });
        // 1 + 1 + 4 + 1 = 7
        assert_eq!(cp.length(), 7);
    }

    #[test]
    fn reachability_chain() {
        let g = sample();
        let r = Reachability::new(&g);
        let ids: Vec<NodeId> = g.node_ids().collect();
        let (x, y, a, m, o) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        assert!(r.reaches(x, o));
        assert!(r.reaches(y, m));
        assert!(r.reaches(a, m));
        assert!(!r.reaches(m, a));
        assert!(!r.reaches(x, y));
        assert!(r.ordered(a, o));
        assert!(!r.ordered(x, y));
    }

    #[test]
    fn node_does_not_reach_itself() {
        let g = sample();
        let r = Reachability::new(&g);
        for id in g.node_ids() {
            assert!(!r.reaches(id, id));
        }
    }

    #[test]
    fn descendant_counts() {
        let g = sample();
        let r = Reachability::new(&g);
        let ids: Vec<NodeId> = g.node_ids().collect();
        // x reaches a, m, o
        assert_eq!(r.descendant_count(ids[0]), 3);
        // y reaches a, m, o
        assert_eq!(r.descendant_count(ids[1]), 3);
        // o reaches nothing
        assert_eq!(r.descendant_count(ids[4]), 0);
    }

    #[test]
    fn incremental_reachability_matches_fresh() {
        use crate::{diff, GraphEdit};
        let g = crate::benchmarks::hal();
        let base = Reachability::new(&g);

        // One edit of each flavor, chained.
        let add = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Add)
            .unwrap()
            .id();
        let inp = g.inputs().next().unwrap().id();
        let mut edit = GraphEdit::new(&g);
        let m = edit.add_op(OpKind::Mul, &[add, inp]).unwrap();
        edit.rewire_edge(m, 1, add).unwrap();
        let edited = edit.finish().unwrap();
        let delta = diff(&g, &edited);
        assert!(!delta.degenerate());
        assert!(delta.cone_size() < edited.len(), "some rows stay clean");
        let inc = Reachability::incremental(&edited, &base, &delta);
        assert_eq!(inc, Reachability::new(&edited));

        // Removal path (drop the op again).
        let mut edit = GraphEdit::new(&edited);
        edit.remove_op(m).unwrap();
        let back = edit.finish().unwrap();
        let delta_back = diff(&edited, &back);
        let inc_back = Reachability::incremental(&back, &inc, &delta_back);
        assert_eq!(inc_back, Reachability::new(&back));

        // Degenerate deltas fall back to a full recompute.
        let other = crate::benchmarks::cosine();
        let d = diff(&g, &other);
        let fresh = Reachability::incremental(&other, &base, &d);
        assert_eq!(fresh, Reachability::new(&other));
    }

    #[test]
    fn preseeded_cache_hands_back_the_seed() {
        let g = crate::benchmarks::hal();
        let reach = Reachability::new(&g);
        let cache = AnalysisCache::with_reachability(reach.clone());
        assert_eq!(cache.reachability(&g), &reach);
    }

    #[test]
    fn reachability_agrees_with_dfs_on_wide_graph() {
        // A graph wider than 64 nodes exercises the multi-word bitset path.
        let mut b = CdfgBuilder::new("wide");
        let x = b.input("x");
        let y = b.input("y");
        let mut layer: Vec<NodeId> = (0..80).map(|_| b.add(x, y)).collect();
        for _ in 0..3 {
            layer = layer
                .chunks(2)
                .map(|c| {
                    if c.len() == 2 {
                        b.add(c[0], c[1])
                    } else {
                        b.add(c[0], y)
                    }
                })
                .collect();
        }
        b.output("o", layer[0]);
        let g = b.finish().unwrap();
        let r = Reachability::new(&g);

        // DFS-based oracle.
        let reaches_dfs = |from: NodeId, to: NodeId| -> bool {
            let mut stack = vec![from];
            let mut seen = vec![false; g.len()];
            while let Some(v) = stack.pop() {
                for &s in g.successors(v) {
                    if s == to {
                        return true;
                    }
                    if !seen[s.index()] {
                        seen[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
            false
        };
        for a in g.node_ids().step_by(7) {
            for c in g.node_ids().step_by(5) {
                assert_eq!(r.reaches(a, c), reaches_dfs(a, c), "{a} -> {c}");
            }
        }

        // The ancestor bitsets are the exact transpose of the descendant
        // bitsets, and row iteration enumerates exactly the set bits.
        for a in g.node_ids() {
            for c in g.node_ids() {
                assert_eq!(
                    r.reaches(a, c),
                    Reachability::bit(r.descendant_words(a), c.index())
                );
                assert_eq!(
                    r.reaches(a, c),
                    Reachability::bit(r.ancestor_words(c), a.index())
                );
            }
            let iterated: Vec<NodeId> = Reachability::iter_row(r.descendant_words(a)).collect();
            let expected: Vec<NodeId> = g.node_ids().filter(|&c| r.reaches(a, c)).collect();
            assert_eq!(iterated, expected);
        }
    }
}
