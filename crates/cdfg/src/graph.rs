//! The core CDFG data structure.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CdfgError;
use crate::op::OpKind;

/// Identifier of a node inside one [`Cdfg`].
///
/// Ids are dense indices assigned in insertion order, so they can be used
/// directly to index per-node side tables (`Vec`s of length
/// [`Cdfg::len`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub fn new(index: u32) -> NodeId {
        NodeId(index)
    }

    /// The raw index of the node, usable to address side tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operation node of a CDFG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: OpKind,
    label: String,
}

impl Node {
    /// The node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The operation this node performs.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Human-readable label. For inputs/outputs this is the port name and
    /// is unique within the graph.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A data-dependence edge: the value produced by `from` drives operand
/// `port` of `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Operand position at the consumer (`0` = left, `1` = right).
    pub port: usize,
}

/// An immutable, validated control/data-flow graph.
///
/// Construct one with [`CdfgBuilder`](crate::CdfgBuilder) or by parsing
/// the textual format with [`parse_cdfg`](crate::parse_cdfg). A `Cdfg` is
/// guaranteed acyclic with every node's operand ports fully and uniquely
/// connected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cdfg {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Predecessors of each node ordered by operand port.
    preds: Vec<Vec<NodeId>>,
    /// Successors of each node in insertion order (may repeat if one value
    /// feeds two ports of the same consumer).
    succs: Vec<Vec<NodeId>>,
    topo: Vec<NodeId>,
}

impl Cdfg {
    /// Builds and validates a graph from raw parts.
    ///
    /// `nodes[i]` must describe the node with id `i`. This is the low-level
    /// entry point; prefer [`CdfgBuilder`](crate::CdfgBuilder).
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError`] if an edge references an unknown node, a port
    /// is driven twice or missing, an `output` node is used as a value
    /// source, input/output names collide, or the graph is cyclic.
    pub fn from_parts(
        name: impl Into<String>,
        kinds_and_labels: Vec<(OpKind, String)>,
        edges: Vec<Edge>,
    ) -> Result<Cdfg, CdfgError> {
        let nodes: Vec<Node> = kinds_and_labels
            .into_iter()
            .enumerate()
            .map(|(i, (kind, label))| Node {
                id: NodeId::new(i as u32),
                kind,
                label,
            })
            .collect();
        let n = nodes.len();

        // Unique names for primary inputs and outputs.
        let mut seen = HashMap::new();
        for node in &nodes {
            if node.kind.is_io() {
                if let Some(_prev) = seen.insert(node.label.clone(), node.id) {
                    return Err(CdfgError::DuplicateName(node.label.clone()));
                }
            }
        }

        let mut preds: Vec<Vec<Option<NodeId>>> =
            nodes.iter().map(|nd| vec![None; nd.kind.arity()]).collect();
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for e in &edges {
            if e.from.index() >= n {
                return Err(CdfgError::UnknownNode(e.from));
            }
            if e.to.index() >= n {
                return Err(CdfgError::UnknownNode(e.to));
            }
            if !nodes[e.from.index()].kind.produces_value() {
                return Err(CdfgError::SourceProducesNoValue(e.from));
            }
            let ports = &mut preds[e.to.index()];
            if e.port >= ports.len() {
                return Err(CdfgError::Arity {
                    node: e.to,
                    expected: ports.len(),
                    found: e.port + 1,
                });
            }
            if ports[e.port].is_some() {
                return Err(CdfgError::DuplicatePort {
                    node: e.to,
                    port: e.port,
                });
            }
            ports[e.port] = Some(e.from);
            succs[e.from.index()].push(e.to);
        }

        let mut resolved_preds = Vec::with_capacity(n);
        for (i, ports) in preds.into_iter().enumerate() {
            let node = &nodes[i];
            let mut out = Vec::with_capacity(ports.len());
            for p in ports {
                match p {
                    Some(src) => out.push(src),
                    None => {
                        return Err(CdfgError::Arity {
                            node: node.id,
                            expected: node.kind.arity(),
                            found: out.len(),
                        })
                    }
                }
            }
            resolved_preds.push(out);
        }

        let topo = topological_order(n, &resolved_preds, &succs)?;

        Ok(Cdfg {
            name: name.into(),
            nodes,
            edges,
            preds: resolved_preds,
            succs,
            topo,
        })
    }

    /// The graph's name (e.g. `"hal"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in id order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// All edges in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The operands of `id`, ordered by port.
    #[must_use]
    pub fn operands(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// The consumers of the value produced by `id` (with multiplicity if
    /// one value feeds several ports of one consumer).
    #[must_use]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Nodes in a topological order (every node after all its operands).
    #[must_use]
    pub fn topological(&self) -> &[NodeId] {
        &self.topo
    }

    /// Primary input nodes in id order.
    pub fn inputs(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.kind == OpKind::Input)
    }

    /// Primary output nodes in id order.
    pub fn outputs(&self) -> impl Iterator<Item = &Node> + '_ {
        self.nodes.iter().filter(|n| n.kind == OpKind::Output)
    }

    /// Number of nodes of each kind, as `(kind, count)` pairs over
    /// [`OpKind::ALL`], omitting kinds with zero occurrences.
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(OpKind, usize)> {
        OpKind::ALL
            .into_iter()
            .map(|k| (k, self.nodes.iter().filter(|n| n.kind == k).count()))
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// A graph with every edge reversed (operand port information is
    /// preserved positionally but loses its arithmetic meaning).
    ///
    /// Used to derive ALAP-style schedules by running ASAP-style
    /// algorithms on the reversal. Output nodes become sources and input
    /// nodes become sinks; kinds are kept so delays/powers still resolve.
    #[must_use]
    pub fn reversed(&self) -> ReversedView<'_> {
        ReversedView { graph: self }
    }
}

/// A lightweight reversed adjacency view over a [`Cdfg`].
///
/// The view does not re-validate port structure (a reversed graph is not a
/// well-formed CDFG); it only exposes the dependence relation, which is all
/// scheduling needs.
#[derive(Debug, Clone, Copy)]
pub struct ReversedView<'a> {
    graph: &'a Cdfg,
}

impl<'a> ReversedView<'a> {
    /// Predecessors in the reversed graph (= successors in the original).
    #[must_use]
    pub fn preds(&self, id: NodeId) -> &'a [NodeId] {
        self.graph.successors(id)
    }

    /// Successors in the reversed graph (= operands in the original).
    #[must_use]
    pub fn succs(&self, id: NodeId) -> &'a [NodeId] {
        self.graph.operands(id)
    }

    /// Topological order of the reversed graph (reverse of the original's).
    pub fn topological(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.graph.topological().iter().rev().copied()
    }

    /// The underlying graph.
    #[must_use]
    pub fn original(&self) -> &'a Cdfg {
        self.graph
    }
}

/// Kahn's algorithm; reports a node on a cycle if one exists.
fn topological_order(
    n: usize,
    preds: &[Vec<NodeId>],
    succs: &[Vec<NodeId>],
) -> Result<Vec<NodeId>, CdfgError> {
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<NodeId> = (0..n as u32)
        .map(NodeId::new)
        .filter(|id| indeg[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = ready.pop() {
        order.push(id);
        for &s in &succs[id.index()] {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    if order.len() != n {
        let culprit = (0..n as u32)
            .map(NodeId::new)
            .find(|id| indeg[id.index()] > 0)
            .expect("cycle implies a node with remaining in-degree");
        return Err(CdfgError::Cycle(culprit));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdfgBuilder;

    fn diamond() -> Cdfg {
        let mut b = CdfgBuilder::new("diamond");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(OpKind::Add, &[x, y]);
        let m = b.op(OpKind::Mul, &[a, x]);
        let s = b.op(OpKind::Sub, &[a, m]);
        b.output("o", s);
        b.finish().expect("diamond is valid")
    }

    #[test]
    fn topological_respects_dependences() {
        let g = diamond();
        let pos: HashMap<NodeId, usize> = g
            .topological()
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        for e in g.edges() {
            assert!(pos[&e.from] < pos[&e.to], "{} -> {}", e.from, e.to);
        }
    }

    #[test]
    fn operands_ordered_by_port() {
        let g = diamond();
        // Node 4 is `sub(a, m)`; port order must be preserved.
        let sub = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Sub)
            .unwrap()
            .id();
        let ops = g.operands(sub);
        assert_eq!(g.node(ops[0]).kind(), OpKind::Add);
        assert_eq!(g.node(ops[1]).kind(), OpKind::Mul);
    }

    #[test]
    fn cycle_is_rejected() {
        let nodes = vec![(OpKind::Add, "a".to_owned()), (OpKind::Add, "b".to_owned())];
        // a and b feed each other (and themselves to fill arity): cycle.
        let edges = vec![
            Edge {
                from: NodeId::new(0),
                to: NodeId::new(1),
                port: 0,
            },
            Edge {
                from: NodeId::new(0),
                to: NodeId::new(1),
                port: 1,
            },
            Edge {
                from: NodeId::new(1),
                to: NodeId::new(0),
                port: 0,
            },
            Edge {
                from: NodeId::new(1),
                to: NodeId::new(0),
                port: 1,
            },
        ];
        let err = Cdfg::from_parts("cyc", nodes, edges).unwrap_err();
        assert!(matches!(err, CdfgError::Cycle(_)));
    }

    #[test]
    fn missing_operand_is_rejected() {
        let nodes = vec![
            (OpKind::Input, "x".to_owned()),
            (OpKind::Add, "a".to_owned()),
        ];
        let edges = vec![Edge {
            from: NodeId::new(0),
            to: NodeId::new(1),
            port: 0,
        }];
        let err = Cdfg::from_parts("bad", nodes, edges).unwrap_err();
        assert!(matches!(
            err,
            CdfgError::Arity {
                expected: 2,
                found: 1,
                ..
            }
        ));
    }

    #[test]
    fn duplicate_port_is_rejected() {
        let nodes = vec![
            (OpKind::Input, "x".to_owned()),
            (OpKind::Input, "y".to_owned()),
            (OpKind::Output, "o".to_owned()),
        ];
        let edges = vec![
            Edge {
                from: NodeId::new(0),
                to: NodeId::new(2),
                port: 0,
            },
            Edge {
                from: NodeId::new(1),
                to: NodeId::new(2),
                port: 0,
            },
        ];
        let err = Cdfg::from_parts("bad", nodes, edges).unwrap_err();
        assert!(matches!(err, CdfgError::DuplicatePort { port: 0, .. }));
    }

    #[test]
    fn output_cannot_source_values() {
        let nodes = vec![
            (OpKind::Input, "x".to_owned()),
            (OpKind::Output, "o".to_owned()),
            (OpKind::Output, "p".to_owned()),
        ];
        let edges = vec![
            Edge {
                from: NodeId::new(0),
                to: NodeId::new(1),
                port: 0,
            },
            Edge {
                from: NodeId::new(1),
                to: NodeId::new(2),
                port: 0,
            },
        ];
        let err = Cdfg::from_parts("bad", nodes, edges).unwrap_err();
        assert!(matches!(err, CdfgError::SourceProducesNoValue(_)));
    }

    #[test]
    fn duplicate_io_names_rejected() {
        let nodes = vec![
            (OpKind::Input, "x".to_owned()),
            (OpKind::Input, "x".to_owned()),
        ];
        let err = Cdfg::from_parts("bad", nodes, vec![]).unwrap_err();
        assert_eq!(err, CdfgError::DuplicateName("x".to_owned()));
    }

    #[test]
    fn unknown_node_in_edge_rejected() {
        let nodes = vec![(OpKind::Input, "x".to_owned())];
        let edges = vec![Edge {
            from: NodeId::new(5),
            to: NodeId::new(0),
            port: 0,
        }];
        let err = Cdfg::from_parts("bad", nodes, edges).unwrap_err();
        assert_eq!(err, CdfgError::UnknownNode(NodeId::new(5)));
    }

    #[test]
    fn reversed_view_swaps_adjacency() {
        let g = diamond();
        let rv = g.reversed();
        for e in g.edges() {
            assert!(rv.preds(e.from).contains(&e.to));
            assert!(rv.succs(e.to).contains(&e.from));
        }
        let fwd: Vec<_> = g.topological().to_vec();
        let bwd: Vec<_> = rv.topological().collect();
        let mut fwd_rev = fwd.clone();
        fwd_rev.reverse();
        assert_eq!(bwd, fwd_rev);
    }

    #[test]
    fn histogram_counts_kinds() {
        let g = diamond();
        let h: HashMap<OpKind, usize> = g.op_histogram().into_iter().collect();
        assert_eq!(h[&OpKind::Input], 2);
        assert_eq!(h[&OpKind::Add], 1);
        assert_eq!(h[&OpKind::Mul], 1);
        assert_eq!(h[&OpKind::Sub], 1);
        assert_eq!(h[&OpKind::Output], 1);
        assert!(!h.contains_key(&OpKind::Comp));
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId::new(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }
}
