//! Control/data-flow graph (CDFG) intermediate representation for
//! power-constrained high-level synthesis.
//!
//! This crate provides the graph substrate used by every other `pchls`
//! crate: operation nodes ([`OpKind`]), data-dependence edges with operand
//! ports, structural validation, graph analyses (topological order,
//! transitive closure, critical path), a reference interpreter used to
//! verify synthesized datapaths, textual and DOT serialization, a seeded
//! random-DAG generator for property tests, and the standard high-level
//! synthesis benchmark graphs evaluated in the paper (`hal`, `cosine`,
//! `elliptic`) plus several extras.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::{CdfgBuilder, OpKind};
//!
//! # fn main() -> Result<(), pchls_cdfg::CdfgError> {
//! let mut b = CdfgBuilder::new("tiny");
//! let x = b.input("x");
//! let y = b.input("y");
//! let s = b.op(OpKind::Add, &[x, y]);
//! b.output("s", s);
//! let graph = b.finish()?;
//! assert_eq!(graph.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod benchmarks;
mod builder;
mod delta;
mod dot;
mod edit;
mod error;
mod fingerprint;
mod graph;
mod interp;
mod op;
mod optimize;
mod random;
mod stats;
mod text;

pub use analysis::{iter_and_above, AnalysisCache, CriticalPath, NodeSet, Reachability};
pub use builder::CdfgBuilder;
pub use delta::{diff, GraphDelta};
pub use edit::{EditError, GraphEdit};
pub use error::CdfgError;
pub use fingerprint::{cone_fingerprints, graph_fingerprint, StableHasher};
pub use graph::{Cdfg, Edge, Node, NodeId};
pub use interp::{Interpreter, Stimulus, Value};
pub use op::OpKind;
pub use optimize::{optimize, OptimizeStats};
pub use random::{random_dag, RandomDagConfig};
pub use stats::GraphStats;
pub use text::{parse_cdfg, write_cdfg};
