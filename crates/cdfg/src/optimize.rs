//! Semantics-preserving graph rewrites: common-subexpression
//! elimination and dead-code elimination.
//!
//! These are front-end transforms a synthesis user applies *before*
//! scheduling: fewer operations mean less area, less energy and a
//! smaller power floor. They preserve the observable behaviour — every
//! primary output computes the same function of the primary inputs —
//! which the tests verify against the reference interpreter.

use std::collections::HashMap;

use crate::builder::CdfgBuilder;
use crate::graph::{Cdfg, NodeId};
use crate::op::OpKind;

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Operations removed because an identical computation already
    /// existed (CSE).
    pub merged: usize,
    /// Operations removed because no output depends on them (DCE).
    pub eliminated: usize,
}

/// Applies common-subexpression elimination followed by dead-code
/// elimination, returning the rewritten graph and what was removed.
///
/// Two operations are *common* when they have the same kind and the same
/// operands (same port order; commutative kinds also match with swapped
/// operands). Inputs are common only if they read the same named port.
/// The classic example is the paper's own `hal` benchmark, which
/// computes `u·dx` twice:
///
/// ```
/// use pchls_cdfg::{benchmarks, optimize};
/// let (optimized, stats) = optimize(&benchmarks::hal());
/// assert_eq!(stats.merged, 1); // the duplicated u*dx
/// assert_eq!(optimized.len(), benchmarks::hal().len() - 1);
/// ```
#[must_use]
pub fn optimize(graph: &Cdfg) -> (Cdfg, OptimizeStats) {
    let mut stats = OptimizeStats::default();

    // --- CSE: value-number every node in topological order. ---
    // representative[v] = the node computing v's value in the new graph.
    let mut representative: Vec<NodeId> = graph.node_ids().collect();
    let mut table: HashMap<(OpKind, Vec<NodeId>), NodeId> = HashMap::new();
    for &id in graph.topological() {
        let node = graph.node(id);
        if node.kind() == OpKind::Output {
            continue; // outputs are observable, never merged
        }
        let mut key_operands: Vec<NodeId> = graph
            .operands(id)
            .iter()
            .map(|&p| representative[p.index()])
            .collect();
        if node.kind().is_commutative() {
            key_operands.sort_unstable();
        }
        let key = if node.kind() == OpKind::Input {
            // Inputs are distinguished by name, encoded via their own id
            // (names are unique, so no two input nodes ever merge unless
            // they are the same node).
            (node.kind(), vec![id])
        } else {
            (node.kind(), key_operands)
        };
        match table.get(&key) {
            Some(&leader) => {
                representative[id.index()] = leader;
                stats.merged += 1;
            }
            None => {
                table.insert(key, id);
            }
        }
    }

    // --- DCE: keep only ancestors of outputs (through representatives).
    let mut live = vec![false; graph.len()];
    let mut stack: Vec<NodeId> = graph
        .outputs()
        .map(|n| n.id())
        .inspect(|&id| live[id.index()] = true)
        .collect();
    while let Some(id) = stack.pop() {
        for &p in graph.operands(id) {
            let rep = representative[p.index()];
            if !live[rep.index()] {
                live[rep.index()] = true;
                stack.push(rep);
            }
        }
    }
    for id in graph.node_ids() {
        if representative[id.index()] == id && !live[id.index()] {
            stats.eliminated += 1;
        }
    }

    // --- Rebuild: surviving representatives in *canonical* (smallest id
    // first) topological order over the quotient (merged) dependence
    // relation, so the pass is idempotent: a graph already in canonical
    // form keeps its node numbering.
    let mut b = CdfgBuilder::new(graph.name());
    let mut new_id: HashMap<NodeId, NodeId> = HashMap::new();
    for id in canonical_quotient_topo(graph, &representative, &live) {
        let node = graph.node(id);
        let operands: Vec<NodeId> = graph
            .operands(id)
            .iter()
            .map(|&p| new_id[&representative[p.index()]])
            .collect();
        let nid = match node.kind() {
            OpKind::Input => b.input(node.label()),
            OpKind::Output => b.output(node.label(), operands[0]),
            k => b.op_named(k, node.label(), &operands),
        };
        new_id.insert(id, nid);
    }
    let optimized = b.finish().expect("rewrite preserves validity");
    (optimized, stats)
}

/// Topological order of the surviving representatives under the merged
/// dependence relation, choosing the smallest-id ready node first —
/// unique for a given quotient, unlike the stack order of
/// [`Cdfg::topological`].
fn canonical_quotient_topo(graph: &Cdfg, representative: &[NodeId], live: &[bool]) -> Vec<NodeId> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let survives = |id: NodeId| representative[id.index()] == id && live[id.index()];
    // Quotient adjacency: rep -> reps of its operands.
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for id in graph.node_ids().filter(|&id| survives(id)) {
        let deg = graph.operands(id).len();
        indeg.insert(id, deg);
        for &p in graph.operands(id) {
            succs.entry(representative[p.index()]).or_default().push(id);
        }
    }
    let mut heap: BinaryHeap<Reverse<NodeId>> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&id, _)| Reverse(id))
        .collect();
    let mut order = Vec::with_capacity(indeg.len());
    while let Some(Reverse(id)) = heap.pop() {
        order.push(id);
        for &s in succs.get(&id).map_or(&[][..], Vec::as_slice) {
            let d = indeg.get_mut(&s).expect("successor survives");
            *d -= 1;
            if *d == 0 {
                heap.push(Reverse(s));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::interp::{Interpreter, Stimulus};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn equivalent(a: &Cdfg, b: &Cdfg, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let stim: Stimulus = a
                .inputs()
                .map(|n| (n.label().to_owned(), rng.gen_range(-1000..1000)))
                .collect();
            let ra = Interpreter::new(a).run(&stim).unwrap();
            let rb = Interpreter::new(b).run(&stim).unwrap();
            assert_eq!(ra, rb, "{} diverged after optimization", a.name());
        }
    }

    #[test]
    fn hal_loses_its_duplicate_multiplication() {
        let g = benchmarks::hal();
        let (o, stats) = optimize(&g);
        assert_eq!(stats.merged, 1);
        assert_eq!(stats.eliminated, 0);
        assert_eq!(
            o.nodes().iter().filter(|n| n.kind() == OpKind::Mul).count(),
            5
        );
        equivalent(&g, &o, 1);
    }

    #[test]
    fn optimization_is_idempotent() {
        for g in benchmarks::all() {
            let (once, _) = optimize(&g);
            let (twice, stats) = optimize(&once);
            assert_eq!(stats, OptimizeStats::default(), "{}", g.name());
            assert_eq!(once, twice, "{}", g.name());
        }
    }

    #[test]
    fn all_benchmarks_stay_equivalent() {
        for (i, g) in benchmarks::all().into_iter().enumerate() {
            let (o, _) = optimize(&g);
            equivalent(&g, &o, i as u64);
        }
    }

    #[test]
    fn commutative_duplicates_merge_across_operand_order() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m1 = b.mul(x, y);
        let m2 = b.mul(y, x); // same product, swapped operands
        let s = b.add(m1, m2);
        b.output("o", s);
        let g = b.finish().unwrap();
        let (o, stats) = optimize(&g);
        assert_eq!(stats.merged, 1);
        equivalent(&g, &o, 7);
    }

    #[test]
    fn non_commutative_orders_do_not_merge() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let s1 = b.sub(x, y);
        let s2 = b.sub(y, x); // different value!
        let a = b.add(s1, s2);
        b.output("o", a);
        let g = b.finish().unwrap();
        let (_, stats) = optimize(&g);
        assert_eq!(stats.merged, 0);
    }

    #[test]
    fn dead_code_is_removed() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let used = b.add(x, y);
        let dead1 = b.mul(x, y);
        let _dead2 = b.mul(dead1, y); // chain of dead ops
        b.output("o", used);
        let g = b.finish().unwrap();
        let (o, stats) = optimize(&g);
        assert_eq!(stats.eliminated, 2);
        assert_eq!(o.len(), 4); // x, y, add, output
        equivalent(&g, &o, 3);
    }

    #[test]
    fn transitive_cse_collapses_whole_chains() {
        // Two identical chains must fold into one, not just their heads.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        let m1 = b.mul(a1, x);
        let m2 = b.mul(a2, x);
        let s = b.add(m1, m2); // = 2·m1, but CSE only merges, not folds
        b.output("o", s);
        let g = b.finish().unwrap();
        let (o, stats) = optimize(&g);
        assert_eq!(stats.merged, 2, "both the adds and the muls merge");
        equivalent(&g, &o, 9);
        assert_eq!(o.len(), 6); // x, y, add, mul, add(m,m), out
    }

    #[test]
    fn chained_outputs_observe_merged_values() {
        // Two outputs exporting the same expression keep both ports.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(x, y);
        b.output("o1", a1);
        b.output("o2", a2);
        let g = b.finish().unwrap();
        let (o, stats) = optimize(&g);
        assert_eq!(stats.merged, 1);
        assert_eq!(o.outputs().count(), 2);
        equivalent(&g, &o, 11);
    }
}
