//! Structural statistics of a CDFG.

use serde::{Deserialize, Serialize};

use crate::analysis::CriticalPath;
use crate::graph::Cdfg;
use crate::op::OpKind;

/// Summary statistics of a graph's structure, under unit delays.
///
/// `width_profile[d]` is the number of operations whose unit-delay ASAP
/// level is `d` — the graph's inherent parallelism profile, which bounds
/// how much hardware sharing any schedule can achieve.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Total node count.
    pub nodes: usize,
    /// Total edge count.
    pub edges: usize,
    /// Unit-delay critical path length (graph depth).
    pub depth: u32,
    /// Maximum number of operations at one ASAP level (graph width).
    pub width: usize,
    /// Operations per ASAP level.
    pub width_profile: Vec<usize>,
    /// `(kind, count)` histogram, omitting absent kinds.
    pub op_histogram: Vec<(OpKind, usize)>,
    /// Largest operand fan-out of any value.
    pub max_fanout: usize,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    #[must_use]
    pub fn of(graph: &Cdfg) -> GraphStats {
        let cp = CriticalPath::new(graph, |_| 1);
        let depth = cp.length();
        let mut width_profile = vec![0usize; depth as usize];
        for id in graph.node_ids() {
            width_profile[cp.earliest_start(id) as usize] += 1;
        }
        GraphStats {
            nodes: graph.len(),
            edges: graph.edges().len(),
            depth,
            width: width_profile.iter().copied().max().unwrap_or(0),
            width_profile,
            op_histogram: graph.op_histogram(),
            max_fanout: graph
                .node_ids()
                .map(|id| graph.successors(id).len())
                .max()
                .unwrap_or(0),
        }
    }

    /// Average parallelism: nodes per level.
    #[must_use]
    pub fn average_width(&self) -> f64 {
        if self.depth == 0 {
            0.0
        } else {
            self.nodes as f64 / f64::from(self.depth)
        }
    }

    /// Renders the statistics as a short human-readable report.
    #[must_use]
    pub fn to_report(&self) -> String {
        let hist: Vec<String> = self
            .op_histogram
            .iter()
            .map(|(k, c)| format!("{c}x{}", k.symbol()))
            .collect();
        format!(
            "nodes: {}\nedges: {}\ndepth: {}\nwidth: {} (avg {:.1})\nmax fanout: {}\nops: {}\nwidth profile: {:?}\n",
            self.nodes,
            self.edges,
            self.depth,
            self.width,
            self.average_width(),
            self.max_fanout,
            hist.join(" "),
            self.width_profile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn hal_stats_are_exact() {
        let s = GraphStats::of(&benchmarks::hal());
        assert_eq!(s.nodes, 21);
        assert_eq!(s.depth, 6); // in, mul, mul, sub, sub, out (unit delays)
        assert_eq!(s.width_profile.iter().sum::<usize>(), 21);
        assert_eq!(s.width_profile[0], 6, "six inputs at level 0");
    }

    #[test]
    fn width_profile_covers_all_nodes() {
        for g in benchmarks::all() {
            let s = GraphStats::of(&g);
            assert_eq!(
                s.width_profile.iter().sum::<usize>(),
                s.nodes,
                "{}",
                g.name()
            );
            assert_eq!(s.width, *s.width_profile.iter().max().unwrap());
        }
    }

    #[test]
    fn report_mentions_key_numbers() {
        let s = GraphStats::of(&benchmarks::elliptic());
        let r = s.to_report();
        assert!(r.contains("nodes: 50"));
        assert!(r.contains("26x+"));
        assert!(r.contains("8x*"));
    }

    #[test]
    fn average_width_is_nodes_over_depth() {
        let s = GraphStats::of(&benchmarks::hal());
        assert!((s.average_width() - 21.0 / 6.0).abs() < 1e-12);
    }
}
