//! Operation kinds supported by the CDFG.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of computation a CDFG node performs.
///
/// The set mirrors the functional-unit library of the paper (Table 1):
/// arithmetic (`+`, `-`, `*`), comparison (`>`), and explicit primary
/// input (`imp`) / output (`xpt`) operations, which occupy `input` /
/// `output` modules for one cycle each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Two's-complement addition (`+`).
    Add,
    /// Two's-complement subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Greater-than comparison (`>`), producing `1` or `0`.
    ///
    /// A less-than comparison is expressed by swapping the operands.
    Comp,
    /// Primary input (the paper's `imp` operation).
    Input,
    /// Primary output (the paper's `xpt` operation).
    Output,
}

impl OpKind {
    /// All operation kinds, in a stable order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Comp,
        OpKind::Input,
        OpKind::Output,
    ];

    /// The arithmetic/comparison kinds that execute on shareable
    /// functional units (everything except [`OpKind::Input`] and
    /// [`OpKind::Output`]).
    pub const COMPUTE: [OpKind; 4] = [OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Comp];

    /// Dense index of this kind: its position in [`OpKind::ALL`], for
    /// flat kind-keyed arenas.
    ///
    /// ```
    /// use pchls_cdfg::OpKind;
    /// for (i, k) in OpKind::ALL.iter().enumerate() {
    ///     assert_eq!(k.index(), i);
    /// }
    /// ```
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of data operands the operation consumes.
    ///
    /// ```
    /// use pchls_cdfg::OpKind;
    /// assert_eq!(OpKind::Add.arity(), 2);
    /// assert_eq!(OpKind::Input.arity(), 0);
    /// ```
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            OpKind::Input => 0,
            OpKind::Output => 1,
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Comp => 2,
        }
    }

    /// Whether the operation produces a value consumed by other nodes.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Output)
    }

    /// Whether the operation is commutative in its operands.
    ///
    /// Used by binding to canonicalize interconnect estimation.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, OpKind::Add | OpKind::Mul)
    }

    /// Whether this is a primary input or output rather than a computation.
    #[must_use]
    pub fn is_io(self) -> bool {
        matches!(self, OpKind::Input | OpKind::Output)
    }

    /// The operator mnemonic used by the textual CDFG format.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Comp => "comp",
            OpKind::Input => "input",
            OpKind::Output => "output",
        }
    }

    /// Parses a mnemonic produced by [`OpKind::mnemonic`].
    ///
    /// Also accepts the symbolic forms `+`, `-`, `*`, `>`.
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<OpKind> {
        match s {
            "add" | "+" => Some(OpKind::Add),
            "sub" | "-" => Some(OpKind::Sub),
            "mul" | "*" => Some(OpKind::Mul),
            "comp" | ">" => Some(OpKind::Comp),
            "input" | "imp" => Some(OpKind::Input),
            "output" | "xpt" => Some(OpKind::Output),
            _ => None,
        }
    }

    /// The symbol used in the paper's Table 1 (`+`, `-`, `*`, `>`, `imp`,
    /// `xpt`).
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Comp => ">",
            OpKind::Input => "imp",
            OpKind::Output => "xpt",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl std::str::FromStr for OpKind {
    type Err = crate::CdfgError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OpKind::from_mnemonic(s).ok_or_else(|| crate::CdfgError::UnknownOp(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(OpKind::Input.arity(), 0);
        assert_eq!(OpKind::Output.arity(), 1);
        for k in OpKind::COMPUTE {
            assert_eq!(k.arity(), 2, "{k}");
        }
    }

    #[test]
    fn mnemonic_round_trip() {
        for k in OpKind::ALL {
            assert_eq!(OpKind::from_mnemonic(k.mnemonic()), Some(k));
        }
    }

    #[test]
    fn symbolic_forms_parse() {
        assert_eq!(OpKind::from_mnemonic("+"), Some(OpKind::Add));
        assert_eq!(OpKind::from_mnemonic("-"), Some(OpKind::Sub));
        assert_eq!(OpKind::from_mnemonic("*"), Some(OpKind::Mul));
        assert_eq!(OpKind::from_mnemonic(">"), Some(OpKind::Comp));
        assert_eq!(OpKind::from_mnemonic("imp"), Some(OpKind::Input));
        assert_eq!(OpKind::from_mnemonic("xpt"), Some(OpKind::Output));
        assert_eq!(OpKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn from_str_error_mentions_token() {
        let err = "frob".parse::<OpKind>().unwrap_err();
        assert!(err.to_string().contains("frob"));
    }

    #[test]
    fn commutativity() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Comp.is_commutative());
    }

    #[test]
    fn io_classification() {
        assert!(OpKind::Input.is_io());
        assert!(OpKind::Output.is_io());
        for k in OpKind::COMPUTE {
            assert!(!k.is_io());
        }
    }

    #[test]
    fn only_output_produces_no_value() {
        for k in OpKind::ALL {
            assert_eq!(k.produces_value(), k != OpKind::Output);
        }
    }
}
