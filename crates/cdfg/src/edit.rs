//! Validated, incremental editing of an existing [`Cdfg`].
//!
//! [`GraphEdit`] wraps a finished graph in a mutable working copy with
//! three primitive edits — [`add_op`](GraphEdit::add_op),
//! [`remove_op`](GraphEdit::remove_op) and
//! [`rewire_edge`](GraphEdit::rewire_edge) — each validated eagerly
//! with a typed [`EditError`], so edit-replay workloads and property
//! tests can build graph deltas without hand-rolling node and edge
//! vectors. Node ids stay stable for the whole edit session (removals
//! tombstone); [`finish`](GraphEdit::finish) compacts the survivors in
//! id order, which keeps the base→edited id mapping monotone — exactly
//! what [`diff`](crate::diff) needs to recover the delta.
//!
//! # Example
//!
//! ```
//! use pchls_cdfg::{CdfgBuilder, GraphEdit, OpKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CdfgBuilder::new("g");
//! let x = b.input("x");
//! let y = b.input("y");
//! let a = b.add(x, y);
//! b.output("o", a);
//! let base = b.finish()?;
//!
//! let mut edit = GraphEdit::new(&base);
//! let m = edit.add_op(OpKind::Mul, &[a, a])?;
//! edit.rewire_edge(m, 1, x)?;
//! let edited = edit.finish()?;
//! assert_eq!(edited.len(), base.len() + 1);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::error::CdfgError;
use crate::graph::{Cdfg, Edge, NodeId};
use crate::op::OpKind;

/// Errors produced by the eager validation in [`GraphEdit`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EditError {
    /// The node id does not exist in the graph being edited.
    UnknownNode(NodeId),
    /// The node was already removed in this edit session.
    RemovedNode(NodeId),
    /// The node still drives operands of other nodes and cannot be
    /// removed.
    HasConsumers(NodeId),
    /// Only compute operations can be added through the edit API
    /// (inputs/outputs carry interface contracts).
    NotCompute(OpKind),
    /// The node produces no value and cannot drive an operand.
    SourceProducesNoValue(NodeId),
    /// The consumer has no operand port with that index.
    NoSuchPort {
        /// The consumer node.
        node: NodeId,
        /// The out-of-range port.
        port: usize,
    },
    /// The rewire would create a dependence cycle.
    WouldCycle {
        /// The proposed producer.
        from: NodeId,
        /// The consumer whose operand was being rewired.
        to: NodeId,
    },
    /// Wrong operand count for the kind being added.
    Arity {
        /// Operands the kind requires.
        expected: usize,
        /// Operands supplied.
        found: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownNode(n) => write!(f, "node {n} does not exist in the graph"),
            EditError::RemovedNode(n) => write!(f, "node {n} was removed by this edit"),
            EditError::HasConsumers(n) => {
                write!(f, "node {n} still drives operands and cannot be removed")
            }
            EditError::NotCompute(k) => {
                write!(f, "only compute operations can be added, not `{k}`")
            }
            EditError::SourceProducesNoValue(n) => {
                write!(f, "node {n} produces no value but would drive an operand")
            }
            EditError::NoSuchPort { node, port } => {
                write!(f, "node {node} has no operand port {port}")
            }
            EditError::WouldCycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a dependence cycle")
            }
            EditError::Arity { expected, found } => {
                write!(f, "kind expects {expected} operand(s) but got {found}")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// A mutable working copy of a [`Cdfg`] supporting validated single-op
/// edits; surviving nodes keep their [`NodeId`]s (the id-stability
/// contract the diff/replay layers lean on), and removals leave holes
/// that [`finish`](GraphEdit::finish) compacts monotonically.
#[derive(Debug, Clone)]
pub struct GraphEdit {
    name: String,
    nodes: Vec<(OpKind, String)>,
    alive: Vec<bool>,
    /// Operand drivers by port, per node; kept arity-exact so every
    /// edit leaves a structurally complete graph.
    preds: Vec<Vec<NodeId>>,
}

impl GraphEdit {
    /// Starts an edit session over `graph`.
    #[must_use]
    pub fn new(graph: &Cdfg) -> GraphEdit {
        GraphEdit {
            name: graph.name().to_owned(),
            nodes: graph
                .nodes()
                .iter()
                .map(|n| (n.kind(), n.label().to_owned()))
                .collect(),
            alive: vec![true; graph.len()],
            preds: graph
                .node_ids()
                .map(|id| graph.operands(id).to_vec())
                .collect(),
        }
    }

    /// Number of nodes in the working copy, tombstoned removals
    /// included (ids below this are addressable).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the working copy has no nodes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` exists and has not been removed in this session.
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.alive.len() && self.alive[id.index()]
    }

    fn check_alive(&self, id: NodeId) -> Result<(), EditError> {
        if id.index() >= self.nodes.len() {
            return Err(EditError::UnknownNode(id));
        }
        if !self.alive[id.index()] {
            return Err(EditError::RemovedNode(id));
        }
        Ok(())
    }

    /// Adds a compute operation driven by the given live operands and
    /// returns its id (stable until [`finish`](GraphEdit::finish)).
    ///
    /// # Errors
    ///
    /// [`EditError::NotCompute`] for io kinds, [`EditError::Arity`] on
    /// operand count mismatch, [`EditError::UnknownNode`] /
    /// [`EditError::RemovedNode`] / [`EditError::SourceProducesNoValue`]
    /// on invalid operands.
    pub fn add_op(&mut self, kind: OpKind, operands: &[NodeId]) -> Result<NodeId, EditError> {
        if kind.is_io() {
            return Err(EditError::NotCompute(kind));
        }
        if operands.len() != kind.arity() {
            return Err(EditError::Arity {
                expected: kind.arity(),
                found: operands.len(),
            });
        }
        for &src in operands {
            self.check_alive(src)?;
            if !self.nodes[src.index()].0.produces_value() {
                return Err(EditError::SourceProducesNoValue(src));
            }
        }
        let id = NodeId::new(self.nodes.len() as u32);
        let label = format!("{}{}", kind.mnemonic(), self.nodes.len());
        self.nodes.push((kind, label));
        self.alive.push(true);
        self.preds.push(operands.to_vec());
        Ok(id)
    }

    /// Removes a node that drives no operands (tombstoned; its id stays
    /// addressable but dead for the rest of the session).
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownNode`] / [`EditError::RemovedNode`] for bad
    /// ids, [`EditError::HasConsumers`] while any live node still
    /// consumes its value.
    pub fn remove_op(&mut self, id: NodeId) -> Result<(), EditError> {
        self.check_alive(id)?;
        let consumed = self
            .preds
            .iter()
            .enumerate()
            .any(|(i, ports)| self.alive[i] && ports.contains(&id));
        if consumed {
            return Err(EditError::HasConsumers(id));
        }
        self.alive[id.index()] = false;
        Ok(())
    }

    /// Replaces the driver of operand `port` of `to` with `new_from`.
    ///
    /// # Errors
    ///
    /// [`EditError::UnknownNode`] / [`EditError::RemovedNode`] for bad
    /// ids, [`EditError::NoSuchPort`] for an out-of-range port,
    /// [`EditError::SourceProducesNoValue`] when `new_from` is an
    /// output, [`EditError::WouldCycle`] when `to` already (transitively)
    /// feeds `new_from`.
    pub fn rewire_edge(
        &mut self,
        to: NodeId,
        port: usize,
        new_from: NodeId,
    ) -> Result<(), EditError> {
        self.check_alive(to)?;
        self.check_alive(new_from)?;
        if port >= self.preds[to.index()].len() {
            return Err(EditError::NoSuchPort { node: to, port });
        }
        if !self.nodes[new_from.index()].0.produces_value() {
            return Err(EditError::SourceProducesNoValue(new_from));
        }
        // `new_from → to` cycles iff `to` is an ancestor of `new_from`
        // (self-rewire included): walk the operand DAG upward from
        // `new_from` looking for `to`.
        if new_from == to || self.reaches_upward(new_from, to) {
            return Err(EditError::WouldCycle { from: new_from, to });
        }
        self.preds[to.index()][port] = new_from;
        Ok(())
    }

    /// Whether `target` appears among the (transitive) operands of
    /// `start` in the current working copy.
    fn reaches_upward(&self, start: NodeId, target: NodeId) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for &p in &self.preds[v.index()] {
                if p == target {
                    return true;
                }
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        false
    }

    /// Compacts the survivors in id order and validates the result as
    /// a fresh [`Cdfg`]. Surviving ids shift down past removals only,
    /// so the base→edited mapping recovered by [`diff`](crate::diff)
    /// is monotone by construction.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError`] under the same conditions as
    /// [`Cdfg::from_parts`] — with eager per-edit validation the only
    /// realistic failure left is an arity gap from removing a node the
    /// session later rewired back into use, which the per-edit checks
    /// already prevent; the validation is kept as a final guarantee.
    pub fn finish(&self) -> Result<Cdfg, CdfgError> {
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut next = 0u32;
        for (i, &alive) in self.alive.iter().enumerate() {
            if alive {
                remap[i] = Some(NodeId::new(next));
                next += 1;
            }
        }
        let nodes: Vec<(OpKind, String)> = self
            .nodes
            .iter()
            .zip(&self.alive)
            .filter(|&(_, &alive)| alive)
            .map(|((k, l), _)| (*k, l.clone()))
            .collect();
        let mut edges = Vec::new();
        for (i, ports) in self.preds.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            let to = remap[i].expect("alive nodes are remapped");
            for (port, src) in ports.iter().enumerate() {
                let from = remap[src.index()].expect("live drivers only: removal is guarded");
                edges.push(Edge { from, to, port });
            }
        }
        Cdfg::from_parts(self.name.clone(), nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdfgBuilder;

    fn sample() -> (Cdfg, NodeId, NodeId, NodeId) {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        b.output("o", a);
        (b.finish().unwrap(), x, y, a)
    }

    #[test]
    fn add_remove_round_trip_is_structurally_identical() {
        let (g, _, _, a) = sample();
        let mut edit = GraphEdit::new(&g);
        let m = edit.add_op(OpKind::Mul, &[a, a]).unwrap();
        let bigger = edit.finish().unwrap();
        assert_eq!(bigger.len(), g.len() + 1);

        let mut edit = GraphEdit::new(&bigger);
        edit.remove_op(m).unwrap();
        let back = edit.finish().unwrap();
        assert_eq!(
            crate::graph_fingerprint(&back),
            crate::graph_fingerprint(&g)
        );
    }

    #[test]
    fn io_kinds_are_rejected() {
        let (g, x, _, _) = sample();
        let mut edit = GraphEdit::new(&g);
        assert_eq!(
            edit.add_op(OpKind::Input, &[]),
            Err(EditError::NotCompute(OpKind::Input))
        );
        assert_eq!(
            edit.add_op(OpKind::Output, &[x]),
            Err(EditError::NotCompute(OpKind::Output))
        );
    }

    #[test]
    fn arity_and_operand_validation() {
        let (g, x, _, a) = sample();
        let out = NodeId::new(3);
        let mut edit = GraphEdit::new(&g);
        assert_eq!(
            edit.add_op(OpKind::Add, &[x]),
            Err(EditError::Arity {
                expected: 2,
                found: 1
            })
        );
        assert_eq!(
            edit.add_op(OpKind::Add, &[x, NodeId::new(99)]),
            Err(EditError::UnknownNode(NodeId::new(99)))
        );
        assert_eq!(
            edit.add_op(OpKind::Add, &[x, out]),
            Err(EditError::SourceProducesNoValue(out))
        );
        let m = edit.add_op(OpKind::Mul, &[x, a]).unwrap();
        edit.remove_op(m).unwrap();
        assert_eq!(
            edit.add_op(OpKind::Add, &[x, m]),
            Err(EditError::RemovedNode(m))
        );
        assert!(!edit.is_alive(m));
    }

    #[test]
    fn consumed_nodes_cannot_be_removed() {
        let (g, x, _, a) = sample();
        let mut edit = GraphEdit::new(&g);
        assert_eq!(edit.remove_op(a), Err(EditError::HasConsumers(a)));
        assert_eq!(edit.remove_op(x), Err(EditError::HasConsumers(x)));
    }

    #[test]
    fn rewire_validates_ports_cycles_and_sources() {
        let (g, x, y, a) = sample();
        let out = NodeId::new(3);
        let mut edit = GraphEdit::new(&g);
        assert_eq!(
            edit.rewire_edge(a, 2, x),
            Err(EditError::NoSuchPort { node: a, port: 2 })
        );
        assert_eq!(
            edit.rewire_edge(a, 0, out),
            Err(EditError::SourceProducesNoValue(out))
        );
        assert_eq!(
            edit.rewire_edge(a, 0, a),
            Err(EditError::WouldCycle { from: a, to: a })
        );
        let m = edit.add_op(OpKind::Mul, &[a, y]).unwrap();
        assert_eq!(
            edit.rewire_edge(a, 0, m),
            Err(EditError::WouldCycle { from: m, to: a })
        );
        edit.rewire_edge(m, 1, x).unwrap();
        let edited = edit.finish().unwrap();
        assert_eq!(edited.operands(m), &[a, x]);
    }

    #[test]
    fn removal_compacts_ids_monotonically() {
        let (g, x, y, a) = sample();
        let mut edit = GraphEdit::new(&g);
        let m1 = edit.add_op(OpKind::Mul, &[x, y]).unwrap();
        let m2 = edit.add_op(OpKind::Sub, &[a, m1]).unwrap();
        let bigger = edit.finish().unwrap();
        // Remove m1's consumer first, then m1 (now consumerless).
        let mut edit = GraphEdit::new(&bigger);
        edit.remove_op(m2).unwrap();
        edit.remove_op(m1).unwrap();
        let back = edit.finish().unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(
            crate::graph_fingerprint(&back),
            crate::graph_fingerprint(&g)
        );
    }

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EditError>();
        let s = EditError::WouldCycle {
            from: NodeId::new(1),
            to: NodeId::new(2),
        }
        .to_string();
        assert!(s.contains("n1") && s.contains("n2"));
    }
}
