//! Graphviz DOT export.

use std::fmt::Write as _;

use crate::graph::Cdfg;
use crate::op::OpKind;

impl Cdfg {
    /// Renders the graph in Graphviz DOT format.
    ///
    /// Inputs are drawn as inverted houses, outputs as houses, and
    /// computation nodes as circles labelled with their operator symbol.
    ///
    /// ```
    /// use pchls_cdfg::benchmarks;
    /// let dot = benchmarks::hal().to_dot();
    /// assert!(dot.starts_with("digraph hal"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph {} {{", sanitize(self.name()));
        let _ = writeln!(s, "  rankdir=TB;");
        for node in self.nodes() {
            let (shape, label) = match node.kind() {
                OpKind::Input => ("invhouse", node.label().to_owned()),
                OpKind::Output => ("house", node.label().to_owned()),
                k => ("circle", k.symbol().to_owned()),
            };
            let _ = writeln!(
                s,
                "  {} [shape={shape}, label=\"{}\"];",
                node.id(),
                escape(&label)
            );
        }
        for e in self.edges() {
            let _ = writeln!(s, "  {} -> {} [headlabel=\"{}\"];", e.from, e.to, e.port);
        }
        s.push_str("}\n");
        s
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "g".to_owned()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::CdfgBuilder;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let mut b = CdfgBuilder::new("tiny graph");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        b.output("o", a);
        let g = b.finish().unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph tiny_graph {"));
        for node in g.nodes() {
            assert!(dot.contains(&node.id().to_string()));
        }
        assert_eq!(dot.matches(" -> ").count(), g.edges().len());
    }

    #[test]
    fn names_starting_with_digits_are_sanitized() {
        let mut b = CdfgBuilder::new("8dct");
        let x = b.input("x");
        b.output("o", x);
        let g = b.finish().unwrap();
        assert!(g.to_dot().starts_with("digraph g8dct"));
    }
}
