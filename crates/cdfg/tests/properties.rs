//! Property-based tests over the CDFG substrate.

use proptest::prelude::*;

use pchls_cdfg::{
    parse_cdfg, random_dag, write_cdfg, CriticalPath, Interpreter, OpKind, RandomDagConfig,
    Reachability, Stimulus,
};

prop_compose! {
    fn config()(
        ops in 1usize..60,
        inputs in 1usize..6,
        outputs in 1usize..4,
        mul_permille in 0u32..1000,
        depth_bias in 0u32..6,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

proptest! {
    /// Every generated DAG is valid and survives a textual round trip.
    #[test]
    fn text_format_round_trips(cfg in config()) {
        let g = random_dag(&cfg);
        let text = write_cdfg(&g);
        let back = parse_cdfg(&text).expect("serialized graph parses");
        prop_assert_eq!(back, g);
    }

    /// Topological order is consistent with every edge.
    #[test]
    fn topological_order_is_valid(cfg in config()) {
        let g = random_dag(&cfg);
        let pos: std::collections::HashMap<_, _> =
            g.topological().iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for e in g.edges() {
            prop_assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    /// Reachability is transitive and edge-consistent.
    #[test]
    fn reachability_is_transitive(cfg in config()) {
        let g = random_dag(&cfg);
        let r = Reachability::new(&g);
        for e in g.edges() {
            prop_assert!(r.reaches(e.from, e.to));
            // Everything the head reaches, the tail reaches too.
            for id in g.node_ids() {
                if r.reaches(e.to, id) {
                    prop_assert!(r.reaches(e.from, id));
                }
            }
        }
    }

    /// The critical path bounds every node's earliest start + delay.
    #[test]
    fn critical_path_is_an_upper_bound(cfg in config()) {
        let g = random_dag(&cfg);
        let delay = |id: pchls_cdfg::NodeId| match g.node(id).kind() {
            OpKind::Mul => 2,
            _ => 1,
        };
        let cp = CriticalPath::new(&g, delay);
        for id in g.node_ids() {
            prop_assert!(cp.earliest_start(id) + delay(id) <= cp.length());
            // Earliest start respects operands.
            for &p in g.operands(id) {
                prop_assert!(cp.earliest_start(id) >= cp.earliest_start(p) + delay(p));
            }
        }
    }

    /// Interpretation is deterministic and total on generated graphs.
    #[test]
    fn interpreter_is_deterministic(cfg in config(), vals in proptest::collection::vec(any::<i64>(), 6)) {
        let g = random_dag(&cfg);
        let stim: Stimulus = g
            .inputs()
            .enumerate()
            .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
            .collect();
        let a = Interpreter::new(&g).run(&stim).expect("total");
        let b = Interpreter::new(&g).run(&stim).expect("total");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), g.outputs().count());
    }

    /// Comparison outputs are always 0 or 1.
    #[test]
    fn comparisons_are_boolean(cfg in config(), vals in proptest::collection::vec(any::<i64>(), 6)) {
        let g = random_dag(&cfg);
        let stim: Stimulus = g
            .inputs()
            .enumerate()
            .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
            .collect();
        let all = Interpreter::new(&g).run_all(&stim).expect("total");
        for id in g.node_ids() {
            if g.node(id).kind() == OpKind::Comp {
                prop_assert!(all[&id] == 0 || all[&id] == 1);
            }
        }
    }
}

mod optimize_props {
    use super::*;
    use pchls_cdfg::optimize;

    proptest! {
        /// Optimization preserves semantics on arbitrary random DAGs.
        #[test]
        fn optimize_preserves_semantics(
            cfg in config(),
            vals in proptest::collection::vec(any::<i64>(), 6),
        ) {
            let g = random_dag(&cfg);
            let (o, stats) = optimize(&g);
            prop_assert_eq!(o.len() + stats.merged + stats.eliminated, g.len());
            let stim: Stimulus = g
                .inputs()
                .enumerate()
                .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
                .collect();
            let before = Interpreter::new(&g).run(&stim).expect("total");
            let after = Interpreter::new(&o).run(&stim).expect("total");
            prop_assert_eq!(before, after);
        }

        /// Optimization is idempotent on arbitrary random DAGs.
        #[test]
        fn optimize_is_idempotent(cfg in config()) {
            let g = random_dag(&cfg);
            let (once, _) = optimize(&g);
            let (twice, stats) = optimize(&once);
            prop_assert_eq!(stats.merged, 0);
            prop_assert_eq!(stats.eliminated, 0);
            prop_assert_eq!(once, twice);
        }
    }
}
