//! Property-based tests over the CDFG substrate.

use proptest::prelude::*;

use pchls_cdfg::{
    parse_cdfg, random_dag, write_cdfg, CriticalPath, Interpreter, OpKind, RandomDagConfig,
    Reachability, Stimulus,
};

mod fingerprint_props {
    use super::*;
    use pchls_cdfg::{graph_fingerprint, Cdfg, Edge, NodeId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
        for i in (1..v.len()).rev() {
            let j = rng.gen_range(0usize..i + 1);
            v.swap(i, j);
        }
    }

    /// Rebuilds `g` with node insertion order permuted by `seed` (a
    /// full relabeling — every `NodeId` changes) and the edge list
    /// independently shuffled. Structurally the same graph.
    fn permuted(g: &Cdfg, seed: u64) -> Cdfg {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = g.len();
        let mut perm: Vec<usize> = (0..n).collect();
        shuffle(&mut perm, &mut rng);
        let mut inv = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let nodes: Vec<(OpKind, String)> = perm
            .iter()
            .map(|&old| {
                let nd = &g.nodes()[old];
                (nd.kind(), nd.label().to_owned())
            })
            .collect();
        let mut edges: Vec<Edge> = g
            .edges()
            .iter()
            .map(|e| Edge {
                from: NodeId::new(inv[e.from.index()] as u32),
                to: NodeId::new(inv[e.to.index()] as u32),
                port: e.port,
            })
            .collect();
        shuffle(&mut edges, &mut rng);
        Cdfg::from_parts(g.name(), nodes, edges).expect("permutation preserves validity")
    }

    /// The raw parts of `g`, for rebuilding mutated variants.
    fn parts(g: &Cdfg) -> (Vec<(OpKind, String)>, Vec<Edge>) {
        (
            g.nodes()
                .iter()
                .map(|n| (n.kind(), n.label().to_owned()))
                .collect(),
            g.edges().to_vec(),
        )
    }

    /// A corpus of structurally mutated variants of `g` (each one a
    /// valid graph that differs from `g` under full structural
    /// equality): kind flips, io renames, graph rename, operand-port
    /// swaps.
    fn mutations(g: &Cdfg, seed: u64) -> Vec<Cdfg> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6d75_7461_7465);
        let mut out = Vec::new();

        // Graph rename.
        let (nodes, edges) = parts(g);
        out.push(Cdfg::from_parts(format!("{}_m", g.name()), nodes, edges).unwrap());

        // Flip the kind of one random compute op (all compute kinds are
        // binary, so validity is preserved).
        let compute: Vec<usize> = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.kind().is_io())
            .map(|(i, _)| i)
            .collect();
        if !compute.is_empty() {
            let victim = compute[rng.gen_range(0usize..compute.len())];
            let (mut nodes, edges) = parts(g);
            let old = nodes[victim].0;
            let new = OpKind::COMPUTE
                .into_iter()
                .find(|&k| k != old)
                .expect("more than one compute kind exists");
            nodes[victim].0 = new;
            out.push(Cdfg::from_parts(g.name(), nodes, edges).unwrap());
        }

        // Rename one io port.
        let io: Vec<usize> = g
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind().is_io())
            .map(|(i, _)| i)
            .collect();
        if !io.is_empty() {
            let victim = io[rng.gen_range(0usize..io.len())];
            let (mut nodes, edges) = parts(g);
            nodes[victim].1 = format!("{}_renamed", nodes[victim].1);
            out.push(Cdfg::from_parts(g.name(), nodes, edges).unwrap());
        }

        // Swap the operand ports of one binary node whose two operands
        // differ (a structural change even for commutative ops: the
        // port assignment is part of the graph).
        if let Some(victim) = g
            .node_ids()
            .find(|&id| g.operands(id).len() == 2 && g.operands(id)[0] != g.operands(id)[1])
        {
            let (nodes, mut edges) = parts(g);
            for e in &mut edges {
                if e.to == victim {
                    e.port = 1 - e.port;
                }
            }
            out.push(Cdfg::from_parts(g.name(), nodes, edges).unwrap());
        }

        out
    }

    proptest! {
        /// The fingerprint is invariant under op/edge insertion-order
        /// permutation (which full equality is not), and distinguishes
        /// a corpus of structural mutations — differential against full
        /// structural equality in both directions.
        #[test]
        fn fingerprint_is_permutation_invariant_and_mutation_sensitive(
            cfg in config(),
            seed in any::<u64>(),
        ) {
            let g = random_dag(&cfg);
            let fp = graph_fingerprint(&g);

            // Same structure, different insertion order: same print.
            let p = permuted(&g, seed);
            prop_assert_eq!(graph_fingerprint(&p), fp, "permutation changed the fingerprint");
            // (Full equality sees the permutation whenever it actually
            // moved something; the fingerprint must not.)

            // Structural mutations: different print, no collisions
            // among the corpus either.
            let corpus = mutations(&g, seed);
            for (i, m) in corpus.iter().enumerate() {
                prop_assert!(m != &g, "mutation {i} must differ structurally");
                prop_assert!(
                    graph_fingerprint(m) != fp,
                    "mutation {i} fingerprinted like the original"
                );
            }
            for (i, a) in corpus.iter().enumerate() {
                for (j, b) in corpus.iter().enumerate().skip(i + 1) {
                    if a != b {
                        prop_assert!(
                            graph_fingerprint(a) != graph_fingerprint(b),
                            "mutations {i} and {j} collide"
                        );
                    }
                }
            }
        }

        /// Serialization round trips preserve the fingerprint: the text
        /// format is just another insertion order.
        #[test]
        fn fingerprint_survives_text_round_trip(cfg in config()) {
            let g = random_dag(&cfg);
            let back = parse_cdfg(&write_cdfg(&g)).expect("round trip");
            prop_assert_eq!(graph_fingerprint(&back), graph_fingerprint(&g));
        }
    }
}

prop_compose! {
    fn config()(
        ops in 1usize..60,
        inputs in 1usize..6,
        outputs in 1usize..4,
        mul_permille in 0u32..1000,
        depth_bias in 0u32..6,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

proptest! {
    /// Every generated DAG is valid and survives a textual round trip.
    #[test]
    fn text_format_round_trips(cfg in config()) {
        let g = random_dag(&cfg);
        let text = write_cdfg(&g);
        let back = parse_cdfg(&text).expect("serialized graph parses");
        prop_assert_eq!(back, g);
    }

    /// Topological order is consistent with every edge.
    #[test]
    fn topological_order_is_valid(cfg in config()) {
        let g = random_dag(&cfg);
        let pos: std::collections::HashMap<_, _> =
            g.topological().iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for e in g.edges() {
            prop_assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    /// Reachability is transitive and edge-consistent.
    #[test]
    fn reachability_is_transitive(cfg in config()) {
        let g = random_dag(&cfg);
        let r = Reachability::new(&g);
        for e in g.edges() {
            prop_assert!(r.reaches(e.from, e.to));
            // Everything the head reaches, the tail reaches too.
            for id in g.node_ids() {
                if r.reaches(e.to, id) {
                    prop_assert!(r.reaches(e.from, id));
                }
            }
        }
    }

    /// The critical path bounds every node's earliest start + delay.
    #[test]
    fn critical_path_is_an_upper_bound(cfg in config()) {
        let g = random_dag(&cfg);
        let delay = |id: pchls_cdfg::NodeId| match g.node(id).kind() {
            OpKind::Mul => 2,
            _ => 1,
        };
        let cp = CriticalPath::new(&g, delay);
        for id in g.node_ids() {
            prop_assert!(cp.earliest_start(id) + delay(id) <= cp.length());
            // Earliest start respects operands.
            for &p in g.operands(id) {
                prop_assert!(cp.earliest_start(id) >= cp.earliest_start(p) + delay(p));
            }
        }
    }

    /// Interpretation is deterministic and total on generated graphs.
    #[test]
    fn interpreter_is_deterministic(cfg in config(), vals in proptest::collection::vec(any::<i64>(), 6)) {
        let g = random_dag(&cfg);
        let stim: Stimulus = g
            .inputs()
            .enumerate()
            .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
            .collect();
        let a = Interpreter::new(&g).run(&stim).expect("total");
        let b = Interpreter::new(&g).run(&stim).expect("total");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), g.outputs().count());
    }

    /// Comparison outputs are always 0 or 1.
    #[test]
    fn comparisons_are_boolean(cfg in config(), vals in proptest::collection::vec(any::<i64>(), 6)) {
        let g = random_dag(&cfg);
        let stim: Stimulus = g
            .inputs()
            .enumerate()
            .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
            .collect();
        let all = Interpreter::new(&g).run_all(&stim).expect("total");
        for id in g.node_ids() {
            if g.node(id).kind() == OpKind::Comp {
                prop_assert!(all[&id] == 0 || all[&id] == 1);
            }
        }
    }
}

mod optimize_props {
    use super::*;
    use pchls_cdfg::optimize;

    proptest! {
        /// Optimization preserves semantics on arbitrary random DAGs.
        #[test]
        fn optimize_preserves_semantics(
            cfg in config(),
            vals in proptest::collection::vec(any::<i64>(), 6),
        ) {
            let g = random_dag(&cfg);
            let (o, stats) = optimize(&g);
            prop_assert_eq!(o.len() + stats.merged + stats.eliminated, g.len());
            let stim: Stimulus = g
                .inputs()
                .enumerate()
                .map(|(i, n)| (n.label().to_owned(), vals[i % vals.len()]))
                .collect();
            let before = Interpreter::new(&g).run(&stim).expect("total");
            let after = Interpreter::new(&o).run(&stim).expect("total");
            prop_assert_eq!(before, after);
        }

        /// Optimization is idempotent on arbitrary random DAGs.
        #[test]
        fn optimize_is_idempotent(cfg in config()) {
            let g = random_dag(&cfg);
            let (once, _) = optimize(&g);
            let (twice, stats) = optimize(&once);
            prop_assert_eq!(stats.merged, 0);
            prop_assert_eq!(stats.eliminated, 0);
            prop_assert_eq!(once, twice);
        }
    }
}

mod nodeset_props {
    use super::*;
    use pchls_cdfg::{iter_and_above, NodeId, NodeSet};

    proptest! {
        /// `NodeSet` agrees with a `Vec<bool>` reference under arbitrary
        /// insert/remove sequences, including across word boundaries.
        #[test]
        fn nodeset_matches_bool_vec(
            len in 1usize..200,
            ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..256),
        ) {
            let mut set = NodeSet::empty(len);
            let mut reference = vec![false; len];
            for (insert, raw) in ops {
                let i = (raw % len as u64) as usize;
                if insert {
                    set.insert(NodeId::new(i as u32));
                    reference[i] = true;
                } else {
                    set.remove(NodeId::new(i as u32));
                    reference[i] = false;
                }
            }
            prop_assert_eq!(set.count(), reference.iter().filter(|&&b| b).count());
            for (i, &bit) in reference.iter().enumerate() {
                prop_assert_eq!(set.contains(NodeId::new(i as u32)), bit);
            }
            let iterated: Vec<usize> = set.iter().map(|id| id.index()).collect();
            let expected: Vec<usize> =
                (0..len).filter(|&i| reference[i]).collect();
            prop_assert_eq!(iterated, expected);
        }

        /// `full` then `clear`/`fill` keep the trailing-bits-zero invariant:
        /// whole-word counts never see phantom members past `len`.
        #[test]
        fn nodeset_full_has_exact_popcount(len in 1usize..300) {
            let mut set = NodeSet::full(len);
            prop_assert_eq!(set.count(), len);
            set.clear();
            prop_assert_eq!(set.count(), 0);
            set.fill();
            prop_assert_eq!(set.count(), len);
            prop_assert_eq!(
                set.words().iter().map(|w| w.count_ones() as usize).sum::<usize>(),
                len
            );
        }

        /// The word-walk `a ∧ b ∧ (id > above)` primitive agrees with the
        /// scalar filter it replaces.
        #[test]
        fn iter_and_above_matches_scalar_filter(
            len in 1usize..200,
            a_bits in proptest::collection::vec(any::<u64>(), 0..128),
            b_bits in proptest::collection::vec(any::<u64>(), 0..128),
            above_raw in any::<u64>(),
        ) {
            let mut a = NodeSet::empty(len);
            let mut b = NodeSet::empty(len);
            for raw in a_bits {
                a.insert(NodeId::new((raw % len as u64) as u32));
            }
            for raw in b_bits {
                b.insert(NodeId::new((raw % len as u64) as u32));
            }
            let above = (above_raw % len as u64) as usize;
            let walked: Vec<usize> = iter_and_above(a.words(), b.words(), above)
                .map(|id| id.index())
                .collect();
            let expected: Vec<usize> = (0..len)
                .filter(|&i| {
                    i > above
                        && a.contains(NodeId::new(i as u32))
                        && b.contains(NodeId::new(i as u32))
                })
                .collect();
            prop_assert_eq!(walked, expected);
        }
    }
}
