//! Fuzz-style property tests for the framing layer: arbitrary byte
//! streams cut at arbitrary split points must frame identically to a
//! reference one-shot splitter, and codec memory must stay bounded no
//! matter how hostile the input.

use pchls_net::{FrameError, LineCodec};
use proptest::prelude::*;

/// Maps weighted (class, raw) pairs to a byte stream with a healthy
/// mix of newlines, carriage returns, letters, and arbitrary bytes.
fn to_stream(pairs: &[(u32, u32)]) -> Vec<u8> {
    pairs
        .iter()
        .map(|&(class, raw)| match class {
            0 | 1 => b'\n',
            2 => b'\r',
            3..=7 => b'a' + (raw % 26) as u8,
            _ => (raw % 256) as u8,
        })
        .collect()
}

/// Reference model: frame the whole stream in one pass.
fn reference_frames(stream: &[u8], max_line: usize) -> Vec<Result<Vec<u8>, FrameError>> {
    let mut out: Vec<Vec<u8>> = stream.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
    // split() yields a trailing element after the last newline (the
    // unterminated partial) — not a frame, but crossing the cap is
    // reported eagerly even before the newline arrives.
    let tail_overflow = out.pop().is_some_and(|tail| tail.len() > max_line);
    let mut frames: Vec<Result<Vec<u8>, FrameError>> = out
        .into_iter()
        .map(|mut line| {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > max_line {
                Err(FrameError::TooLong(max_line))
            } else {
                Ok(line)
            }
        })
        .collect();
    if tail_overflow {
        frames.push(Err(FrameError::TooLong(max_line)));
    }
    frames
}

fn drain(codec: &mut LineCodec) -> Vec<Result<Vec<u8>, FrameError>> {
    std::iter::from_fn(|| codec.next_frame()).collect()
}

proptest! {
    /// Any split of the same byte stream produces the same frames.
    #[test]
    fn framing_is_split_invariant(
        pairs in proptest::collection::vec((0u32..10, 0u32..4096), 0usize..512),
        cuts in proptest::collection::vec(0usize..513, 0usize..16),
        max_line in 1usize..64,
    ) {
        let stream = to_stream(&pairs);
        let mut cuts: Vec<usize> = cuts.into_iter().filter(|&c| c <= stream.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut codec = LineCodec::new(max_line);
        let mut start = 0;
        for &cut in &cuts {
            codec.push(&stream[start..cut]);
            start = cut;
        }
        codec.push(&stream[start..]);

        let got = drain(&mut codec);
        let want = reference_frames(&stream, max_line);
        prop_assert_eq!(got, want);
    }

    /// The unterminated tail survives framing exactly, unless it went
    /// oversized (then it is discarded, and memory stays bounded).
    #[test]
    fn partial_tail_matches_or_is_discarded(
        raw in proptest::collection::vec(0u32..256, 0usize..256),
        max_line in 1usize..64,
    ) {
        let stream: Vec<u8> = raw.iter().map(|&b| (b % 256) as u8).collect();
        let mut codec = LineCodec::new(max_line);
        // Feed one byte at a time — the worst-case split.
        for &b in &stream {
            codec.push(std::slice::from_ref(&b));
        }
        let tail: &[u8] = match stream.iter().rposition(|&b| b == b'\n') {
            Some(nl) => &stream[nl + 1..],
            None => &stream,
        };
        if tail.len() > max_line {
            prop_assert!(codec.partial().is_empty(), "oversized tail must be dropped");
        } else {
            prop_assert_eq!(codec.partial(), tail);
        }
        // Invariant regardless of input: buffered bytes never exceed the cap.
        prop_assert!(codec.partial().len() <= max_line);
    }

    /// Hostile no-newline floods never grow the buffer past the cap and
    /// report exactly one error per oversized line.
    #[test]
    fn flood_without_newlines_is_bounded(
        raw in proptest::collection::vec(0u32..255, 1usize..128),
        repeats in 1usize..64,
        max_line in 1usize..32,
    ) {
        // Map 0..255 onto the byte range skipping b'\n' (10).
        let chunk: Vec<u8> = raw.iter().map(|&b| if b >= 10 { (b + 1) as u8 } else { b as u8 }).collect();
        let mut codec = LineCodec::new(max_line);
        for _ in 0..repeats {
            codec.push(&chunk);
        }
        prop_assert!(codec.partial().len() <= max_line);
        let frames = drain(&mut codec);
        let errors = frames.iter().filter(|f| f.is_err()).count();
        prop_assert!(errors <= 1, "at most one TooLong per oversized line: {frames:?}");
        prop_assert_eq!(frames.len(), errors, "no complete lines without a newline");
    }
}
