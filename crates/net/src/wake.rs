//! Cross-thread reactor wakeup over a nonblocking pipe.
//!
//! The reactor parks inside `Poller::wait`. Worker threads that finish
//! a job (or any other thread that wants the loop's attention) call
//! [`Waker::wake`], which writes one byte into a pipe whose read end is
//! registered with the poller — readiness on that fd is the wake
//! signal. A full pipe means a wake is already pending, so `EAGAIN` is
//! success; the reactor drains the pipe on each wake so signals
//! coalesce instead of accumulating.

use std::io;
use std::sync::Arc;

use crate::sys;

#[derive(Debug)]
struct Pipe {
    read_fd: i32,
    write_fd: i32,
}

impl Drop for Pipe {
    fn drop(&mut self) {
        let _ = sys::close(self.read_fd);
        let _ = sys::close(self.write_fd);
    }
}

/// Handle threads use to rouse a parked reactor. Cheap to clone; all
/// clones share one pipe.
#[derive(Debug, Clone)]
pub struct Waker {
    pipe: Arc<Pipe>,
}

/// The reactor-side read end of a wakeup pipe.
///
/// Owns nothing extra — the fds live as long as any [`Waker`] clone or
/// this half does.
#[derive(Debug)]
pub struct WakeReader {
    pipe: Arc<Pipe>,
}

/// Creates a connected wakeup pair: register
/// [`WakeReader::fd`] with the poller, hand the [`Waker`] to producer
/// threads.
pub fn wake_pair() -> io::Result<(Waker, WakeReader)> {
    let (read_fd, write_fd) = sys::pipe2_nonblocking()?;
    let pipe = Arc::new(Pipe { read_fd, write_fd });
    Ok((Waker { pipe: pipe.clone() }, WakeReader { pipe }))
}

impl Waker {
    /// Signals the reactor. Idempotent while a wake is pending — a full
    /// pipe already guarantees the loop will run, so `EAGAIN` is `Ok`.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write(self.pipe.write_fd, &[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if sys::is_would_block(&e) => Ok(()),
            Err(e) if sys::is_interrupted(&e) => self.wake(),
            Err(e) => Err(e),
        }
    }
}

impl WakeReader {
    /// The fd to register for readable interest.
    #[must_use]
    pub fn fd(&self) -> i32 {
        self.pipe.read_fd
    }

    /// Consumes all pending wake bytes, coalescing any number of
    /// [`Waker::wake`] calls into one observed wake. Returns whether
    /// anything was drained.
    pub fn drain(&self) -> io::Result<bool> {
        let mut buf = [0u8; 64];
        let mut any = false;
        loop {
            match sys::read(self.pipe.read_fd, &mut buf) {
                Ok(0) => return Ok(any), // writer closed: nothing more will come
                Ok(_) => any = true,
                Err(e) if sys::is_would_block(&e) => return Ok(any),
                Err(e) if sys::is_interrupted(&e) => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_then_drain_round_trips() {
        let (waker, reader) = wake_pair().unwrap();
        assert!(!reader.drain().unwrap(), "no wake pending initially");
        waker.wake().unwrap();
        waker.wake().unwrap();
        assert!(reader.drain().unwrap(), "wakes observed");
        assert!(!reader.drain().unwrap(), "wakes coalesced and consumed");
    }

    #[test]
    fn wake_survives_a_full_pipe() {
        let (waker, reader) = wake_pair().unwrap();
        // A pipe holds 64 KiB by default; hammer well past that.
        for _ in 0..100_000 {
            waker.wake().unwrap();
        }
        assert!(reader.drain().unwrap());
    }

    #[test]
    fn waker_clones_share_the_pipe() {
        let (waker, reader) = wake_pair().unwrap();
        let clone = waker.clone();
        drop(waker);
        clone.wake().unwrap();
        assert!(reader.drain().unwrap());
    }
}
