//! `pchls-net` — a hand-rolled nonblocking reactor for the serve tier.
//!
//! The workspace vendors every dependency, so there is no mio, no
//! tokio, and no libc crate to lean on. This crate builds the whole
//! stack from raw Linux syscalls up:
//!
//! - [`sys`]: inline-asm syscall shims (the only `unsafe` in the
//!   crate) — epoll, ppoll, pipe2, read/write/close with errno
//!   mapping.
//! - [`Poller`]: level-triggered readiness over epoll, with a
//!   poll(2)-family fallback backend that doubles as a differential
//!   test oracle.
//! - [`Waker`] / [`wake_pair`]: cross-thread wakeup over a
//!   nonblocking pipe, coalescing.
//! - [`TimerWheel`]: hashed wheel for request deadlines — O(1)
//!   insert/cancel, lazy expiry.
//! - [`LineCodec`] / [`WriteBuffer`]: bounded line framing for the
//!   JSON-lines protocol and cursor-tracked outbound buffering.
//! - [`Reactor`]: the composed event loop `pchls-serve` drives its
//!   accept loop and connection I/O on.
//!
//! Everything above `sys` is safe code; `unsafe` is confined to the
//! syscall shims and reviewed in one place.

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod sys;

mod framing;
mod poller;
mod reactor;
mod timer;
mod wake;

pub use framing::{Frame, FrameError, LineCodec, WriteBuffer};
pub use poller::{Backend, Event, Interest, Poller, Token};
pub use reactor::{Reactor, WAKE_TOKEN};
pub use timer::{TimerId, TimerWheel};
pub use wake::{wake_pair, WakeReader, Waker};
