//! The event loop core: poller + wakeup pipe + timer wheel.
//!
//! [`Reactor`] composes the three readiness sources a serve front end
//! needs — socket readiness, cross-thread wakes, and deadline expiry —
//! behind one [`poll`](Reactor::poll) call. The caller owns the loop:
//!
//! ```no_run
//! use pchls_net::{Backend, Interest, Reactor, Token};
//! use std::time::Instant;
//!
//! let mut reactor = Reactor::new(Backend::Auto).unwrap();
//! let waker = reactor.waker(); // hand to worker threads
//! let mut events = Vec::new();
//! let mut expired: Vec<Token> = Vec::new();
//! loop {
//!     let woken = reactor.poll(&mut events, &mut expired, Instant::now()).unwrap();
//!     if woken { /* drain completion queue */ }
//!     for ev in &events { /* service readiness */ }
//!     for token in expired.drain(..) { /* enforce deadline */ }
//!     # break;
//! }
//! ```
//!
//! The wakeup pipe occupies the reserved [`WAKE_TOKEN`]; user
//! registrations must use other tokens.

use std::io;
use std::time::{Duration, Instant};

use crate::poller::{Backend, Event, Interest, Poller, Token};
use crate::timer::{TimerId, TimerWheel};
use crate::wake::{wake_pair, WakeReader, Waker};

/// Token reserved for the internal wakeup pipe. Never appears in the
/// events handed to the caller.
pub const WAKE_TOKEN: Token = Token(usize::MAX);

/// Timer granularity: fine enough for millisecond-scale deadlines,
/// coarse enough that bucket scans stay trivial.
const TICK: Duration = Duration::from_millis(4);

/// A single-threaded readiness loop; see module docs.
#[derive(Debug)]
pub struct Reactor {
    poller: Poller,
    waker: Waker,
    wake_reader: WakeReader,
    timers: TimerWheel<Token>,
}

impl Reactor {
    /// Opens a reactor on the chosen poller backend and registers the
    /// internal wakeup pipe.
    pub fn new(backend: Backend) -> io::Result<Reactor> {
        let mut poller = Poller::new(backend)?;
        let (waker, wake_reader) = wake_pair()?;
        poller.register(wake_reader.fd(), WAKE_TOKEN, Interest::READABLE)?;
        Ok(Reactor {
            poller,
            waker,
            wake_reader,
            timers: TimerWheel::new(Instant::now(), TICK),
        })
    }

    /// Which backend the underlying poller selected.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.poller.backend()
    }

    /// A cloneable handle other threads use to interrupt `poll`.
    #[must_use]
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Registers a descriptor. `token` must not be [`WAKE_TOKEN`].
    pub fn register(&mut self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved");
        self.poller.register(fd, token, interest)
    }

    /// Updates a registration's interest.
    pub fn modify(&mut self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        assert_ne!(token, WAKE_TOKEN, "WAKE_TOKEN is reserved");
        self.poller.modify(fd, token, interest)
    }

    /// Drops a registration (no-op if the fd was already closed).
    pub fn deregister(&mut self, fd: i32) {
        self.poller.deregister(fd);
    }

    /// Schedules `token` to expire at `deadline`.
    pub fn arm_timer(&mut self, deadline: Instant, token: Token) -> TimerId {
        self.timers.insert(deadline, token)
    }

    /// Cancels a pending timer; `None` if it already fired.
    pub fn cancel_timer(&mut self, id: TimerId) -> Option<Token> {
        self.timers.cancel(id)
    }

    /// Number of armed timers.
    #[must_use]
    pub fn pending_timers(&self) -> usize {
        self.timers.len()
    }

    /// Waits for readiness, a wake, or the next timer deadline.
    ///
    /// Socket events are appended to `events` (cleared first), expired
    /// timer payloads to `expired` (appended, not cleared, so a caller
    /// can accumulate). Returns whether a cross-thread wake was
    /// observed; wakes are coalesced and the pipe is fully drained
    /// before returning.
    pub fn poll(
        &mut self,
        events: &mut Vec<Event>,
        expired: &mut Vec<Token>,
        now: Instant,
    ) -> io::Result<bool> {
        // Fire anything already due before sleeping.
        self.timers.advance(now, expired);
        let timeout = if expired.is_empty() {
            self.timers
                .next_deadline()
                .map(|d| d.saturating_duration_since(now))
        } else {
            // Work is already pending; just collect ready events.
            Some(Duration::ZERO)
        };
        self.poller.wait(events, timeout)?;
        let mut woken = false;
        events.retain(|ev| {
            if ev.token == WAKE_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            self.wake_reader.drain()?;
        }
        self.timers.advance(Instant::now(), expired);
        Ok(woken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{pipe2_nonblocking, write, OwnedSysFd};
    use std::time::Duration;

    fn backends() -> Vec<Backend> {
        vec![Backend::Epoll, Backend::Poll]
    }

    #[test]
    fn wake_from_another_thread_interrupts_poll() {
        for backend in backends() {
            let mut reactor = Reactor::new(backend).unwrap();
            let waker = reactor.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake().unwrap();
            });
            let mut events = Vec::new();
            let mut expired = Vec::new();
            let woken = reactor
                .poll(&mut events, &mut expired, Instant::now())
                .unwrap();
            handle.join().unwrap();
            assert!(woken, "{backend:?}");
            assert!(events.is_empty(), "{backend:?}: wake token filtered out");
        }
    }

    #[test]
    fn timers_fire_without_any_io() {
        for backend in backends() {
            let mut reactor = Reactor::new(backend).unwrap();
            let deadline = Instant::now() + Duration::from_millis(25);
            reactor.arm_timer(deadline, Token(5));
            let mut events = Vec::new();
            let mut expired = Vec::new();
            let start = Instant::now();
            while expired.is_empty() {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "{backend:?}: stuck"
                );
                reactor
                    .poll(&mut events, &mut expired, Instant::now())
                    .unwrap();
            }
            assert_eq!(expired, vec![Token(5)], "{backend:?}");
            assert!(
                Instant::now() >= deadline,
                "{backend:?}: fired before the deadline"
            );
        }
    }

    #[test]
    fn cancelled_timer_never_fires() {
        for backend in backends() {
            let mut reactor = Reactor::new(backend).unwrap();
            let id = reactor.arm_timer(Instant::now() + Duration::from_millis(10), Token(1));
            assert_eq!(reactor.cancel_timer(id), Some(Token(1)));
            assert_eq!(reactor.pending_timers(), 0);
            std::thread::sleep(Duration::from_millis(20));
            // With no timers and no I/O, poll would block forever — a
            // pending wake makes it return immediately.
            reactor.waker().wake().unwrap();
            let mut events = Vec::new();
            let mut expired = Vec::new();
            let woken = reactor
                .poll(&mut events, &mut expired, Instant::now())
                .unwrap();
            assert!(woken, "{backend:?}");
            assert!(expired.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn io_readiness_and_timers_interleave() {
        for backend in backends() {
            let mut reactor = Reactor::new(backend).unwrap();
            let (r, w) = pipe2_nonblocking().unwrap();
            let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
            reactor.register(r.0, Token(2), Interest::READABLE).unwrap();
            reactor.arm_timer(Instant::now() + Duration::from_millis(15), Token(3));
            write(w.0, b"x").unwrap();

            let mut events = Vec::new();
            let mut expired = Vec::new();
            reactor
                .poll(&mut events, &mut expired, Instant::now())
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, Token(2));

            let start = Instant::now();
            while expired.is_empty() {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "{backend:?}: stuck"
                );
                reactor
                    .poll(&mut events, &mut expired, Instant::now())
                    .unwrap();
            }
            assert_eq!(expired, vec![Token(3)], "{backend:?}");
            reactor.deregister(r.0);
        }
    }

    #[test]
    #[should_panic(expected = "WAKE_TOKEN is reserved")]
    fn registering_the_wake_token_panics() {
        let mut reactor = Reactor::new(Backend::Poll).unwrap();
        let (r, _w) = pipe2_nonblocking().unwrap();
        let r = OwnedSysFd(r);
        let _ = reactor.register(r.0, WAKE_TOKEN, Interest::READABLE);
    }
}
