//! Line framing with bounded buffering, and a cursor-tracked write
//! buffer — the two halves of a connection's byte handling.
//!
//! [`LineCodec`] accumulates arbitrary byte chunks and yields complete
//! newline-terminated frames. Memory is bounded: once an unterminated
//! line crosses the configured cap the codec reports
//! [`FrameError::TooLong`] exactly once, drops what it buffered, and
//! silently discards until the next newline — so one hostile client
//! cannot balloon the process or wedge the framing for its own later,
//! well-behaved lines.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

/// Framing failure for one line; the stream itself stays usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// An unterminated line exceeded the cap; bytes up to the next
    /// newline are discarded. Carries the configured cap.
    TooLong(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLong(cap) => {
                write!(f, "line exceeds maximum length of {cap} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One item produced by [`LineCodec::next_frame`].
pub type Frame = Result<Vec<u8>, FrameError>;

/// Incremental newline framing with a hard per-line byte cap.
#[derive(Debug)]
pub struct LineCodec {
    buf: Vec<u8>,
    /// Complete frames (or errors) ready to hand out.
    ready: VecDeque<Frame>,
    max_line: usize,
    /// Inside an oversized line: drop bytes until the next newline.
    discarding: bool,
}

impl LineCodec {
    /// Creates a codec that rejects lines longer than `max_line` bytes
    /// (exclusive of the terminating newline).
    #[must_use]
    pub fn new(max_line: usize) -> LineCodec {
        LineCodec {
            buf: Vec::new(),
            ready: VecDeque::new(),
            max_line: max_line.max(1),
            discarding: false,
        }
    }

    /// The configured per-line cap.
    #[must_use]
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Feeds a chunk of received bytes. Split points are arbitrary —
    /// a line may arrive one byte at a time or many lines in one chunk.
    pub fn push(&mut self, mut chunk: &[u8]) {
        while !chunk.is_empty() {
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if self.discarding {
                        // Tail of an oversized line: drop through the
                        // newline, then resume normal framing.
                        self.discarding = false;
                    } else {
                        let mut line = std::mem::take(&mut self.buf);
                        line.extend_from_slice(&chunk[..nl]);
                        if line.last() == Some(&b'\r') {
                            line.pop();
                        }
                        if line.len() > self.max_line {
                            self.ready
                                .push_back(Err(FrameError::TooLong(self.max_line)));
                        } else {
                            self.ready.push_back(Ok(line));
                        }
                    }
                    chunk = &chunk[nl + 1..];
                }
                None => {
                    if !self.discarding {
                        self.buf.extend_from_slice(chunk);
                        if self.buf.len() > self.max_line {
                            // Report once at the crossing, free the
                            // memory, and discard the rest of the line.
                            self.buf = Vec::new();
                            self.discarding = true;
                            self.ready
                                .push_back(Err(FrameError::TooLong(self.max_line)));
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Next complete frame, if one is buffered. `Err` frames mark a
    /// single rejected line; keep calling — later lines still arrive.
    pub fn next_frame(&mut self) -> Option<Frame> {
        self.ready.pop_front()
    }

    /// Bytes of an unterminated trailing line (useful at EOF: a final
    /// line without a newline is still meaningful on stdio).
    #[must_use]
    pub fn partial(&self) -> &[u8] {
        &self.buf
    }

    /// Takes the unterminated tail, leaving the codec empty.
    pub fn take_partial(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

/// Outbound bytes with a write cursor, so partial kernel writes resume
/// where they left off instead of re-queuing.
#[derive(Debug, Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> WriteBuffer {
        WriteBuffer::default()
    }

    /// Unsent byte count.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Queues bytes for sending.
    pub fn queue(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Writes as much pending data as `w` accepts without blocking.
    /// Returns `Ok(true)` once the buffer is fully drained, `Ok(false)`
    /// if the sink applied backpressure (`WouldBlock`).
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection sink accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.pos += n;
                    // Reclaim memory once a large burst fully drains.
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(codec: &mut LineCodec) -> Vec<Frame> {
        std::iter::from_fn(|| codec.next_frame()).collect()
    }

    #[test]
    fn frames_split_at_arbitrary_boundaries() {
        let mut codec = LineCodec::new(64);
        codec.push(b"hel");
        codec.push(b"lo\nwor");
        assert_eq!(codec.next_frame(), Some(Ok(b"hello".to_vec())));
        assert_eq!(codec.next_frame(), None);
        codec.push(b"ld\n");
        assert_eq!(codec.next_frame(), Some(Ok(b"world".to_vec())));
    }

    #[test]
    fn crlf_is_stripped() {
        let mut codec = LineCodec::new(64);
        codec.push(b"abc\r\ndef\n");
        assert_eq!(
            lines(&mut codec),
            vec![Ok(b"abc".to_vec()), Ok(b"def".to_vec())]
        );
    }

    #[test]
    fn oversized_line_reports_once_then_recovers() {
        let mut codec = LineCodec::new(8);
        codec.push(b"0123456789"); // crosses the cap mid-line
        assert_eq!(codec.next_frame(), Some(Err(FrameError::TooLong(8))));
        assert_eq!(codec.next_frame(), None, "reported once, not per chunk");
        codec.push(b"more-junk-still-the-same-line");
        assert_eq!(codec.next_frame(), None);
        codec.push(b"tail\nok\n");
        // "tail" belongs to the oversized line and is discarded.
        assert_eq!(lines(&mut codec), vec![Ok(b"ok".to_vec())]);
    }

    #[test]
    fn oversized_complete_line_in_one_chunk_is_rejected() {
        let mut codec = LineCodec::new(4);
        codec.push(b"toolong\nok\n");
        assert_eq!(
            lines(&mut codec),
            vec![Err(FrameError::TooLong(4)), Ok(b"ok".to_vec())]
        );
    }

    #[test]
    fn discard_mode_memory_stays_bounded() {
        let mut codec = LineCodec::new(16);
        for _ in 0..1000 {
            codec.push(&[b'x'; 1024]);
        }
        assert!(codec.partial().len() <= 16, "buffer freed while discarding");
        assert_eq!(codec.next_frame(), Some(Err(FrameError::TooLong(16))));
        assert_eq!(codec.next_frame(), None);
    }

    #[test]
    fn partial_tail_is_retrievable_at_eof() {
        let mut codec = LineCodec::new(64);
        codec.push(b"complete\nunfinished");
        assert_eq!(codec.next_frame(), Some(Ok(b"complete".to_vec())));
        assert_eq!(codec.partial(), b"unfinished");
        assert_eq!(codec.take_partial(), b"unfinished".to_vec());
        assert!(codec.partial().is_empty());
    }

    /// A sink that accepts at most `cap` bytes per write and applies
    /// backpressure every other call.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        tick: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tick += 1;
            if self.tick.is_multiple_of(2) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buffer_resumes_after_partial_writes() {
        let mut wb = WriteBuffer::new();
        wb.queue(b"abcdefghij");
        let mut sink = Throttled {
            out: Vec::new(),
            cap: 3,
            tick: 0,
        };
        let mut drained = false;
        for _ in 0..16 {
            drained = wb.write_to(&mut sink).unwrap();
            if drained {
                break;
            }
            wb.queue(b""); // no-op between attempts
        }
        assert!(drained);
        assert_eq!(sink.out, b"abcdefghij");
        assert!(wb.is_empty());
    }

    #[test]
    fn queue_while_partially_drained_preserves_order() {
        let mut wb = WriteBuffer::new();
        wb.queue(b"first|");
        let mut sink = Throttled {
            out: Vec::new(),
            cap: 4,
            tick: 0,
        };
        let _ = wb.write_to(&mut sink); // partial progress
        wb.queue(b"second");
        while !wb.write_to(&mut sink).unwrap() {}
        assert_eq!(sink.out, b"first|second");
    }
}
