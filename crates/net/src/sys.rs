//! Raw Linux syscalls, `libc`-free: every kernel entry the reactor
//! needs is issued through one inline-`asm!` instruction per
//! architecture. This is the **only** module in the workspace that
//! contains `unsafe` code, and all of it is confined to the syscall
//! stubs plus the two struct-pointer call sites wrapping them; every
//! public function in this module is safe and returns `io::Result`.
//!
//! Why not `libc`/`mio`/`tokio`: the build container has no crates.io
//! access, and the vendored-deps policy keeps external surface to the
//! handful of stand-ins under `vendor/`. The kernel ABI itself is a
//! stable public interface, so the reactor talks to it directly:
//!
//! * `epoll_create1` / `epoll_ctl` / `epoll_pwait` — the primary
//!   readiness backend (level-triggered).
//! * `ppoll` — the poll(2)-family fallback backend (aarch64 has no
//!   plain `poll` syscall, so the `p` variant is used everywhere).
//! * `pipe2` / `read` / `write` / `close` — the cross-thread wakeup
//!   pipe (`O_NONBLOCK | O_CLOEXEC` at creation, no fcntl dance).
//!
//! Errors follow the raw convention: a return value in `[-4095, -1]`
//! is `-errno`, mapped here onto [`io::Error::from_raw_os_error`].
//!
//! This module is the crate's single `#[allow(unsafe_code)]` island;
//! the allowance is granted at the `mod` declaration in `lib.rs` so
//! the exemption is visible next to the crate-level `deny`.

use std::io;

/// One pollable readiness record of the `ppoll` backend, ABI-identical
/// to the kernel's `struct pollfd` on every Linux architecture.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel, which the poll backend uses for tombstones).
    pub fd: i32,
    /// Requested event mask (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Kernel-filled result mask.
    pub revents: i16,
}

/// One epoll readiness record. On x86_64 the kernel declares the struct
/// packed (12 bytes); everywhere else it has natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / …).
    pub events: u32,
    /// Caller-chosen cookie echoed back on readiness (the token).
    pub data: u64,
}

/// Readable (`poll`/`epoll` share the value).
pub const EV_IN: u32 = 0x001;
/// Writable.
pub const EV_OUT: u32 = 0x004;
/// Error condition.
pub const EV_ERR: u32 = 0x008;
/// Hangup (peer closed).
pub const EV_HUP: u32 = 0x010;
/// Peer shut down its write half (half-close visibility).
pub const EV_RDHUP: u32 = 0x2000;
/// `pollfd.fd` was not an open descriptor (poll backend only).
pub const EV_NVAL: u32 = 0x020;

/// `epoll_ctl` op: add a new descriptor.
pub const EPOLL_CTL_ADD: usize = 1;
/// `epoll_ctl` op: remove a descriptor.
pub const EPOLL_CTL_DEL: usize = 2;
/// `epoll_ctl` op: change a registered descriptor's mask.
pub const EPOLL_CTL_MOD: usize = 3;

const O_NONBLOCK: usize = 0o4000;
const O_CLOEXEC: usize = 0o2000000;
const EPOLL_CLOEXEC: usize = O_CLOEXEC;

/// `nanoseconds`-precision timeout for `ppoll`, ABI-identical to the
/// kernel's `struct timespec` on 64-bit Linux.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const PPOLL: usize = 271;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PIPE2: usize = 293;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const PPOLL: usize = 73;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
    pub const PIPE2: usize = 59;
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!(
    "pchls-net issues raw Linux syscalls and supports linux/x86_64 and linux/aarch64 only"
);

#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: the Linux syscall ABI on x86_64 — number in rax, args in
    // rdi/rsi/rdx/r10/r8/r9, result in rax, rcx/r11 clobbered by the
    // `syscall` instruction. Callers guarantee any pointers passed are
    // valid for the kernel's documented access pattern.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    // SAFETY: the Linux syscall ABI on aarch64 — number in x8, args in
    // x0..x5, result in x0. Callers guarantee pointer validity.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack)
        );
    }
    ret
}

/// Maps a raw syscall return onto `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// `EAGAIN`/`EWOULDBLOCK`: the one errno the reactor treats as a state,
/// not a failure.
pub fn is_would_block(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::WouldBlock
}

/// Whether the errno is `EINTR` (retry the call).
pub fn is_interrupted(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::Interrupted
}

/// `epoll_create1(EPOLL_CLOEXEC)` → the epoll instance fd.
pub fn epoll_create1() -> io::Result<i32> {
    // SAFETY: no pointers involved.
    let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

/// `epoll_ctl(epfd, op, fd, &event)`. `event` is ignored by the kernel
/// for `EPOLL_CTL_DEL` but passed anyway (pre-2.6.9 compatibility).
pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: &mut EpollEvent) -> io::Result<()> {
    // SAFETY: `event` is a live, exclusively-borrowed EpollEvent with
    // the kernel's expected layout; the kernel only reads it.
    let ret = unsafe {
        syscall6(
            nr::EPOLL_CTL,
            epfd as usize,
            op,
            fd as usize,
            std::ptr::from_mut(event) as usize,
            0,
            0,
        )
    };
    check(ret).map(|_| ())
}

/// `epoll_pwait(epfd, events, …, timeout_ms, NULL)` → number of ready
/// events written into `events`. `timeout_ms < 0` blocks indefinitely.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `events` is a live mutable slice; the kernel writes at
    // most `events.len()` records into it. The sigmask pointer is null,
    // so the final size argument is ignored.
    let ret = unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as usize,
            0,
            8,
        )
    };
    check(ret)
}

/// `ppoll(fds, nfds, timeout, NULL)` → number of entries with non-zero
/// `revents`. `timeout_ms < 0` blocks indefinitely.
pub fn ppoll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let ts;
    let ts_ptr = if timeout_ms < 0 {
        std::ptr::null::<Timespec>()
    } else {
        ts = Timespec {
            tv_sec: i64::from(timeout_ms) / 1000,
            tv_nsec: (i64::from(timeout_ms) % 1000) * 1_000_000,
        };
        &raw const ts
    };
    // SAFETY: `fds` is a live mutable slice of kernel-layout PollFd;
    // the timespec (when non-null) outlives the call; sigmask is null.
    let ret = unsafe {
        syscall6(
            nr::PPOLL,
            fds.as_mut_ptr() as usize,
            fds.len(),
            ts_ptr as usize,
            0,
            8,
            0,
        )
    };
    check(ret)
}

/// `pipe2(O_NONBLOCK | O_CLOEXEC)` → `(read_fd, write_fd)`.
pub fn pipe2_nonblocking() -> io::Result<(i32, i32)> {
    let mut fds = [0i32; 2];
    // SAFETY: `fds` is a live 2-element i32 array the kernel fills.
    let ret = unsafe {
        syscall6(
            nr::PIPE2,
            fds.as_mut_ptr() as usize,
            O_NONBLOCK | O_CLOEXEC,
            0,
            0,
            0,
            0,
        )
    };
    check(ret).map(|_| (fds[0], fds[1]))
}

/// `read(fd, buf)` → bytes read (`0` at EOF).
pub fn read(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live mutable slice; the kernel writes at most
    // `buf.len()` bytes.
    let ret = unsafe {
        syscall6(
            nr::READ,
            fd as usize,
            buf.as_mut_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    };
    check(ret)
}

/// `write(fd, buf)` → bytes written.
pub fn write(fd: i32, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: `buf` is a live slice the kernel only reads.
    let ret = unsafe {
        syscall6(
            nr::WRITE,
            fd as usize,
            buf.as_ptr() as usize,
            buf.len(),
            0,
            0,
            0,
        )
    };
    check(ret)
}

/// `close(fd)`. Errors are reported but the fd is gone either way.
pub fn close(fd: i32) -> io::Result<()> {
    // SAFETY: no pointers involved.
    let ret = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    check(ret).map(|_| ())
}

/// A raw fd owned by the reactor (epoll instance, pipe halves), closed
/// on drop. Distinct from `std::os::fd::OwnedFd` only in that it stays
/// inside this crate's safe wrapper surface.
#[derive(Debug)]
pub struct OwnedSysFd(pub i32);

impl Drop for OwnedSysFd {
    fn drop(&mut self) {
        let _ = close(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_round_trips_bytes_and_reports_would_block() {
        let (r, w) = pipe2_nonblocking().unwrap();
        let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
        // Empty pipe: nonblocking read must report WouldBlock.
        let mut buf = [0u8; 8];
        let err = read(r.0, &mut buf).unwrap_err();
        assert!(is_would_block(&err), "{err}");
        assert_eq!(write(w.0, b"ping").unwrap(), 4);
        assert_eq!(read(r.0, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
    }

    #[test]
    fn pipe_read_sees_eof_after_writer_closes() {
        let (r, w) = pipe2_nonblocking().unwrap();
        let r = OwnedSysFd(r);
        close(w).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(read(r.0, &mut buf).unwrap(), 0, "EOF reads zero");
    }

    #[test]
    fn epoll_reports_pipe_readability() {
        let epfd = OwnedSysFd(epoll_create1().unwrap());
        let (r, w) = pipe2_nonblocking().unwrap();
        let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
        let mut ev = EpollEvent {
            events: EV_IN,
            data: 42,
        };
        epoll_ctl(epfd.0, EPOLL_CTL_ADD, r.0, &mut ev).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing written yet: a zero-timeout wait returns no events.
        assert_eq!(epoll_wait(epfd.0, &mut events, 0).unwrap(), 0);
        write(w.0, b"x").unwrap();
        let n = epoll_wait(epfd.0, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let got = events[0];
        assert_eq!({ got.data }, 42);
        assert_ne!({ got.events } & EV_IN, 0);
    }

    #[test]
    fn ppoll_reports_pipe_readability_and_times_out() {
        let (r, w) = pipe2_nonblocking().unwrap();
        let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
        let mut fds = [PollFd {
            fd: r.0,
            events: EV_IN as i16,
            revents: 0,
        }];
        assert_eq!(ppoll(&mut fds, 0).unwrap(), 0, "nothing ready yet");
        write(w.0, b"x").unwrap();
        assert_eq!(ppoll(&mut fds, 1000).unwrap(), 1);
        assert_ne!(u32::from(fds[0].revents as u16) & EV_IN, 0);
    }

    #[test]
    fn errors_map_to_errno() {
        // -1 is never a valid fd; close must fail with EBADF.
        let err = close(-1).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "{err}");
    }
}
