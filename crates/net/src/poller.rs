//! Readiness polling over two interchangeable kernel backends.
//!
//! [`Poller`] exposes the minimal readiness interface the reactor
//! needs — register / modify / deregister a descriptor under a
//! [`Token`], then [`wait`](Poller::wait) for [`Event`]s — backed by
//! either **epoll** (the default on Linux) or **ppoll** (the poll(2)
//! fallback; also the reference implementation the epoll backend is
//! differentially tested against). Both are level-triggered: an event
//! repeats every wait until the caller drains the readiness, which
//! keeps the contract simple and loss-proof.

use std::io;
use std::time::Duration;

use crate::sys;

/// Caller-chosen identity of a registered descriptor, echoed on every
/// readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn event_mask(self) -> u32 {
        let mut mask = sys::EV_RDHUP;
        if self.readable {
            mask |= sys::EV_IN;
        }
        if self.writable {
            mask |= sys::EV_OUT;
        }
        mask
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The registration this event belongs to.
    pub token: Token,
    /// Data can be read without blocking (or EOF is observable).
    pub readable: bool,
    /// Data can be written without blocking.
    pub writable: bool,
    /// The peer closed (hangup / read-half shutdown): drain then drop.
    pub closed: bool,
    /// The descriptor is in an error state.
    pub error: bool,
}

impl Event {
    fn from_mask(token: Token, mask: u32) -> Event {
        Event {
            token,
            readable: mask & (sys::EV_IN | sys::EV_HUP | sys::EV_RDHUP) != 0,
            writable: mask & sys::EV_OUT != 0,
            closed: mask & (sys::EV_HUP | sys::EV_RDHUP) != 0,
            error: mask & (sys::EV_ERR | sys::EV_NVAL) != 0,
        }
    }
}

/// Which kernel facility backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// epoll if available, ppoll otherwise (the default).
    Auto,
    /// Force epoll (`Poller::new` fails where epoll is unavailable).
    Epoll,
    /// Force the ppoll fallback.
    Poll,
}

#[derive(Debug)]
enum Inner {
    Epoll {
        epfd: sys::OwnedSysFd,
        /// Registered descriptor count (sizes the event buffer).
        registered: usize,
    },
    Poll {
        /// Parallel arrays: the kernel-facing pollfd set and the token
        /// of each live entry. Deregistered entries are compacted.
        fds: Vec<sys::PollFd>,
        tokens: Vec<Token>,
    },
}

/// A readiness selector over raw descriptors (see module docs).
#[derive(Debug)]
pub struct Poller {
    inner: Inner,
}

impl Poller {
    /// Opens a poller over the chosen [`Backend`].
    ///
    /// # Errors
    ///
    /// `Backend::Epoll` when the kernel refuses `epoll_create1`;
    /// `Auto` falls back to ppoll instead of failing.
    pub fn new(backend: Backend) -> io::Result<Poller> {
        let inner = match backend {
            Backend::Poll => Inner::poll(),
            Backend::Epoll => Inner::epoll()?,
            Backend::Auto => Inner::epoll().unwrap_or_else(|_| Inner::poll()),
        };
        Ok(Poller { inner })
    }

    /// Which backend this poller runs on (for logs and tests).
    #[must_use]
    pub fn backend(&self) -> Backend {
        match self.inner {
            Inner::Epoll { .. } => Backend::Epoll,
            Inner::Poll { .. } => Backend::Poll,
        }
    }

    /// Registers `fd` under `token` with `interest`. One registration
    /// per descriptor; re-registering an fd is a caller bug surfaced as
    /// `EEXIST` on epoll (the poll backend mirrors that check).
    pub fn register(&mut self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            Inner::Epoll { epfd, registered } => {
                let mut ev = sys::EpollEvent {
                    events: interest.event_mask(),
                    data: token.0 as u64,
                };
                sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_ADD, fd, &mut ev)?;
                *registered += 1;
                Ok(())
            }
            Inner::Poll { fds, tokens } => {
                if fds.iter().any(|p| p.fd == fd) {
                    return Err(io::Error::from_raw_os_error(17)); // EEXIST
                }
                fds.push(sys::PollFd {
                    fd,
                    events: (interest.event_mask() & 0xffff) as i16,
                    revents: 0,
                });
                tokens.push(token);
                Ok(())
            }
        }
    }

    /// Changes the interest (and token) of a registered descriptor.
    pub fn modify(&mut self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.inner {
            Inner::Epoll { epfd, .. } => {
                let mut ev = sys::EpollEvent {
                    events: interest.event_mask(),
                    data: token.0 as u64,
                };
                sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_MOD, fd, &mut ev)
            }
            Inner::Poll { fds, tokens } => {
                let idx = fds
                    .iter()
                    .position(|p| p.fd == fd)
                    .ok_or_else(|| io::Error::from_raw_os_error(2))?; // ENOENT
                fds[idx].events = (interest.event_mask() & 0xffff) as i16;
                tokens[idx] = token;
                Ok(())
            }
        }
    }

    /// Removes a registration. Safe to call for an fd that was already
    /// closed (the error is swallowed — the kernel dropped it for us).
    pub fn deregister(&mut self, fd: i32) {
        match &mut self.inner {
            Inner::Epoll { epfd, registered } => {
                let mut ev = sys::EpollEvent { events: 0, data: 0 };
                if sys::epoll_ctl(epfd.0, sys::EPOLL_CTL_DEL, fd, &mut ev).is_ok() {
                    *registered = registered.saturating_sub(1);
                }
            }
            Inner::Poll { fds, tokens } => {
                if let Some(idx) = fds.iter().position(|p| p.fd == fd) {
                    fds.swap_remove(idx);
                    tokens.swap_remove(idx);
                }
            }
        }
    }

    /// Blocks until at least one registered descriptor is ready, the
    /// timeout elapses (`Ok` with `events` empty), or a signal
    /// interrupts (retried internally). `None` blocks indefinitely.
    ///
    /// Ready events are appended to `events` (cleared first).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.5ms deadline does not busy-spin at 0ms.
            Some(d) => {
                i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
                    + i32::from(d.subsec_nanos() % 1_000_000 != 0)
            }
        };
        match &mut self.inner {
            Inner::Epoll { epfd, registered } => {
                let cap = (*registered).clamp(1, 1024);
                let mut buf = vec![sys::EpollEvent { events: 0, data: 0 }; cap];
                let n = loop {
                    match sys::epoll_wait(epfd.0, &mut buf, timeout_ms) {
                        Ok(n) => break n,
                        Err(e) if sys::is_interrupted(&e) => continue,
                        Err(e) => return Err(e),
                    }
                };
                for ev in &buf[..n] {
                    let (mask, data) = ({ ev.events }, { ev.data });
                    events.push(Event::from_mask(Token(data as usize), mask));
                }
                Ok(())
            }
            Inner::Poll { fds, tokens } => {
                let n = loop {
                    match sys::ppoll(fds, timeout_ms) {
                        Ok(n) => break n,
                        Err(e) if sys::is_interrupted(&e) => continue,
                        Err(e) => return Err(e),
                    }
                };
                if n > 0 {
                    for (p, &token) in fds.iter_mut().zip(tokens.iter()) {
                        let revents = u32::from(p.revents as u16);
                        if revents != 0 {
                            events.push(Event::from_mask(token, revents));
                            p.revents = 0;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl Inner {
    fn epoll() -> io::Result<Inner> {
        Ok(Inner::Epoll {
            epfd: sys::OwnedSysFd(sys::epoll_create1()?),
            registered: 0,
        })
    }

    fn poll() -> Inner {
        Inner::Poll {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{pipe2_nonblocking, write, OwnedSysFd};

    fn backends() -> Vec<Backend> {
        vec![Backend::Epoll, Backend::Poll]
    }

    #[test]
    fn both_backends_report_readability_identically() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            assert_eq!(poller.backend(), backend);
            let (r, w) = pipe2_nonblocking().unwrap();
            let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
            poller.register(r.0, Token(7), Interest::READABLE).unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: nothing ready yet");

            write(w.0, b"x").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable && !events[0].writable);
        }
    }

    #[test]
    fn writable_interest_fires_for_an_empty_pipe() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let (r, w) = pipe2_nonblocking().unwrap();
            let (_r, w) = (OwnedSysFd(r), OwnedSysFd(w));
            poller.register(w.0, Token(3), Interest::WRITABLE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].writable, "{backend:?}");
        }
    }

    #[test]
    fn modify_switches_interest_off_and_deregister_silences() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let (r, w) = pipe2_nonblocking().unwrap();
            let (r, w) = (OwnedSysFd(r), OwnedSysFd(w));
            write(w.0, b"x").unwrap();
            poller.register(r.0, Token(1), Interest::READABLE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");

            // Interest off: same readiness no longer reported.
            poller
                .modify(
                    r.0,
                    Token(1),
                    Interest {
                        readable: false,
                        writable: false,
                    },
                )
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.iter().all(|e| !e.readable),
                "{backend:?}: {events:?}"
            );

            poller.deregister(r.0);
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}");
        }
    }

    #[test]
    fn closed_peer_reports_hangup() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let (r, w) = pipe2_nonblocking().unwrap();
            let r = OwnedSysFd(r);
            crate::sys::close(w).unwrap();
            poller.register(r.0, Token(9), Interest::READABLE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(
                events[0].readable && events[0].closed,
                "{backend:?}: {:?}",
                events[0]
            );
        }
    }

    #[test]
    fn double_registration_is_rejected_on_both_backends() {
        for backend in backends() {
            let mut poller = Poller::new(backend).unwrap();
            let (r, w) = pipe2_nonblocking().unwrap();
            let (r, _w) = (OwnedSysFd(r), OwnedSysFd(w));
            poller.register(r.0, Token(1), Interest::READABLE).unwrap();
            let err = poller
                .register(r.0, Token(2), Interest::READABLE)
                .unwrap_err();
            assert_eq!(err.raw_os_error(), Some(17), "{backend:?}: EEXIST");
        }
    }
}
