//! Hashed timer wheel for connection deadlines.
//!
//! Deadlines in the serve tier are coarse (tens of milliseconds to
//! seconds) and frequently cancelled — most requests complete long
//! before their deadline. A hashed wheel gives O(1) insert and cancel
//! and amortized-cheap expiry scans: each timer hashes into one of
//! [`SLOTS`] buckets by `deadline / tick`, and
//! [`TimerWheel::advance`] only scans the buckets the clock hand
//! actually passed. Entries keep their absolute deadline, so a timer
//! further than one wheel revolution away simply stays in its bucket
//! until a lap on which it is genuinely due.

use std::time::{Duration, Instant};

const SLOTS: usize = 256;

/// Stable handle for cancelling a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    id: TimerId,
    deadline: Instant,
    payload: T,
}

/// A hashed timer wheel (see module docs). `T` is the payload returned
/// when a timer fires — the reactor stores connection tokens.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    tick: Duration,
    origin: Instant,
    /// Last tick index fully processed by `advance`.
    cursor: u64,
    next_id: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// Creates a wheel with the given tick granularity (the firing
    /// resolution; deadlines are never fired early, and at most one
    /// tick late relative to the `now` passed to `advance`).
    #[must_use]
    pub fn new(now: Instant, tick: Duration) -> TimerWheel<T> {
        assert!(tick > Duration::ZERO, "tick must be positive");
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            tick,
            origin: now,
            cursor: 0,
            next_id: 0,
            len: 0,
        }
    }

    /// Number of pending timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.origin);
        // Integer division truncates: a deadline lands in the tick it
        // falls within, and fires when the cursor passes that tick.
        (since.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedules `payload` to fire once `advance` is called with a
    /// `now` at or past `deadline`.
    pub fn insert(&mut self, deadline: Instant, payload: T) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        let slot = (self.tick_of(deadline) as usize) % SLOTS;
        self.slots[slot].push(Entry {
            id,
            deadline,
            payload,
        });
        self.len += 1;
        id
    }

    /// Cancels a pending timer; returns its payload, or `None` if it
    /// already fired or was cancelled.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        for slot in &mut self.slots {
            if let Some(idx) = slot.iter().position(|e| e.id == id) {
                self.len -= 1;
                return Some(slot.swap_remove(idx).payload);
            }
        }
        None
    }

    /// Moves the wheel hand to `now`, appending every due payload to
    /// `expired` (unspecified order across timers due in the same
    /// sweep).
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<T>) {
        let target = self.tick_of(now);
        if target < self.cursor && self.len == 0 {
            return;
        }
        // Scan each slot the hand passes; a full revolution caps the
        // work at SLOTS scans no matter how far the clock jumped.
        let steps = (target.saturating_sub(self.cursor) + 1).min(SLOTS as u64);
        for step in 0..steps {
            let slot = ((self.cursor + step) as usize) % SLOTS;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline <= now {
                    expired.push(bucket.swap_remove(i).payload);
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = target;
    }

    /// Earliest pending deadline, for sizing the poll timeout. O(n) in
    /// pending timers — acceptable at serve-tier connection counts
    /// (each connection holds at most one deadline timer).
    #[must_use]
    pub fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.deadline))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(4));
        wheel.insert(t0 + ms(20), "a");
        let mut expired = Vec::new();
        wheel.advance(t0 + ms(19), &mut expired);
        assert!(expired.is_empty(), "not due yet");
        wheel.advance(t0 + ms(20), &mut expired);
        assert_eq!(expired, vec!["a"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancel_prevents_firing_and_returns_payload() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(4));
        let id = wheel.insert(t0 + ms(10), 42);
        assert_eq!(wheel.cancel(id), Some(42));
        assert_eq!(wheel.cancel(id), None, "second cancel is a no-op");
        let mut expired = Vec::new();
        wheel.advance(t0 + ms(100), &mut expired);
        assert!(expired.is_empty());
    }

    #[test]
    fn far_deadline_survives_a_full_revolution() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(1));
        // SLOTS=256 × 1ms tick → one revolution is 256ms. A 300ms
        // deadline shares a bucket with tick 300-256=44.
        wheel.insert(t0 + ms(300), "late");
        let mut expired = Vec::new();
        wheel.advance(t0 + ms(44), &mut expired);
        assert!(
            expired.is_empty(),
            "same bucket, earlier lap: must not fire"
        );
        wheel.advance(t0 + ms(299), &mut expired);
        assert!(expired.is_empty());
        wheel.advance(t0 + ms(301), &mut expired);
        assert_eq!(expired, vec!["late"]);
    }

    #[test]
    fn clock_jump_past_many_slots_fires_everything_due() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0, ms(1));
        for i in 0..1000u64 {
            wheel.insert(t0 + ms(i), i);
        }
        let mut expired = Vec::new();
        wheel.advance(t0 + ms(5000), &mut expired);
        expired.sort_unstable();
        assert_eq!(expired.len(), 1000);
        assert_eq!(expired[0], 0);
        assert_eq!(expired[999], 999);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let t0 = Instant::now();
        let mut wheel: TimerWheel<()> = TimerWheel::new(t0, ms(4));
        assert_eq!(wheel.next_deadline(), None);
        wheel.insert(t0 + ms(50), ());
        let early = wheel.insert(t0 + ms(10), ());
        assert_eq!(wheel.next_deadline(), Some(t0 + ms(10)));
        wheel.cancel(early);
        assert_eq!(wheel.next_deadline(), Some(t0 + ms(50)));
    }
}
