//! Minimal data-parallel runtime for the pchls workspace.
//!
//! The design-space sweeps behind Figure 2 are embarrassingly parallel:
//! every grid point is an independent `synthesize` call. The container
//! this workspace builds in has no network access, so instead of `rayon`
//! this crate provides the one primitive the exploration layer needs —
//! an **order-preserving indexed parallel map** over `std::thread::scope`
//! with an atomic work-stealing cursor — plus a thread-count control.
//!
//! Determinism: [`par_map`] returns results in input order regardless of
//! which worker computed which item, so callers that post-process
//! sequentially (e.g. the monotone-envelope pass of a power sweep) are
//! byte-identical to a serial run.
//!
//! # Example
//!
//! ```
//! let squares = pchls_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Whether this thread is already inside a [`par_map`] worker (or a
    /// [`with_serial`] scope). Nested `par_map` calls run serially so an
    /// outer fan-out (e.g. a design-space sweep) composed with an inner
    /// one (candidate scoring in the synthesis kernel) cannot
    /// oversubscribe the machine with `workers²` threads.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };

    /// Per-thread cap on the fan-out width, set by
    /// [`with_thread_count`]. `usize::MAX` means "no scoped cap" — the
    /// process-wide [`thread_count`] alone decides.
    static THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Upper clamp on every thread-count control (`PCHLS_THREADS`,
/// [`with_thread_count`]): fan-out beyond 64 workers is outside this
/// workspace's design envelope (the work-stealing cursor and the
/// per-call thread spawn both stop paying for themselves long before).
pub const MAX_THREADS: usize = 64;

/// Parses a `PCHLS_THREADS` override: a `usize`, clamped to
/// `[1, MAX_THREADS]`. Returns `None` (fall back to the host core
/// count) when the value does not parse.
fn parse_thread_override(raw: &str) -> Option<usize> {
    raw.trim()
        .parse::<usize>()
        .ok()
        .map(|n| n.clamp(1, MAX_THREADS))
}

/// The fan-out width [`par_map`] would use on this thread right now:
/// the process-wide [`thread_count`] capped by any enclosing
/// [`with_thread_count`] scope.
fn effective_thread_count() -> usize {
    thread_count().min(THREAD_CAP.with(Cell::get))
}

/// Runs `f` with every [`par_map`] fan-out *started on this thread*
/// capped at `threads` workers (clamped to `[1, MAX_THREADS]`).
///
/// This is the in-process knob behind the `scaling` benchmark's
/// per-thread-count curves: the cached [`thread_count`] resolves the
/// `PCHLS_THREADS` environment once per process, so curves over 1/2/4/8
/// workers need a scoped override instead. `with_thread_count(1, f)` is
/// equivalent to [`with_serial`] for fan-out purposes (every `par_map`
/// degenerates to the serial map), and results are byte-identical at
/// every cap because [`par_map`] is order-preserving.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let cap = threads.clamp(1, MAX_THREADS);
    let prev = THREAD_CAP.with(|c| c.replace(cap));
    let out = f();
    THREAD_CAP.with(|c| c.set(prev));
    out
}

/// Whether a [`par_map`] call on this thread over `items` items would
/// actually fan out: more than one worker available and not already
/// inside a parallel region (or a [`with_serial`] scope). Callers with a
/// serial fast path that avoids per-item buffers can consult this to
/// skip the parallel shape when it buys nothing.
#[must_use]
pub fn would_parallelize(items: usize) -> bool {
    items > 1 && !IN_PARALLEL_REGION.with(Cell::get) && effective_thread_count() > 1
}

/// Runs `f` with all [`par_map`] calls on this thread forced serial.
///
/// This is the deterministic A/B switch the benchmarks use to time the
/// serial reference of a parallel kernel in-process, without touching
/// the global `PCHLS_THREADS` environment.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_PARALLEL_REGION.with(|c| c.replace(true));
    let out = f();
    IN_PARALLEL_REGION.with(|c| c.set(prev));
    out
}

/// Permanently marks the current thread as a dedicated worker: every
/// [`par_map`] call on it runs serially from now on.
///
/// A long-lived pool (e.g. [`WorkerPool`]) already provides the
/// machine-wide fan-out; letting each of its workers fan out *again*
/// through the kernel-level `par_map`s would oversubscribe the machine
/// with `workers²` threads. [`par_map`] protects nested calls within
/// one thread tree via a thread-local, but pool workers are fresh
/// threads that inherit nothing — they opt in with this call instead.
pub fn dedicate_thread() {
    IN_PARALLEL_REGION.with(|c| c.set(true));
}

/// A fixed-size pool of named, dedicated worker threads.
///
/// The complement of [`par_map`]: where `par_map` fans one finite work
/// list out and joins, a `WorkerPool` keeps `workers` threads alive for
/// the lifetime of a long-running component (a request-serving loop, a
/// queue consumer). Each thread runs `body(worker_index)` once; the
/// loop — typically "pop a job, process, repeat until the queue closes"
/// — lives in the body. Worker threads are [dedicated]
/// (nested `par_map` calls inside them run serially), so a pool of N
/// workers uses N threads total no matter how parallel the work items'
/// internals are.
///
/// [dedicated]: dedicate_thread
///
/// # Example
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let done = Arc::new(AtomicUsize::new(0));
/// let pool = {
///     let done = Arc::clone(&done);
///     pchls_par::WorkerPool::spawn(4, move |_worker| {
///         done.fetch_add(1, Ordering::Relaxed);
///     })
/// };
/// pool.join();
/// assert_eq!(done.load(Ordering::Relaxed), 4);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` dedicated threads (at least one), each running
    /// `body(worker_index)` to completion. The body is responsible for
    /// its own termination condition (e.g. a closed job queue).
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a thread.
    #[must_use]
    pub fn spawn<F>(workers: usize, body: F) -> WorkerPool
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let body = std::sync::Arc::new(body);
        let handles = (0..workers.max(1))
            .map(|i| {
                let body = std::sync::Arc::clone(&body);
                std::thread::Builder::new()
                    .name(format!("pchls-worker-{i}"))
                    .spawn(move || {
                        dedicate_thread();
                        body(i);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads in the pool.
    #[must_use]
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool has no workers (never true: `spawn` clamps to
    /// at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Blocks until every worker body returns.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic.
    pub fn join(self) {
        for h in self.handles {
            h.join().expect("pool worker panicked");
        }
    }

    /// Blocks until every worker body returns, swallowing worker
    /// panics; returns how many workers panicked. For teardown paths
    /// that may themselves run during unwinding (e.g. a `Drop` impl),
    /// where a propagated panic would abort the process.
    pub fn join_lossy(self) -> usize {
        self.handles
            .into_iter()
            .map(std::thread::JoinHandle::join)
            .filter(Result::is_err)
            .count()
    }
}

/// The number of worker threads [`par_map`] uses.
///
/// Defaults to [`std::thread::available_parallelism`], clamped to the
/// item count; the `PCHLS_THREADS` environment variable overrides it,
/// clamped to `[1, MAX_THREADS]` (`PCHLS_THREADS=1` forces serial
/// execution, handy for profiling, A/B-testing parallel speedups, and
/// pinning CI scaling runs to a reproducible width).
///
/// Resolved **once per process** and cached: both the env lookup and
/// `available_parallelism` (which re-parses cgroup limits on Linux —
/// ~10µs per call on containerized hosts) are far too slow for the
/// synthesis kernel, which consults [`would_parallelize`] every
/// iteration. Set `PCHLS_THREADS` before the first parallel call;
/// later changes are ignored. In-process A/B switching uses
/// [`with_serial`] / [`with_thread_count`], not the environment.
#[must_use]
pub fn thread_count() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("PCHLS_THREADS")
            .ok()
            .and_then(|v| parse_thread_override(&v))
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Applies `f` to every item in parallel, returning results in input
/// order.
///
/// Work is distributed by an atomic cursor (dynamic scheduling), so
/// uneven per-item cost — the norm for synthesis points, where tight
/// constraints backtrack and loose ones finish instantly — balances
/// automatically. Falls back to a plain serial map for a single worker
/// or a single item.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = effective_thread_count().min(items.len());
    if workers <= 1 || IN_PARALLEL_REGION.with(Cell::get) {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let computed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_PARALLEL_REGION.with(|c| c.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break local;
                        };
                        local.push((i, f(item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in computed {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

/// [`par_map`] over an index range: `par_map_indices(n, f)` computes
/// `f(0), ..., f(n-1)` in parallel, in order.
pub fn par_map_indices<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different cost still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn indices_variant_matches() {
        assert_eq!(par_map_indices(5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn nested_par_map_runs_serially() {
        // Inside a worker the nested call must not spawn; it still
        // produces identical results.
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..16).collect();
            par_map(&inner, move |&j| i * 100 + j)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(row, &(0..16).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_pool_runs_every_body_and_dedicates_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let ran = Arc::new(AtomicUsize::new(0));
        let nested_fanned_out = Arc::new(AtomicUsize::new(0));
        let pool = {
            let ran = Arc::clone(&ran);
            let nested = Arc::clone(&nested_fanned_out);
            WorkerPool::spawn(3, move |worker| {
                ran.fetch_add(1, Ordering::SeqCst);
                // Inside a dedicated worker, par_map must not fan out.
                if would_parallelize(1000) {
                    nested.fetch_add(1, Ordering::SeqCst);
                }
                let items: Vec<usize> = (0..100).collect();
                let out = par_map(&items, |&x| x + worker);
                assert_eq!(out[0], worker);
            })
        };
        assert_eq!(pool.len(), 3);
        pool.join();
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert_eq!(
            nested_fanned_out.load(Ordering::SeqCst),
            0,
            "pool workers must run nested par_map serially"
        );
    }

    #[test]
    fn join_lossy_counts_panicked_workers_without_propagating() {
        let pool = WorkerPool::spawn(3, |worker| {
            assert!(worker != 1, "worker 1 panics on purpose");
        });
        assert_eq!(pool.join_lossy(), 1);
    }

    #[test]
    fn worker_pool_clamps_to_one_worker() {
        let pool = WorkerPool::spawn(0, |_| {});
        assert_eq!(pool.len(), 1);
        assert!(!pool.is_empty());
        pool.join();
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        // The `PCHLS_THREADS` grammar: a usize, clamped to [1, 64];
        // anything else falls back to the host core count (None).
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 8 \n"), Some(8));
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("0"), Some(1), "clamped up to 1");
        assert_eq!(parse_thread_override("64"), Some(64));
        assert_eq!(parse_thread_override("65"), Some(64), "clamped to 64");
        assert_eq!(parse_thread_override("100000"), Some(64));
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("abc"), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert_eq!(parse_thread_override("3.5"), None);
    }

    #[test]
    fn with_thread_count_caps_fanout_and_restores() {
        assert_eq!(THREAD_CAP.with(Cell::get), usize::MAX);
        with_thread_count(2, || {
            assert_eq!(THREAD_CAP.with(Cell::get), 2);
            assert_eq!(effective_thread_count(), thread_count().min(2));
            // Nested scopes tighten and restore independently.
            with_thread_count(1, || {
                assert_eq!(effective_thread_count(), 1);
                assert!(!would_parallelize(1000), "cap 1 must read as serial");
            });
            assert_eq!(THREAD_CAP.with(Cell::get), 2);
        });
        assert_eq!(THREAD_CAP.with(Cell::get), usize::MAX);
        // Out-of-range caps clamp like the env override.
        with_thread_count(0, || assert_eq!(THREAD_CAP.with(Cell::get), 1));
        with_thread_count(1 << 20, || {
            assert_eq!(THREAD_CAP.with(Cell::get), MAX_THREADS);
        });
    }

    #[test]
    fn par_map_is_identical_at_every_thread_cap() {
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for cap in [1, 2, 3, 4, 8] {
            let out = with_thread_count(cap, || par_map(&items, |&x| x.wrapping_mul(x) ^ 17));
            assert_eq!(out, reference, "cap {cap}");
        }
    }

    #[test]
    fn with_serial_forces_serial_and_restores() {
        let items: Vec<usize> = (0..32).collect();
        let serial = with_serial(|| par_map(&items, |&x| x + 1));
        let parallel = par_map(&items, |&x| x + 1);
        assert_eq!(serial, parallel);
    }
}
