//! `pchls-store` — a persistent, content-addressed, columnar result
//! store for synthesis outcomes.
//!
//! Power-constrained sweeps re-ask the same question constantly: *for
//! this graph, at this latency bound, under this power budget, what
//! came out?* The answer is deterministic (the engine is a pure
//! function of its inputs), so it is worth keeping. This crate stores
//! design outcomes on disk keyed by content, not by name:
//!
//! * [`StoreKey`] = `(graph_fingerprint, latency_bound, budget_digest)`
//!   — the structural hash from [`pchls_cdfg::graph_fingerprint`] plus
//!   [`PowerBudget::digest`](pchls_sched::PowerBudget::digest), so two
//!   *spellings* of the same budget (a constant vs. an equivalent step
//!   list) share one record, and renaming a graph does not.
//! * [`StoreRecord`] — the outcome: feasibility, applied power bound,
//!   area, achieved latency, peak power, unit count, and an optional
//!   delta-encoded schedule trace ([`trace_bytes`]/[`trace_starts`]).
//!   Floats are stored as IEEE-754 bits, so a record read back
//!   reconstructs a [`SweepPoint`](pchls_core::SweepPoint) that is
//!   **byte-identical** to fresh synthesis output.
//!
//! # On-disk format (see `DESIGN.md` §7 for the full layout)
//!
//! One append-only file, `results.pchls`, holding self-delimiting
//! **blocks**. Each block stores a batch of records *by column*: all
//! fingerprints together, all areas together, and so on — ten columns,
//! each delta/zigzag/varint-encoded and independently compressed by a
//! small LZ block compressor. A block
//! header (CRC-guarded) records every column's compressed span, so a
//! reader that only wants the area column seeks to and decompresses
//! *just those bytes*. A **footer index** at the end of the file lists
//! all block metadata for O(1) open; if a crash tears the footer off,
//! [`Store::open`] recovers by scanning blocks forward and keeps every
//! record whose checksums verify — committed data is never lost, torn
//! tails are never served.
//!
//! # Example
//!
//! ```
//! use pchls_store::{Store, StoreKey, StoreRecord};
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! let mut store = Store::open(&dir).unwrap();
//! let record = StoreRecord {
//!     key: StoreKey { fingerprint: 0xfeed, latency_bound: 12, budget_digest: 0xbeef },
//!     feasible: true,
//!     power_bound_bits: 40.0f64.to_bits(),
//!     area: 11,
//!     latency: 10,
//!     peak_power_bits: 38.5f64.to_bits(),
//!     units: 4,
//!     trace: Vec::new(),
//! };
//! store.append(std::slice::from_ref(&record)).unwrap();
//! store.flush().unwrap();
//!
//! // Reopen: the footer index makes this O(blocks), and lookups are
//! // content-addressed.
//! let mut reopened = Store::open(&dir).unwrap();
//! assert_eq!(reopened.get(&record.key).unwrap(), Some(record));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

mod compress;
mod crc;
mod format;
mod store;
mod varint;

pub use format::{trace_bytes, trace_starts, StoreKey, StoreRecord, COLUMN_COUNT, COLUMN_NAMES};
pub use store::{ColumnStat, Store, StoreStat, STORE_FILE_NAME};
