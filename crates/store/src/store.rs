//! The [`Store`] handle: open/recover, append, indexed lookups, partial
//! scans, `stat`/`verify`/`compact`.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::format::{
    decode_keys, decode_records, encode_block, encode_footer, parse_block_header, read_columns,
    read_footer, verify_block_body, BlockMeta, StoreKey, StoreRecord, COLUMN_COUNT, COLUMN_NAMES,
    COL_AREA, COL_BUDGET_DIGEST, COL_FEASIBLE, COL_FINGERPRINT, COL_LATENCY_BOUND, FILE_MAGIC,
};

/// Name of the store file inside a store directory.
pub const STORE_FILE_NAME: &str = "results.pchls";

/// Records per block written by [`Store::compact`] (appends write the
/// caller's batch as one block, whatever its size).
const COMPACT_BLOCK_RECORDS: usize = 512;

/// Byte-size accounting of one column across all blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStat {
    /// Column name (see [`COLUMN_NAMES`]).
    pub name: &'static str,
    /// Uncompressed encoded bytes.
    pub raw_bytes: u64,
    /// Bytes actually on disk (after the block compressor).
    pub compressed_bytes: u64,
}

/// A size/health snapshot of a store (the `pchls store stat` payload).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStat {
    /// Blocks on disk.
    pub blocks: usize,
    /// Total records, including superseded duplicates.
    pub records: u64,
    /// Records reachable through the key index (last write per key).
    pub live_records: u64,
    /// Size of the store file in bytes.
    pub file_bytes: u64,
    /// Total uncompressed column bytes.
    pub raw_bytes: u64,
    /// Total compressed column bytes.
    pub compressed_bytes: u64,
    /// Per-column byte accounting.
    pub columns: Vec<ColumnStat>,
    /// Whether the last open had to recover by scanning (torn footer).
    pub recovered: bool,
}

impl StoreStat {
    /// Uncompressed over compressed column bytes (1.0 for an empty
    /// store).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Handles into the process-wide metrics registry, resolved once per
/// store open so the hot paths record without touching the registry
/// lock.
#[derive(Debug, Clone)]
struct StoreObs {
    read: Arc<pchls_obs::Histogram>,
    append: Arc<pchls_obs::Histogram>,
    compact: Arc<pchls_obs::Histogram>,
}

impl StoreObs {
    fn new() -> StoreObs {
        let global = pchls_obs::global();
        StoreObs {
            read: global.histogram("pchls_store_read_seconds"),
            append: global.histogram("pchls_store_append_seconds"),
            compact: global.histogram("pchls_store_compact_seconds"),
        }
    }
}

/// A persistent, append-only result store (see the crate docs for the
/// format). One handle owns the file; share across threads behind a
/// `Mutex` (lookups mutate the block cache, so methods take `&mut`).
#[derive(Debug)]
pub struct Store {
    file: File,
    path: PathBuf,
    blocks: Vec<BlockMeta>,
    /// key → (block, row) of the *last* write for that key.
    index: HashMap<StoreKey, (u32, u32)>,
    /// Decoded-block cache for indexed lookups.
    decoded: HashMap<u32, Vec<StoreRecord>>,
    /// Where the next block (and the footer) begins.
    data_end: u64,
    /// Blocks appended since the footer was last written.
    dirty: bool,
    recovered: bool,
    obs: StoreObs,
}

impl Store {
    /// Opens (creating as needed) the store under directory `dir`.
    ///
    /// A torn file — crash between an append and its footer flush — is
    /// recovered by scanning: every block whose checksums verify is
    /// kept, the torn tail is ignored, and the next append overwrites
    /// it.
    ///
    /// # Errors
    ///
    /// I/O failures, or a file that is not a pchls store at all.
    pub fn open(dir: &Path) -> io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        Store::open_file(dir.join(STORE_FILE_NAME))
    }

    /// Opens a store by explicit file path (the directory form
    /// [`Store::open`] is what the CLI and serve expose).
    ///
    /// # Errors
    ///
    /// As [`Store::open`].
    pub fn open_file(path: PathBuf) -> io::Result<Store> {
        let mut file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            let mut store = Store {
                file,
                path,
                blocks: Vec::new(),
                index: HashMap::new(),
                decoded: HashMap::new(),
                data_end: FILE_MAGIC.len() as u64,
                dirty: false,
                recovered: false,
                obs: StoreObs::new(),
            };
            use std::io::{Seek, SeekFrom, Write};
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(FILE_MAGIC)?;
            store.write_footer()?;
            return Ok(store);
        }
        let header = crate::format::read_at(&mut file, 0, FILE_MAGIC.len())?;
        if header.as_deref() != Some(FILE_MAGIC.as_slice()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a pchls store", path.display()),
            ));
        }

        let (blocks, recovered) = match read_footer(&mut file, file_len)? {
            Some(blocks) => (blocks, false),
            None => (scan_blocks(&mut file, file_len)?, true),
        };
        let mut store = Store {
            file,
            path,
            blocks,
            index: HashMap::new(),
            decoded: HashMap::new(),
            data_end: 0,
            dirty: recovered,
            recovered,
            obs: StoreObs::new(),
        };
        store.data_end = store
            .blocks
            .last()
            .map_or(FILE_MAGIC.len() as u64, BlockMeta::end);
        match store.build_index() {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData && !recovered => {
                // A flushed footer pointing at rotted blocks: fall back
                // to the conservative scan, keeping the verifiable
                // prefix.
                let file_len = store.file.metadata()?.len();
                store.blocks = scan_blocks(&mut store.file, file_len)?;
                store.data_end = store
                    .blocks
                    .last()
                    .map_or(FILE_MAGIC.len() as u64, BlockMeta::end);
                store.index.clear();
                store.decoded.clear();
                store.dirty = true;
                store.recovered = true;
                store.build_index()?;
            }
            Err(e) => return Err(e),
        }
        Ok(store)
    }

    /// Path of the underlying store file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live records (distinct keys).
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether a record for `key` is present.
    #[must_use]
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.index.contains_key(key)
    }

    /// Whether the last open recovered from a torn footer by scanning.
    #[must_use]
    pub fn recovered(&self) -> bool {
        self.recovered
    }

    /// The record stored under `key` (the last one appended for it).
    ///
    /// # Errors
    ///
    /// I/O failures or a corrupt block (run `verify`/`compact`).
    pub fn get(&mut self, key: &StoreKey) -> io::Result<Option<StoreRecord>> {
        let Some(&(block, row)) = self.index.get(key) else {
            return Ok(None);
        };
        let start = Instant::now();
        let _span = pchls_obs::span!("store.read");
        if !self.decoded.contains_key(&block) {
            let records = self.read_block_records(block)?;
            self.decoded.insert(block, records);
        }
        let record = self.decoded[&block][row as usize].clone();
        self.obs.read.record(start.elapsed());
        Ok(Some(record))
    }

    /// All live feasible records for one graph fingerprint, ordered by
    /// `(latency_bound, budget_digest)` — the "every known design point
    /// for this graph" query.
    ///
    /// # Errors
    ///
    /// As [`Store::get`].
    pub fn feasible_for(&mut self, fingerprint: u64) -> io::Result<Vec<StoreRecord>> {
        let mut locs: Vec<(StoreKey, (u32, u32))> = self
            .index
            .iter()
            .filter(|(k, _)| k.fingerprint == fingerprint)
            .map(|(k, &loc)| (*k, loc))
            .collect();
        locs.sort_by_key(|(k, _)| (k.latency_bound, k.budget_digest));
        let mut out = Vec::new();
        for (key, _) in locs {
            let record = self.get(&key)?.expect("indexed key resolves");
            if record.feasible {
                out.push(record);
            }
        }
        Ok(out)
    }

    /// Appends one batch of records as a new block and indexes them
    /// (later appends supersede earlier records with equal keys). The
    /// footer is *not* rewritten — call [`Store::flush`] to commit it;
    /// until then a crash costs only this append (recovery re-scans).
    ///
    /// # Errors
    ///
    /// I/O failures; the store is unchanged logically (a torn block is
    /// invisible to the next open).
    pub fn append(&mut self, records: &[StoreRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let mut span = pchls_obs::span!("store.append");
        span.arg("records", records.len());
        use std::io::{Seek, SeekFrom, Write};
        let (bytes, meta) = encode_block(records, self.data_end);
        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&bytes)?;
        let block = self.blocks.len() as u32;
        for (row, r) in records.iter().enumerate() {
            self.index.insert(r.key, (block, row as u32));
        }
        self.decoded.insert(block, records.to_vec());
        self.data_end = meta.end();
        self.blocks.push(meta);
        self.dirty = true;
        self.obs.append.record(start.elapsed());
        Ok(())
    }

    /// Rewrites the footer index and truncates any stale tail, making
    /// the current contents instantly loadable (no recovery scan).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.write_footer()?;
        self.dirty = false;
        self.recovered = false;
        Ok(())
    }

    fn write_footer(&mut self) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        let footer = encode_footer(&self.blocks);
        self.file.seek(SeekFrom::Start(self.data_end))?;
        self.file.write_all(&footer)?;
        self.file.set_len(self.data_end + footer.len() as u64)?;
        self.file.sync_data()
    }

    /// Every live record, in file order of its winning write. The full
    /// "warm read" path: all columns of all blocks are decoded, without
    /// populating the lookup cache (so repeated calls measure disk +
    /// decode, not a memoized copy).
    ///
    /// # Errors
    ///
    /// As [`Store::get`].
    pub fn scan_records(&mut self) -> io::Result<Vec<StoreRecord>> {
        let mut out = Vec::with_capacity(self.index.len());
        for block in 0..self.blocks.len() as u32 {
            let records = self.read_block_records(block)?;
            for (row, record) in records.into_iter().enumerate() {
                if self.index.get(&record.key) == Some(&(block, row as u32)) {
                    out.push(record);
                }
            }
        }
        Ok(out)
    }

    /// The area column of every live record (feasible or not), in file
    /// order of its winning write — the Pareto-query partial read. Only
    /// the three key columns, the feasibility byte and the area column
    /// are read and decompressed; power, schedule traces and the rest
    /// of each block stay untouched on disk.
    ///
    /// # Errors
    ///
    /// As [`Store::get`].
    pub fn scan_areas(&mut self) -> io::Result<Vec<(StoreKey, Option<u64>)>> {
        let mut out = Vec::with_capacity(self.index.len());
        for block in 0..self.blocks.len() as u32 {
            let meta = self.blocks[block as usize].clone();
            let raws = read_columns(
                &mut self.file,
                &meta,
                &[
                    COL_FINGERPRINT,
                    COL_LATENCY_BOUND,
                    COL_BUDGET_DIGEST,
                    COL_FEASIBLE,
                    COL_AREA,
                ],
            )?
            .ok_or_else(|| corrupt_block(block))?;
            let keys = decode_keys(&meta, &raws[0], &raws[1], &raws[2])
                .ok_or_else(|| corrupt_block(block))?;
            let feasible = &raws[3];
            let areas = crate::varint::get_delta_column(&raws[4], meta.records as usize)
                .ok_or_else(|| corrupt_block(block))?;
            if feasible.len() != meta.records as usize {
                return Err(corrupt_block(block));
            }
            for (row, key) in keys.iter().enumerate() {
                if self.index.get(key) == Some(&(block, row as u32)) {
                    out.push((*key, (feasible[row] == 1).then(|| areas[row])));
                }
            }
        }
        Ok(out)
    }

    /// Size and compression accounting (header/footer metadata only —
    /// no block bodies are read).
    ///
    /// # Errors
    ///
    /// I/O failure querying the file length.
    pub fn stat(&self) -> io::Result<StoreStat> {
        let mut columns: Vec<ColumnStat> = COLUMN_NAMES
            .iter()
            .map(|&name| ColumnStat {
                name,
                raw_bytes: 0,
                compressed_bytes: 0,
            })
            .collect();
        for block in &self.blocks {
            for (col, &(raw, comp)) in block.columns.iter().enumerate() {
                columns[col].raw_bytes += u64::from(raw);
                columns[col].compressed_bytes += u64::from(comp);
            }
        }
        Ok(StoreStat {
            blocks: self.blocks.len(),
            records: self.blocks.iter().map(|b| u64::from(b.records)).sum(),
            live_records: self.index.len() as u64,
            file_bytes: self.file.metadata()?.len(),
            raw_bytes: columns.iter().map(|c| c.raw_bytes).sum(),
            compressed_bytes: columns.iter().map(|c| c.compressed_bytes).sum(),
            columns,
            recovered: self.recovered,
        })
    }

    /// Full integrity pass: re-scans every block from the front
    /// (header CRC, body CRC, full column decode), cross-checks the
    /// result against the in-memory index, and — when the store is
    /// clean — against the on-disk footer.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first inconsistency.
    pub fn verify(&mut self) -> Result<StoreStat, String> {
        let io_err = |e: io::Error| format!("i/o error during verify: {e}");
        let file_len = self.file.metadata().map_err(io_err)?.len();
        let mut scanned: Vec<BlockMeta> = Vec::new();
        let mut records = 0u64;
        let mut index: HashMap<StoreKey, (u32, u32)> = HashMap::new();
        let mut pos = FILE_MAGIC.len() as u64;
        while let Some(meta) = parse_block_header(&mut self.file, pos, file_len).map_err(io_err)? {
            let block = scanned.len() as u32;
            if !verify_block_body(&mut self.file, &meta).map_err(io_err)? {
                return Err(format!("block {block} body fails its checksum"));
            }
            let all: Vec<usize> = (0..COLUMN_COUNT).collect();
            let raws = read_columns(&mut self.file, &meta, &all)
                .map_err(io_err)?
                .ok_or_else(|| format!("block {block} has an undecodable column"))?;
            let decoded = decode_records(&meta, &raws)
                .ok_or_else(|| format!("block {block} records do not decode"))?;
            for (row, r) in decoded.iter().enumerate() {
                index.insert(r.key, (block, row as u32));
            }
            records += u64::from(meta.records);
            pos = meta.end();
            scanned.push(meta);
        }
        if scanned != self.blocks {
            return Err(format!(
                "index mismatch: footer lists {} block(s), a clean scan finds {}",
                self.blocks.len(),
                scanned.len()
            ));
        }
        if index != self.index {
            return Err("key index does not round-trip through a rescan".into());
        }
        if !self.dirty {
            match read_footer(&mut self.file, file_len).map_err(io_err)? {
                Some(footer_blocks) if footer_blocks == scanned => {}
                Some(_) => return Err("footer disagrees with the scanned blocks".into()),
                None => return Err("flushed store has no readable footer".into()),
            }
        }
        let mut stat = self.stat().map_err(io_err)?;
        stat.records = records;
        Ok(stat)
    }

    /// Drops superseded duplicate records by rewriting the file with
    /// only the live ones (atomic: written beside the store, then
    /// renamed over it). Returns how many records were dropped.
    ///
    /// # Errors
    ///
    /// I/O failures; the original file is left untouched on error.
    pub fn compact(&mut self) -> io::Result<u64> {
        let start = Instant::now();
        let _span = pchls_obs::span!("store.compact");
        let live = self.scan_records()?;
        let before: u64 = self.blocks.iter().map(|b| u64::from(b.records)).sum();
        let dropped = before - live.len() as u64;

        let mut bytes = FILE_MAGIC.to_vec();
        let mut blocks = Vec::new();
        for chunk in live.chunks(COMPACT_BLOCK_RECORDS) {
            let (block_bytes, meta) = encode_block(chunk, bytes.len() as u64);
            bytes.extend_from_slice(&block_bytes);
            blocks.push(meta);
        }
        bytes.extend_from_slice(&encode_footer(&blocks));

        let tmp = self.path.with_extension("pchls.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &self.path)?;
        *self = Store::open_file(std::mem::take(&mut self.path))?;
        self.obs.compact.record(start.elapsed());
        Ok(dropped)
    }

    fn read_block_records(&mut self, block: u32) -> io::Result<Vec<StoreRecord>> {
        let meta = self.blocks[block as usize].clone();
        let all: Vec<usize> = (0..COLUMN_COUNT).collect();
        let raws =
            read_columns(&mut self.file, &meta, &all)?.ok_or_else(|| corrupt_block(block))?;
        decode_records(&meta, &raws).ok_or_else(|| corrupt_block(block))
    }

    /// Builds the key index by partial-reading only the key columns of
    /// every block.
    fn build_index(&mut self) -> io::Result<()> {
        for block in 0..self.blocks.len() as u32 {
            let meta = self.blocks[block as usize].clone();
            let raws = read_columns(
                &mut self.file,
                &meta,
                &[COL_FINGERPRINT, COL_LATENCY_BOUND, COL_BUDGET_DIGEST],
            )?
            .ok_or_else(|| corrupt_block(block))?;
            let keys = decode_keys(&meta, &raws[0], &raws[1], &raws[2])
                .ok_or_else(|| corrupt_block(block))?;
            for (row, key) in keys.into_iter().enumerate() {
                self.index.insert(key, (block, row as u32));
            }
        }
        Ok(())
    }
}

impl Drop for Store {
    /// Best-effort footer flush — an unflushed store is still fully
    /// recoverable, just slower to open.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

fn corrupt_block(block: u32) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("store block {block} is corrupt (run `pchls store verify`)"),
    )
}

/// Sequentially scans blocks from the front, keeping every block whose
/// header and body checksums verify and stopping at the first that does
/// not — the recovery path for torn files.
fn scan_blocks(file: &mut File, file_len: u64) -> io::Result<Vec<BlockMeta>> {
    let mut blocks = Vec::new();
    let mut pos = FILE_MAGIC.len() as u64;
    while let Some(meta) = parse_block_header(file, pos, file_len)? {
        if !verify_block_body(file, &meta)? {
            break;
        }
        pos = meta.end();
        blocks.push(meta);
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pchls-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(fp: u64, latency: u32, digest: u64, area: u64) -> StoreRecord {
        StoreRecord {
            key: StoreKey {
                fingerprint: fp,
                latency_bound: latency,
                budget_digest: digest,
            },
            feasible: area != 0,
            power_bound_bits: (area as f64 / 10.0).to_bits(),
            area,
            latency: latency.saturating_sub(1),
            peak_power_bits: (area as f64 / 11.0).to_bits(),
            units: area % 7,
            trace: vec![area as u8; (area % 5) as usize],
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let dir = temp_dir("empty");
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.is_empty());
        }
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 0);
        assert!(!store.recovered());
        assert_eq!(store.scan_records().unwrap(), Vec::new());
        let stat = store.verify().unwrap();
        assert_eq!((stat.blocks, stat.records), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_flush_reopen_get() {
        let dir = temp_dir("roundtrip");
        let records: Vec<StoreRecord> = (0..30)
            .map(|i| record(i / 5, 10 + (i % 5) as u32, 7, 100 + i))
            .collect();
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&records[..20]).unwrap();
            store.append(&records[20..]).unwrap();
            store.flush().unwrap();
        }
        let mut store = Store::open(&dir).unwrap();
        assert!(!store.recovered(), "flushed store loads via footer");
        assert_eq!(store.len(), 30);
        for r in &records {
            assert_eq!(store.get(&r.key).unwrap().as_ref(), Some(r));
        }
        assert!(store
            .get(&StoreKey {
                fingerprint: 999,
                latency_bound: 1,
                budget_digest: 1
            })
            .unwrap()
            .is_none());
        let stat = store.verify().unwrap();
        assert_eq!((stat.blocks, stat.records, stat.live_records), (2, 30, 30));
        assert!(stat.compression_ratio() > 1.0, "columns compress");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_appends_are_recovered_by_scanning() {
        let dir = temp_dir("unflushed");
        let records: Vec<StoreRecord> = (0..10).map(|i| record(1, 10 + i as u32, 3, 50)).collect();
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(&records).unwrap();
            // Drop flushes; simulate the crash by truncating the footer
            // off afterwards.
        }
        let path = dir.join(STORE_FILE_NAME);
        let bytes = std::fs::read(&path).unwrap();
        // Chop increasing amounts of the footer off; every prefix that
        // still contains the full block must recover all 10 records.
        let footer_len = crate::format::encode_footer(&[]).len(); // minimum footer size
        assert!(footer_len >= 16);
        for cut in 1..=footer_len {
            std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
            let mut store = Store::open(&dir).unwrap();
            assert!(store.recovered(), "cut {cut} must force a scan");
            assert_eq!(store.len(), 10, "cut {cut}");
            assert_eq!(store.scan_records().unwrap().len(), 10);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_appends_supersede_and_compact_drops_them() {
        let dir = temp_dir("supersede");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(&[record(5, 10, 1, 100), record(6, 10, 1, 200)])
            .unwrap();
        store.append(&[record(5, 10, 1, 150)]).unwrap(); // supersedes
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.get(&record(5, 10, 1, 0).key).unwrap().unwrap().area,
            150
        );
        let scanned = store.scan_records().unwrap();
        assert_eq!(scanned.len(), 2, "scan sees live records only");
        assert_eq!(store.stat().unwrap().records, 3, "one superseded on disk");

        let dropped = store.compact().unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stat().unwrap().records, 2);
        assert_eq!(
            store.get(&record(5, 10, 1, 0).key).unwrap().unwrap().area,
            150
        );
        store.verify().unwrap();

        // And the compacted file reloads cleanly.
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        store.verify().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_area_scan_matches_full_scan() {
        let dir = temp_dir("areas");
        let mut store = Store::open(&dir).unwrap();
        let records: Vec<StoreRecord> = (0..25)
            .map(|i| {
                record(
                    i % 3,
                    10 + (i / 3) as u32,
                    9,
                    if i % 4 == 0 { 0 } else { 300 + i },
                )
            })
            .collect();
        store.append(&records).unwrap();
        let full = store.scan_records().unwrap();
        let areas = store.scan_areas().unwrap();
        assert_eq!(full.len(), areas.len());
        for (r, (key, area)) in full.iter().zip(&areas) {
            assert_eq!(r.key, *key);
            assert_eq!(r.feasible.then_some(r.area), *area);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn feasible_for_filters_and_orders() {
        let dir = temp_dir("feasible");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(&[
                record(7, 20, 2, 500),
                record(7, 10, 2, 400),
                record(7, 15, 2, 0), // infeasible
                record(8, 10, 2, 300),
            ])
            .unwrap();
        let got = store.feasible_for(7).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(
            got.iter().map(|r| r.key.latency_bound).collect::<Vec<_>>(),
            vec![10, 20],
            "ordered by latency bound"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn alien_file_is_rejected() {
        let dir = temp_dir("alien");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_FILE_NAME), b"definitely not a store file").unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
