//! LEB128 varints and zigzag/delta transforms — the byte-level
//! vocabulary of every column in the store.
//!
//! Integer columns are encoded as *deltas between consecutive values*
//! (wrapping), zigzag-folded so small negative jumps stay small, then
//! LEB128 varint-packed. A column of repeated values — the common case
//! for a batch of points sharing one graph fingerprint or one power
//! bound — collapses to one long value followed by single zero bytes,
//! which the block compressor then run-length-collapses further.

/// Appends `value` as an LEB128 varint (1–10 bytes).
pub fn put_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `bytes[*pos..]`, advancing `pos`.
/// Returns `None` on truncated input or a varint longer than 10 bytes
/// (which cannot encode a `u64` and therefore marks corruption).
pub fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for shift in 0..10 {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        // The 10th byte may only carry the final bit of a u64.
        if shift == 9 && byte > 1 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << (shift * 7);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// Zigzag-folds a signed delta into an unsigned varint-friendly value
/// (`0, -1, 1, -2, … → 0, 1, 2, 3, …`).
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `values` as a delta/zigzag/varint column: each value is
/// encoded as the wrapping difference from its predecessor (the first
/// from zero).
pub fn put_delta_column(out: &mut Vec<u8>, values: &[u64]) {
    let mut prev = 0u64;
    for &v in values {
        put_u64(out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
}

/// Decodes a delta/zigzag/varint column of exactly `count` values.
/// Returns `None` on truncation/corruption or trailing garbage.
pub fn get_delta_column(bytes: &[u8], count: usize) -> Option<Vec<u64>> {
    let mut pos = 0usize;
    let mut values = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = unzigzag(get_u64(bytes, &mut pos)?);
        prev = prev.wrapping_add(delta as u64);
        values.push(prev);
    }
    (pos == bytes.len()).then_some(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let mut pos = 0;
        assert_eq!(get_u64(&[0x80], &mut pos), None, "truncated continuation");
        let mut pos = 0;
        assert_eq!(
            get_u64(&[0xff; 11], &mut pos),
            None,
            "an 11-byte varint cannot encode a u64"
        );
    }

    #[test]
    fn zigzag_is_involutive_and_small_for_small_magnitudes() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-3) < 8, "small negatives stay small");
    }

    #[test]
    fn delta_column_round_trips_and_compresses_repeats() {
        let values = vec![900u64, 900, 900, 901, 3, u64::MAX, 0];
        let mut buf = Vec::new();
        put_delta_column(&mut buf, &values);
        assert_eq!(get_delta_column(&buf, values.len()), Some(values.clone()));
        // Repeated values cost one byte each after the first.
        let mut flat = Vec::new();
        put_delta_column(&mut flat, &[u64::MAX; 64]);
        assert!(flat.len() < 64 + 10, "repeats are one zero byte each");
        // Trailing garbage is detected.
        buf.push(0);
        assert_eq!(get_delta_column(&buf, values.len()), None);
    }
}
