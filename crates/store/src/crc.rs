//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`): the
//! corruption detector guarding every block header, block body and the
//! footer. Table-driven, one table built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// The CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = crc32(b"pchls store block");
        let mut corrupted = b"pchls store block".to_vec();
        for i in 0..corrupted.len() {
            corrupted[i] ^= 1;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} undetected");
            corrupted[i] ^= 1;
        }
    }
}
