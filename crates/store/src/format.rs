//! The on-disk format: records, columnar blocks and the footer index.
//!
//! A store file is a sequence of self-delimiting, individually
//! checksummed **blocks**, followed by a **footer index** describing
//! every block and column segment, so readers can seek straight to one
//! column of one block without touching anything else:
//!
//! ```text
//! ┌──────────┬───────┬───────┬─────┬──────────────────────────────┐
//! │ "PCHSTO1" │ block │ block │ ... │ footer  crc  len  "PCEN"    │
//! └──────────┴───────┴───────┴─────┴──────────────────────────────┘
//! ```
//!
//! Each block holds one batch of [`StoreRecord`]s laid out **by
//! column**: every field of every record in the batch is gathered into
//! its own delta/zigzag/varint-encoded, independently compressed
//! segment (see [`crate::varint`] and [`crate::compress`]). A partial
//! read — "give me the area column" — decompresses only the requested
//! segments.
//!
//! ```text
//! block := "PCBK" header_len header crc32(header) seg₀ … seg₉ crc32(segs)
//! header := records ncols (raw_len comp_len)×ncols        (varints)
//! ```
//!
//! Corruption handling: the footer is written on flush, *after* its
//! blocks, and carries its own CRC; a reader that finds the trailer
//! missing or mismatched (a crash mid-append) falls back to scanning
//! blocks from the front, keeping every block whose header and body
//! CRCs verify and dropping the torn tail. Committed records are never
//! lost; a partially written block is never served.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

use pchls_cdfg::{graph_fingerprint, Cdfg};
use pchls_core::{SweepPoint, SynthesisConstraints};
use pchls_sched::Schedule;

use crate::compress::{compress, decompress};
use crate::crc::crc32;
use crate::varint::{get_delta_column, get_u64, put_delta_column, put_u64};

/// First bytes of every store file (format version 1 baked in).
pub(crate) const FILE_MAGIC: &[u8; 8] = b"PCHSTO1\n";
/// Leads every block.
pub(crate) const BLOCK_MAGIC: u32 = u32::from_le_bytes(*b"PCBK");
/// Leads the footer.
pub(crate) const FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"PCFT");
/// Last four bytes of a cleanly flushed file.
pub(crate) const TRAILER_MAGIC: u32 = u32::from_le_bytes(*b"PCEN");

/// Number of columns per block.
pub const COLUMN_COUNT: usize = 10;

/// Human-readable column names, in on-disk order (`pchls store stat`
/// reports per-column sizes under these names).
pub const COLUMN_NAMES: [&str; COLUMN_COUNT] = [
    "fingerprint",
    "latency_bound",
    "budget_digest",
    "feasible",
    "power_bound",
    "area",
    "latency",
    "peak_power",
    "units",
    "trace",
];

pub(crate) const COL_FINGERPRINT: usize = 0;
pub(crate) const COL_LATENCY_BOUND: usize = 1;
pub(crate) const COL_BUDGET_DIGEST: usize = 2;
pub(crate) const COL_FEASIBLE: usize = 3;
pub(crate) const COL_POWER_BOUND: usize = 4;
pub(crate) const COL_AREA: usize = 5;
pub(crate) const COL_LATENCY: usize = 6;
pub(crate) const COL_PEAK_POWER: usize = 7;
pub(crate) const COL_UNITS: usize = 8;
pub(crate) const COL_TRACE: usize = 9;

/// The content-addressed identity of one synthesis outcome: *what* was
/// synthesized ([`graph_fingerprint`]) under *which constraints* (the
/// latency bound and the budget's semantic digest,
/// [`pchls_sched::PowerBudget::digest`]). Two requests with equal keys
/// produce byte-identical results, so the store may answer either from
/// one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// Structural fingerprint of the dataflow graph.
    pub fingerprint: u64,
    /// The latency constraint `T`.
    pub latency_bound: u32,
    /// Semantic digest of the power budget over `0..latency_bound`.
    pub budget_digest: u64,
}

impl StoreKey {
    /// The key of `constraints` against an already-computed graph
    /// fingerprint.
    #[must_use]
    pub fn new(fingerprint: u64, constraints: &SynthesisConstraints) -> StoreKey {
        StoreKey {
            fingerprint,
            latency_bound: constraints.latency,
            budget_digest: constraints.budget.digest(constraints.latency),
        }
    }

    /// The key of `constraints` applied to `graph` (fingerprints the
    /// graph first).
    #[must_use]
    pub fn for_graph(graph: &Cdfg, constraints: &SynthesisConstraints) -> StoreKey {
        StoreKey::new(graph_fingerprint(graph), constraints)
    }
}

/// One materialized design outcome — the persisted form of a
/// [`SweepPoint`] plus the schedule trace, keyed by [`StoreKey`].
///
/// Floating-point fields are stored as raw IEEE-754 bits so a record
/// read back converts to a `SweepPoint` that serializes byte-identically
/// to the fresh synthesis output it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecord {
    /// What this outcome answers for.
    pub key: StoreKey,
    /// Whether synthesis succeeded at this point.
    pub feasible: bool,
    /// `f64::to_bits` of the reported power bound (the budget's peak
    /// within the horizon).
    pub power_bound_bits: u64,
    /// Functional-unit area (0 when infeasible).
    pub area: u64,
    /// Achieved latency in cycles (0 when infeasible).
    pub latency: u32,
    /// `f64::to_bits` of the achieved peak power (0 when infeasible).
    pub peak_power_bits: u64,
    /// Functional-unit instance count (0 when infeasible).
    pub units: u64,
    /// Opaque schedule trace ([`trace_bytes`]); may be empty when the
    /// producer had no design in hand (e.g. an infeasible point).
    pub trace: Vec<u8>,
}

impl StoreRecord {
    /// Builds the persisted form of `point` under `key`, carrying
    /// `trace` (use [`trace_bytes`] on the design's schedule, or empty).
    #[must_use]
    pub fn from_point(key: StoreKey, point: &SweepPoint, trace: Vec<u8>) -> StoreRecord {
        StoreRecord {
            key,
            feasible: point.is_feasible(),
            power_bound_bits: point.power_bound.to_bits(),
            area: point.area.unwrap_or(0),
            latency: point.latency.unwrap_or(0),
            peak_power_bits: point.peak_power.map_or(0, f64::to_bits),
            units: point.units.unwrap_or(0) as u64,
            trace,
        }
    }

    /// Reconstructs the [`SweepPoint`] this record persisted. The
    /// benchmark name is not stored (it is implied by the fingerprint);
    /// the caller supplies it from the graph in hand.
    #[must_use]
    pub fn to_point(&self, benchmark: &str) -> SweepPoint {
        SweepPoint {
            benchmark: benchmark.to_owned(),
            latency_bound: self.key.latency_bound,
            power_bound: f64::from_bits(self.power_bound_bits),
            area: self.feasible.then_some(self.area),
            latency: self.feasible.then_some(self.latency),
            peak_power: self.feasible.then(|| f64::from_bits(self.peak_power_bits)),
            units: self.feasible.then_some(self.units as usize),
        }
    }
}

/// Encodes a schedule as the record's trace column: the operation
/// count, then every start cycle in operation order (delta/zigzag
/// varints — schedules are near-sorted, so this is small).
#[must_use]
pub fn trace_bytes(schedule: &Schedule) -> Vec<u8> {
    let starts = schedule.starts();
    let mut out = Vec::with_capacity(starts.len() + 4);
    put_u64(&mut out, starts.len() as u64);
    let words: Vec<u64> = starts.iter().map(|&s| u64::from(s)).collect();
    put_delta_column(&mut out, &words);
    out
}

/// Decodes a trace column back into start cycles. `None` for malformed
/// bytes (including any start exceeding `u32`).
#[must_use]
pub fn trace_starts(bytes: &[u8]) -> Option<Vec<u32>> {
    let mut pos = 0usize;
    let count = usize::try_from(get_u64(bytes, &mut pos)?).ok()?;
    let words = get_delta_column(&bytes[pos..], count)?;
    words.iter().map(|&w| u32::try_from(w).ok()).collect()
}

/// Everything a reader needs to address one block without re-reading
/// its header: where it lives, how many records it holds, and the
/// (raw, compressed) size of every column segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// File offset of the block magic.
    pub offset: u64,
    /// File offset of the first column segment byte.
    pub body_offset: u64,
    /// Records in this block.
    pub records: u32,
    /// Per-column (raw_len, comp_len).
    pub columns: Vec<(u32, u32)>,
}

impl BlockMeta {
    /// File offset one past this block (after the body CRC).
    pub fn end(&self) -> u64 {
        self.body_offset + u64::from(self.body_bytes()) + 4
    }

    /// Total compressed bytes across all segments.
    pub fn body_bytes(&self) -> u32 {
        self.columns.iter().map(|&(_, c)| c).sum()
    }

    /// File offset and compressed length of column `col`.
    pub fn column_span(&self, col: usize) -> (u64, u32) {
        let before: u64 = self.columns[..col].iter().map(|&(_, c)| u64::from(c)).sum();
        (self.body_offset + before, self.columns[col].1)
    }
}

/// Serializes `records` into one block placed at file offset `offset`;
/// returns the bytes and the matching metadata.
///
/// # Panics
///
/// Panics on an empty batch — callers gate this (an empty block would
/// be indistinguishable from padding).
pub(crate) fn encode_block(records: &[StoreRecord], offset: u64) -> (Vec<u8>, BlockMeta) {
    assert!(!records.is_empty(), "blocks hold at least one record");
    let column = |f: &dyn Fn(&StoreRecord) -> u64| -> Vec<u8> {
        let words: Vec<u64> = records.iter().map(f).collect();
        let mut raw = Vec::new();
        put_delta_column(&mut raw, &words);
        raw
    };
    let mut raws: Vec<Vec<u8>> = Vec::with_capacity(COLUMN_COUNT);
    raws.push(column(&|r| r.key.fingerprint));
    raws.push(column(&|r| u64::from(r.key.latency_bound)));
    raws.push(column(&|r| r.key.budget_digest));
    raws.push(records.iter().map(|r| u8::from(r.feasible)).collect());
    raws.push(column(&|r| r.power_bound_bits));
    raws.push(column(&|r| r.area));
    raws.push(column(&|r| u64::from(r.latency)));
    raws.push(column(&|r| r.peak_power_bits));
    raws.push(column(&|r| r.units));
    let mut trace = Vec::new();
    for r in records {
        put_u64(&mut trace, r.trace.len() as u64);
    }
    for r in records {
        trace.extend_from_slice(&r.trace);
    }
    raws.push(trace);

    let segments: Vec<Vec<u8>> = raws.iter().map(|raw| compress(raw)).collect();
    let columns: Vec<(u32, u32)> = raws
        .iter()
        .zip(&segments)
        .map(|(raw, seg)| (raw.len() as u32, seg.len() as u32))
        .collect();

    let mut header = Vec::new();
    put_u64(&mut header, records.len() as u64);
    put_u64(&mut header, COLUMN_COUNT as u64);
    for &(raw, comp) in &columns {
        put_u64(&mut header, u64::from(raw));
        put_u64(&mut header, u64::from(comp));
    }

    let mut bytes = Vec::new();
    bytes.extend_from_slice(&BLOCK_MAGIC.to_le_bytes());
    put_u64(&mut bytes, header.len() as u64);
    bytes.extend_from_slice(&header);
    bytes.extend_from_slice(&crc32(&header).to_le_bytes());
    let body_offset = offset + bytes.len() as u64;
    let mut body = Vec::new();
    for seg in &segments {
        body.extend_from_slice(seg);
    }
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());

    let meta = BlockMeta {
        offset,
        body_offset,
        records: records.len() as u32,
        columns,
    };
    (bytes, meta)
}

/// Reads `len` bytes at `offset`. An EOF inside the range comes back as
/// `Ok(None)` (the caller treats it as a torn tail, not an I/O fault).
pub(crate) fn read_at(file: &mut File, offset: u64, len: usize) -> io::Result<Option<Vec<u8>>> {
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match file.read(&mut buf[filled..]) {
            Ok(0) => return Ok(None),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(buf))
}

/// Parses and validates the block header at `offset`. `Ok(None)` means
/// "no valid block here" — wrong magic, bad CRC, truncated, or a body
/// extending past `file_len` — which a recovery scan treats as the end
/// of the committed data.
pub(crate) fn parse_block_header(
    file: &mut File,
    offset: u64,
    file_len: u64,
) -> io::Result<Option<BlockMeta>> {
    // Magic + the header-length varint (≤ 5 bytes for any sane header).
    let prefix_len = 9usize.min(file_len.saturating_sub(offset) as usize);
    let Some(prefix) = read_at(file, offset, prefix_len)? else {
        return Ok(None);
    };
    if prefix.len() < 6 || prefix[..4] != BLOCK_MAGIC.to_le_bytes() {
        return Ok(None);
    }
    let mut pos = 4usize;
    let Some(header_len) = get_u64(&prefix, &mut pos) else {
        return Ok(None);
    };
    // A header describes ≤ COLUMN_COUNT columns; anything huge is junk.
    if header_len == 0 || header_len > 4096 {
        return Ok(None);
    }
    let header_at = offset + pos as u64;
    let Some(header_and_crc) = read_at(file, header_at, header_len as usize + 4)? else {
        return Ok(None);
    };
    let (header, crc) = header_and_crc.split_at(header_len as usize);
    if crc32(header) != u32::from_le_bytes(crc.try_into().expect("4 crc bytes")) {
        return Ok(None);
    }
    let mut hpos = 0usize;
    let (Some(records), Some(ncols)) = (get_u64(header, &mut hpos), get_u64(header, &mut hpos))
    else {
        return Ok(None);
    };
    if records == 0 || records > u64::from(u32::MAX) || ncols != COLUMN_COUNT as u64 {
        return Ok(None);
    }
    let mut columns = Vec::with_capacity(COLUMN_COUNT);
    for _ in 0..COLUMN_COUNT {
        let (Some(raw), Some(comp)) = (get_u64(header, &mut hpos), get_u64(header, &mut hpos))
        else {
            return Ok(None);
        };
        if raw > u64::from(u32::MAX) || comp > u64::from(u32::MAX) {
            return Ok(None);
        }
        columns.push((raw as u32, comp as u32));
    }
    if hpos != header.len() {
        return Ok(None);
    }
    let meta = BlockMeta {
        offset,
        body_offset: header_at + header_len + 4,
        records: records as u32,
        columns,
    };
    if meta.end() > file_len {
        return Ok(None);
    }
    Ok(Some(meta))
}

/// Whether the block's body bytes match their CRC (used by recovery
/// scans and `verify`; indexed reads trust the flushed footer instead).
pub(crate) fn verify_block_body(file: &mut File, meta: &BlockMeta) -> io::Result<bool> {
    let len = meta.body_bytes() as usize;
    let Some(body_and_crc) = read_at(file, meta.body_offset, len + 4)? else {
        return Ok(false);
    };
    let (body, crc) = body_and_crc.split_at(len);
    Ok(crc32(body) == u32::from_le_bytes(crc.try_into().expect("4 crc bytes")))
}

/// Reads and decompresses the requested columns of one block — and only
/// those; unrequested segments are never touched. `Ok(None)` marks a
/// corrupt segment.
pub(crate) fn read_columns(
    file: &mut File,
    meta: &BlockMeta,
    cols: &[usize],
) -> io::Result<Option<Vec<Vec<u8>>>> {
    let mut out = Vec::with_capacity(cols.len());
    for &col in cols {
        let (at, comp_len) = meta.column_span(col);
        let Some(segment) = read_at(file, at, comp_len as usize)? else {
            return Ok(None);
        };
        let Some(raw) = decompress(&segment, meta.columns[col].0 as usize) else {
            return Ok(None);
        };
        out.push(raw);
    }
    Ok(Some(out))
}

/// Decodes the three key columns into per-row [`StoreKey`]s.
pub(crate) fn decode_keys(
    meta: &BlockMeta,
    fingerprint: &[u8],
    latency_bound: &[u8],
    budget_digest: &[u8],
) -> Option<Vec<StoreKey>> {
    let n = meta.records as usize;
    let fp = get_delta_column(fingerprint, n)?;
    let lat = get_delta_column(latency_bound, n)?;
    let dig = get_delta_column(budget_digest, n)?;
    (0..n)
        .map(|i| {
            Some(StoreKey {
                fingerprint: fp[i],
                latency_bound: u32::try_from(lat[i]).ok()?,
                budget_digest: dig[i],
            })
        })
        .collect()
}

/// Decodes all ten columns into full records. `None` on any
/// inconsistency between columns and the header's record count.
pub(crate) fn decode_records(meta: &BlockMeta, raws: &[Vec<u8>]) -> Option<Vec<StoreRecord>> {
    let n = meta.records as usize;
    let keys = decode_keys(
        meta,
        &raws[COL_FINGERPRINT],
        &raws[COL_LATENCY_BOUND],
        &raws[COL_BUDGET_DIGEST],
    )?;
    let feasible = &raws[COL_FEASIBLE];
    if feasible.len() != n || feasible.iter().any(|&b| b > 1) {
        return None;
    }
    let power = get_delta_column(&raws[COL_POWER_BOUND], n)?;
    let area = get_delta_column(&raws[COL_AREA], n)?;
    let latency = get_delta_column(&raws[COL_LATENCY], n)?;
    let peak = get_delta_column(&raws[COL_PEAK_POWER], n)?;
    let units = get_delta_column(&raws[COL_UNITS], n)?;
    let trace_col = &raws[COL_TRACE];
    let mut pos = 0usize;
    let mut trace_lens = Vec::with_capacity(n);
    for _ in 0..n {
        trace_lens.push(usize::try_from(get_u64(trace_col, &mut pos)?).ok()?);
    }
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let trace = trace_col.get(pos..pos + trace_lens[i])?.to_vec();
        pos += trace_lens[i];
        records.push(StoreRecord {
            key: keys[i],
            feasible: feasible[i] == 1,
            power_bound_bits: power[i],
            area: area[i],
            latency: u32::try_from(latency[i]).ok()?,
            peak_power_bits: peak[i],
            units: units[i],
            trace,
        });
    }
    (pos == trace_col.len()).then_some(records)
}

/// Serializes the footer index over `blocks` (magic + varint body + CRC
/// + length + trailer magic), ready to append at the data end.
pub(crate) fn encode_footer(blocks: &[BlockMeta]) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, blocks.len() as u64);
    for b in blocks {
        put_u64(&mut body, b.offset);
        put_u64(&mut body, b.body_offset - b.offset);
        put_u64(&mut body, u64::from(b.records));
        put_u64(&mut body, b.columns.len() as u64);
        for &(raw, comp) in &b.columns {
            put_u64(&mut body, u64::from(raw));
            put_u64(&mut body, u64::from(comp));
        }
    }
    let total: u64 = blocks.iter().map(|b| u64::from(b.records)).sum();
    put_u64(&mut body, total);

    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&TRAILER_MAGIC.to_le_bytes());
    out
}

/// Attempts to load the footer index from the tail of a `file_len`-byte
/// file. `Ok(None)` — clean miss (torn or absent footer) — sends the
/// caller down the recovery scan.
pub(crate) fn read_footer(file: &mut File, file_len: u64) -> io::Result<Option<Vec<BlockMeta>>> {
    // trailer magic (4) + body length (4) + crc (4) + footer magic (4).
    if file_len < FILE_MAGIC.len() as u64 + 16 {
        return Ok(None);
    }
    let Some(tail) = read_at(file, file_len - 8, 8)? else {
        return Ok(None);
    };
    if tail[4..8] != TRAILER_MAGIC.to_le_bytes() {
        return Ok(None);
    }
    let body_len = u64::from(u32::from_le_bytes(tail[..4].try_into().expect("4 bytes")));
    let footer_start = match file_len.checked_sub(16 + body_len) {
        Some(s) if s >= FILE_MAGIC.len() as u64 => s,
        _ => return Ok(None),
    };
    let Some(footer) = read_at(file, footer_start, (body_len + 12) as usize)? else {
        return Ok(None);
    };
    if footer[..4] != FOOTER_MAGIC.to_le_bytes() {
        return Ok(None);
    }
    let body = &footer[4..4 + body_len as usize];
    let crc = u32::from_le_bytes(
        footer[4 + body_len as usize..8 + body_len as usize]
            .try_into()
            .expect("4 crc bytes"),
    );
    if crc32(body) != crc {
        return Ok(None);
    }

    let mut pos = 0usize;
    let Some(count) = get_u64(body, &mut pos) else {
        return Ok(None);
    };
    let mut blocks = Vec::new();
    for _ in 0..count {
        let (Some(offset), Some(prefix), Some(records), Some(ncols)) = (
            get_u64(body, &mut pos),
            get_u64(body, &mut pos),
            get_u64(body, &mut pos),
            get_u64(body, &mut pos),
        ) else {
            return Ok(None);
        };
        if ncols != COLUMN_COUNT as u64 || records == 0 || records > u64::from(u32::MAX) {
            return Ok(None);
        }
        let mut columns = Vec::with_capacity(COLUMN_COUNT);
        for _ in 0..COLUMN_COUNT {
            let (Some(raw), Some(comp)) = (get_u64(body, &mut pos), get_u64(body, &mut pos)) else {
                return Ok(None);
            };
            if raw > u64::from(u32::MAX) || comp > u64::from(u32::MAX) {
                return Ok(None);
            }
            columns.push((raw as u32, comp as u32));
        }
        let meta = BlockMeta {
            offset,
            body_offset: offset + prefix,
            records: records as u32,
            columns,
        };
        if meta.end() > footer_start {
            return Ok(None);
        }
        blocks.push(meta);
    }
    let total: u64 = blocks.iter().map(|b| u64::from(b.records)).sum();
    if get_u64(body, &mut pos) != Some(total) || pos != body.len() {
        return Ok(None);
    }
    Ok(Some(blocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(i: u64) -> StoreRecord {
        StoreRecord {
            key: StoreKey {
                fingerprint: 0xdead_beef_0000 + i / 3,
                latency_bound: 10 + (i % 3) as u32,
                budget_digest: 0x1111_2222 + i % 5,
            },
            feasible: !i.is_multiple_of(4),
            power_bound_bits: (25.0 + i as f64).to_bits(),
            area: 100 + i * 7,
            latency: 9 + (i % 3) as u32,
            peak_power_bits: (20.0 + i as f64 / 2.0).to_bits(),
            units: 3 + i % 4,
            trace: (0..i % 11).map(|b| b as u8).collect(),
        }
    }

    fn temp_file(bytes: &[u8]) -> (std::path::PathBuf, File) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pchls-format-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, bytes).unwrap();
        let file = File::options().read(true).open(&path).unwrap();
        (path, file)
    }

    #[test]
    fn block_round_trips_through_bytes() {
        let records: Vec<StoreRecord> = (0..50).map(sample_record).collect();
        let (bytes, meta) = encode_block(&records, 8);
        assert_eq!(meta.end() - meta.offset, bytes.len() as u64);

        let mut file_bytes = FILE_MAGIC.to_vec();
        file_bytes.extend_from_slice(&bytes);
        let (path, mut file) = temp_file(&file_bytes);
        let parsed = parse_block_header(&mut file, 8, file_bytes.len() as u64)
            .unwrap()
            .expect("valid header");
        assert_eq!(parsed, meta);
        assert!(verify_block_body(&mut file, &parsed).unwrap());
        let all: Vec<usize> = (0..COLUMN_COUNT).collect();
        let raws = read_columns(&mut file, &parsed, &all).unwrap().unwrap();
        let back = decode_records(&parsed, &raws).expect("decodable");
        assert_eq!(back, records);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn partial_reads_touch_only_requested_columns() {
        let records: Vec<StoreRecord> = (0..40).map(sample_record).collect();
        let (bytes, meta) = encode_block(&records, 8);
        let mut file_bytes = FILE_MAGIC.to_vec();
        file_bytes.extend_from_slice(&bytes);

        // Corrupt the trace segment on disk; key/area reads must still
        // succeed because they never touch it.
        let (trace_at, trace_len) = meta.column_span(COL_TRACE);
        for b in &mut file_bytes[trace_at as usize..(trace_at + u64::from(trace_len)) as usize] {
            *b ^= 0xff;
        }
        let (path, mut file) = temp_file(&file_bytes);
        let raws = read_columns(
            &mut file,
            &meta,
            &[
                COL_FINGERPRINT,
                COL_LATENCY_BOUND,
                COL_BUDGET_DIGEST,
                COL_AREA,
            ],
        )
        .unwrap()
        .expect("untouched columns decode");
        let keys = decode_keys(&meta, &raws[0], &raws[1], &raws[2]).unwrap();
        assert_eq!(keys.len(), 40);
        assert_eq!(keys[7], records[7].key);
        let areas = get_delta_column(&raws[3], 40).unwrap();
        assert_eq!(areas[13], records[13].area);
        // The corrupted column itself is rejected cleanly.
        assert_eq!(read_columns(&mut file, &meta, &[COL_TRACE]).unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn footer_round_trips_and_rejects_corruption() {
        let blocks: Vec<BlockMeta> = (0..3)
            .map(|i| {
                let records: Vec<StoreRecord> = (0..10 + i).map(sample_record).collect();
                encode_block(&records, 8 + i * 1000).1
            })
            .collect();
        let footer = encode_footer(&blocks);
        let mut file_bytes = vec![0u8; 8 + 3000];
        file_bytes[..8].copy_from_slice(FILE_MAGIC);
        file_bytes.extend_from_slice(&footer);
        let (path, mut file) = temp_file(&file_bytes);
        let loaded = read_footer(&mut file, file_bytes.len() as u64)
            .unwrap()
            .expect("clean footer");
        assert_eq!(loaded, blocks);
        drop(file);

        // Any single corrupted footer byte must fail closed to a scan.
        let footer_start = file_bytes.len() - footer.len();
        for i in (footer_start..file_bytes.len()).step_by(7) {
            let mut corrupt = file_bytes.clone();
            corrupt[i] ^= 0x40;
            let (p2, mut f2) = temp_file(&corrupt);
            assert_eq!(
                read_footer(&mut f2, corrupt.len() as u64).unwrap(),
                None,
                "corruption at byte {i} accepted"
            );
            drop(f2);
            std::fs::remove_file(p2).unwrap();
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn record_converts_to_the_exact_sweep_point() {
        let point = SweepPoint {
            benchmark: "hal".into(),
            latency_bound: 17,
            power_bound: 25.0,
            area: Some(609),
            latency: Some(16),
            peak_power: Some(24.7),
            units: Some(6),
        };
        let key = StoreKey {
            fingerprint: 42,
            latency_bound: 17,
            budget_digest: 7,
        };
        let rec = StoreRecord::from_point(key, &point, vec![1, 2, 3]);
        assert_eq!(rec.to_point("hal"), point);

        let infeasible = SweepPoint {
            area: None,
            latency: None,
            peak_power: None,
            units: None,
            ..point
        };
        let rec = StoreRecord::from_point(key, &infeasible, Vec::new());
        assert!(!rec.feasible);
        assert_eq!(rec.to_point("hal"), infeasible);
    }

    #[test]
    fn trace_round_trips_schedule_starts() {
        let schedule = Schedule::new(vec![0, 0, 1, 3, 3, 7, 2]);
        let bytes = trace_bytes(&schedule);
        assert_eq!(trace_starts(&bytes), Some(vec![0, 0, 1, 3, 3, 7, 2]));
        assert_eq!(trace_starts(&bytes[..bytes.len() - 1]), None, "truncated");
        assert_eq!(trace_starts(&[]), None);
    }
}
