//! A small byte-oriented LZ77 block compressor.
//!
//! Column segments are short (a few KiB) and highly repetitive after
//! delta/varint encoding — long zero runs, repeated varint patterns —
//! so a deliberately simple scheme captures most of the win without
//! pulling in a dependency (the container has none to offer):
//!
//! * token stream: a control byte `t < 0x80` starts a literal run of
//!   `t + 1` bytes; `t >= 0x80` is a back-reference of length
//!   `(t & 0x7f) + 4` (4–131 bytes) followed by a 16-bit little-endian
//!   distance (1–65535 back). Overlapping copies are allowed, so a run
//!   of one repeated byte costs three bytes per 131 emitted.
//! * the compressor is greedy with a 32 Ki-entry hash table over 4-byte
//!   prefixes — deterministic by construction (no randomized state), so
//!   identical input always produces identical stored bytes.
//!
//! Every segment carries a one-byte mode prefix: `0` stores the bytes
//! raw (the compressor never loses), `1` is the token stream above.

/// Shortest back-reference worth a 3-byte token.
const MIN_MATCH: usize = 4;
/// Longest back-reference one token can express.
const MAX_MATCH: usize = 0x7f + MIN_MATCH;
/// Longest literal run one control byte can express.
const MAX_LITERAL: usize = 0x80;
/// Farthest reachable back-reference distance.
const MAX_DISTANCE: usize = u16::MAX as usize;

const MODE_RAW: u8 = 0;
const MODE_LZ: u8 = 1;

const HASH_BITS: u32 = 15;

fn hash4(window: &[u8]) -> usize {
    let w = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (w.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `raw` into a self-describing segment (mode byte +
/// payload). Never grows the payload beyond `raw.len()` (plus the one
/// mode byte): if the token stream would be larger, the segment stores
/// the bytes verbatim.
#[must_use]
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = vec![MODE_LZ];
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut pos = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(MAX_LITERAL);
            out.push((run - 1) as u8);
            out.extend_from_slice(&raw[start..start + run]);
            start += run;
        }
    };

    while pos + MIN_MATCH <= raw.len() {
        let slot = hash4(&raw[pos..]);
        let candidate = table[slot];
        table[slot] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= MAX_DISTANCE
            && raw[candidate..candidate + MIN_MATCH] == raw[pos..pos + MIN_MATCH];
        if found {
            let mut len = MIN_MATCH;
            let cap = (raw.len() - pos).min(MAX_MATCH);
            while len < cap && raw[candidate + len] == raw[pos + len] {
                len += 1;
            }
            flush_literals(&mut out, literal_start, pos);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((pos - candidate) as u16).to_le_bytes());
            // Seed the table across the matched span so immediately
            // following repeats are found too.
            for p in pos + 1..(pos + len).min(raw.len().saturating_sub(MIN_MATCH - 1)) {
                table[hash4(&raw[p..])] = p;
            }
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, raw.len());

    if out.len() > raw.len() + 1 {
        let mut verbatim = Vec::with_capacity(raw.len() + 1);
        verbatim.push(MODE_RAW);
        verbatim.extend_from_slice(raw);
        verbatim
    } else {
        out
    }
}

/// Decompresses a segment produced by [`compress`], validating that the
/// output is exactly `raw_len` bytes. Returns `None` on any
/// malformation: unknown mode, truncated token, out-of-range distance,
/// or a length mismatch.
#[must_use]
pub fn decompress(segment: &[u8], raw_len: usize) -> Option<Vec<u8>> {
    let (&mode, tokens) = segment.split_first()?;
    match mode {
        MODE_RAW => (tokens.len() == raw_len).then(|| tokens.to_vec()),
        MODE_LZ => {
            let mut out = Vec::with_capacity(raw_len);
            let mut pos = 0usize;
            while pos < tokens.len() {
                let control = tokens[pos];
                pos += 1;
                if control < 0x80 {
                    let run = control as usize + 1;
                    let literals = tokens.get(pos..pos + run)?;
                    out.extend_from_slice(literals);
                    pos += run;
                } else {
                    let len = (control & 0x7f) as usize + MIN_MATCH;
                    let lo = *tokens.get(pos)?;
                    let hi = *tokens.get(pos + 1)?;
                    pos += 2;
                    let distance = u16::from_le_bytes([lo, hi]) as usize;
                    if distance == 0 || distance > out.len() {
                        return None;
                    }
                    // Byte-at-a-time copy: overlapping references
                    // (distance < len) replicate the tail, by design.
                    let start = out.len() - distance;
                    for i in 0..len {
                        let byte = out[start + i];
                        out.push(byte);
                    }
                }
                if out.len() > raw_len {
                    return None;
                }
            }
            (out.len() == raw_len).then_some(out)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(raw: &[u8]) -> Vec<u8> {
        let seg = compress(raw);
        let back = decompress(&seg, raw.len()).expect("valid segment");
        assert_eq!(back, raw);
        seg
    }

    #[test]
    fn round_trips_edge_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(&[0u8; 100_000]);
        round_trip("the quick brown fox ".repeat(400).as_bytes());
        let mixed: Vec<u8> = (0..5000u32).flat_map(|i| i.to_le_bytes()).collect();
        round_trip(&mixed);
    }

    #[test]
    fn repetitive_input_shrinks_incompressible_does_not_grow() {
        let zeros = compress(&[0u8; 4096]);
        assert!(
            zeros.len() < 4096 / 20,
            "zeros compress >20x: {}",
            zeros.len()
        );
        // A pseudo-random byte stream must not grow beyond raw + mode.
        let mut x = 0x12345678u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let seg = round_trip(&noise);
        assert!(seg.len() <= noise.len() + 1);
    }

    #[test]
    fn long_range_matches_inside_the_window_are_found() {
        let mut raw = vec![0xAA; 8];
        raw.extend(std::iter::repeat_n(0x55, 60_000));
        raw.extend([0xAA; 8]); // matches the prefix, 60 KiB back
        let seg = round_trip(&raw);
        // The 0x55 run costs 3 bytes per 131-byte token; the trailing
        // 0xAA bytes must resolve as one long-range match, not 8
        // literals (which would push past the token-count bound below).
        assert!(seg.len() < 60_000 / 131 * 3 + 64, "got {}", seg.len());
    }

    #[test]
    fn malformed_segments_are_rejected_not_panicked_on() {
        assert_eq!(decompress(&[], 0), None, "missing mode byte");
        assert_eq!(decompress(&[9, 1, 2], 2), None, "unknown mode");
        assert_eq!(decompress(&[MODE_RAW, 1, 2], 3), None, "raw length lies");
        assert_eq!(
            decompress(&[MODE_LZ, 0x05, 1], 6),
            None,
            "truncated literals"
        );
        assert_eq!(decompress(&[MODE_LZ, 0x80], 4), None, "truncated distance");
        assert_eq!(
            decompress(&[MODE_LZ, 0x80, 1, 0], 4),
            None,
            "distance into the void"
        );
        assert_eq!(
            decompress(&[MODE_LZ, 0x00, 7, 0x80, 1, 0], 2),
            None,
            "overlong output"
        );
    }

    #[test]
    fn compression_is_deterministic() {
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| (i / 7).to_le_bytes()).collect();
        assert_eq!(compress(&data), compress(&data));
    }
}
