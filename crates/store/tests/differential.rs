//! Differential tests: random batches of real synthesis outcomes
//! round-tripped through the store (write → flush → reopen → full and
//! partial reads) must match the in-memory results field for field —
//! including points keyed by PR 5's time-varying budget envelopes, and
//! including byte-identical serialized `SweepPoint` JSON.

use std::path::PathBuf;

use proptest::prelude::*;

use pchls_cdfg::{benchmarks, graph_fingerprint, Cdfg};
use pchls_core::{Engine, PowerBudget, SynthesisConstraints, SynthesisRequest, SynthesisResult};
use pchls_fulib::paper_library;
use pchls_store::{trace_bytes, trace_starts, Store, StoreKey, StoreRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pchls-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

prop_compose! {
    /// A generated constraint point: latency bound plus one of the
    /// three budget spellings (constant, step envelope, per-cycle
    /// vector).
    fn constraint_strategy()(
        shape in 0u32..3,
        t in 8u32..28,
        p in 9.0f64..70.0,
        at in 1u32..10,
        frac in 0.3f64..1.0,
    ) -> SynthesisConstraints {
        match shape {
            0 => SynthesisConstraints::new(t, p),
            1 => {
                let step = at.min(t - 1);
                SynthesisConstraints::new(t, PowerBudget::steps(vec![(0, p), (step, p * frac)]))
            }
            _ => {
                // A deterministic jagged per-cycle envelope in [p/2, p].
                let mut x = (u64::from(t) << 32 | u64::from(at)) | 1;
                let bounds: Vec<f64> = (0..t)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        p * (0.5 + (x % 1000) as f64 / 2000.0)
                    })
                    .collect();
                SynthesisConstraints::new(t, PowerBudget::per_cycle(bounds))
            }
        }
    }
}

fn synthesize_batch(graph: &Cdfg, constraints: &[SynthesisConstraints]) -> Vec<SynthesisResult> {
    let engine = Engine::new(paper_library());
    let compiled = engine.compile(graph);
    engine
        .session(&compiled)
        .batch(constraints.iter().map(|c| SynthesisRequest::new(c.clone())))
}

fn to_record(graph: &Cdfg, result: &SynthesisResult) -> StoreRecord {
    let key = StoreKey::for_graph(graph, &result.request.constraints);
    let trace = result
        .outcome
        .as_ref()
        .map(|d| trace_bytes(&d.schedule))
        .unwrap_or_default();
    StoreRecord::from_point(key, &result.to_point(graph.name()), trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write a random batch, reopen cold, and compare every read path
    /// against the in-memory results.
    #[test]
    fn store_round_trip_matches_in_memory_results(
        constraints in proptest::collection::vec(constraint_strategy(), 1..10),
        chunk in 1usize..5,
    ) {
        let graph = benchmarks::hal();
        let results = synthesize_batch(&graph, &constraints);
        let records: Vec<StoreRecord> =
            results.iter().map(|r| to_record(&graph, r)).collect();

        let dir = temp_dir("roundtrip");
        {
            let mut store = Store::open(&dir).unwrap();
            for batch in records.chunks(chunk) {
                store.append(batch).unwrap();
            }
            store.flush().unwrap();
        }

        let mut store = Store::open(&dir).unwrap();
        prop_assert!(!store.recovered());
        // Duplicate keys within the batch (same spelling drawn twice, or
        // two spellings of one budget) dedup to the last write; synthesis
        // is deterministic so the surviving record is field-identical.
        for (result, record) in results.iter().zip(&records) {
            let got = store.get(&record.key).unwrap().expect("key present");
            prop_assert_eq!(&got, record, "stored record diverged");
            // The reconstructed SweepPoint serializes to the exact bytes
            // of the fresh one.
            let fresh = result.to_point(graph.name());
            prop_assert_eq!(
                serde_json::to_string(&got.to_point(graph.name())).unwrap(),
                serde_json::to_string(&fresh).unwrap()
            );
            // And the schedule trace reconstructs the exact start times.
            if let Ok(design) = &result.outcome {
                let starts = trace_starts(&got.trace).expect("trace decodes");
                prop_assert_eq!(starts.as_slice(), design.schedule.starts());
            } else {
                prop_assert!(got.trace.is_empty());
            }
        }

        // The partial area read agrees with the full read, row for row.
        let full = store.scan_records().unwrap();
        let areas = store.scan_areas().unwrap();
        prop_assert_eq!(full.len(), areas.len());
        for (r, (key, area)) in full.iter().zip(&areas) {
            prop_assert_eq!(r.key, *key);
            prop_assert_eq!(r.feasible.then_some(r.area), *area);
        }
        store.verify().map_err(|e| format!("verify failed: {e}"))?;
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Budget digests key on semantics: spelling the same envelope as
    /// steps or per-cycle bounds maps to one store record, and the
    /// record answers for both spellings.
    #[test]
    fn equivalent_budget_spellings_share_one_record(
        t in 8u32..24,
        p in 10.0f64..60.0,
        at in 1u32..8,
    ) {
        let graph = benchmarks::hal();
        let step = at.min(t - 1);
        let stepped = SynthesisConstraints::new(
            t,
            PowerBudget::steps(vec![(0, p), (step, p * 0.6)]),
        );
        let spelled: Vec<f64> = (0..t)
            .map(|c| if c < step { p } else { p * 0.6 })
            .collect();
        let per_cycle = SynthesisConstraints::new(t, PowerBudget::per_cycle(spelled));

        let key_a = StoreKey::for_graph(&graph, &stepped);
        let key_b = StoreKey::for_graph(&graph, &per_cycle);
        prop_assert_eq!(key_a, key_b, "semantically equal budgets must share a key");
        prop_assert_eq!(key_a.fingerprint, graph_fingerprint(&graph));

        let results = synthesize_batch(&graph, &[stepped, per_cycle]);
        let dir = temp_dir("spelling");
        let mut store = Store::open(&dir).unwrap();
        store
            .append(&results.iter().map(|r| to_record(&graph, r)).collect::<Vec<_>>())
            .unwrap();
        prop_assert_eq!(store.len(), 1, "one live record for both spellings");
        // Determinism makes the shared record answer both spellings
        // byte-identically.
        let got = store.get(&key_a).unwrap().unwrap();
        for r in &results {
            prop_assert_eq!(
                serde_json::to_string(&got.to_point(graph.name())).unwrap(),
                serde_json::to_string(&r.to_point(graph.name())).unwrap()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Distinct graphs, latency bounds, and budgets all produce distinct
/// keys (the content-addressing axes are independent).
#[test]
fn key_axes_are_independent() {
    let hal = benchmarks::hal();
    let c = SynthesisConstraints::new(17, 25.0);
    let base = StoreKey::for_graph(&hal, &c);
    for other in benchmarks::paper_set() {
        if other.name() != hal.name() {
            assert_ne!(
                StoreKey::for_graph(&other, &c).fingerprint,
                base.fingerprint
            );
        }
    }
    assert_ne!(
        StoreKey::for_graph(&hal, &SynthesisConstraints::new(18, 25.0)),
        base
    );
    assert_ne!(
        StoreKey::for_graph(&hal, &SynthesisConstraints::new(17, 26.0)),
        base
    );
}
