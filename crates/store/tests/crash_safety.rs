//! Crash-safety: a store file truncated at *every* byte boundary —
//! simulating a crash mid-append or mid-footer-write — must reopen
//! without panicking, recover every record of every complete block, and
//! never serve bytes from a torn tail.

use std::path::PathBuf;

use pchls_store::{Store, StoreKey, StoreRecord, STORE_FILE_NAME};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pchls-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(i: u64) -> StoreRecord {
    StoreRecord {
        key: StoreKey {
            fingerprint: 0xabcd_0000 + i / 7,
            latency_bound: 10 + (i % 7) as u32,
            budget_digest: 0x5eed + i,
        },
        feasible: !i.is_multiple_of(3),
        power_bound_bits: (20.0 + i as f64 * 0.25).to_bits(),
        area: 500 + i * 3,
        latency: 9 + (i % 7) as u32,
        peak_power_bits: (19.0 + i as f64 * 0.25).to_bits(),
        units: 3 + i % 4,
        trace: (0..(i % 9) as u8).collect(),
    }
}

#[test]
fn every_byte_truncation_recovers_complete_blocks_and_never_panics() {
    let dir = temp_dir("truncate");
    let path = dir.join(STORE_FILE_NAME);
    let batch_a: Vec<StoreRecord> = (0..12).map(record).collect();
    let batch_b: Vec<StoreRecord> = (100..112).map(record).collect();

    // Capture the two data watermarks: end of block A and end of block
    // B, both *before* any footer covers them (appends write through to
    // the file immediately; only the footer waits for flush).
    let (end_a, end_b) = {
        let mut store = Store::open(&dir).unwrap();
        store.append(&batch_a).unwrap();
        let end_a = std::fs::metadata(&path).unwrap().len();
        store.append(&batch_b).unwrap();
        let end_b = std::fs::metadata(&path).unwrap().len();
        store.flush().unwrap();
        (end_a, end_b)
    };
    let full = std::fs::read(&path).unwrap();
    assert!(end_a > 8 && end_b > end_a && (end_b as usize) < full.len());
    let combined: Vec<StoreRecord> = batch_a.iter().chain(&batch_b).cloned().collect();

    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let opened = Store::open(&dir); // must never panic
        if (cut as u64) < 8 {
            // Not even the magic survived; either outcome is fine as
            // long as a successful open is empty.
            if let Ok(store) = opened {
                assert!(store.is_empty(), "cut {cut}");
            }
            continue;
        }
        let mut store = opened.unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let expect: &[StoreRecord] = if (cut as u64) >= end_b {
            &combined
        } else if (cut as u64) >= end_a {
            &batch_a
        } else {
            &[]
        };
        assert_eq!(store.len(), expect.len(), "cut {cut}");
        // Only the final, footer-complete file loads without a scan.
        assert_eq!(store.recovered(), cut != full.len(), "cut {cut}");
        for r in expect {
            assert_eq!(
                store.get(&r.key).unwrap().as_ref(),
                Some(r),
                "cut {cut}: record lost or corrupted"
            );
        }
        let scanned = store.scan_records().unwrap();
        assert_eq!(scanned, expect, "cut {cut}: scan diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn appending_after_recovery_overwrites_the_torn_tail() {
    let dir = temp_dir("heal");
    let path = dir.join(STORE_FILE_NAME);
    let batch_a: Vec<StoreRecord> = (0..8).map(record).collect();
    let batch_b: Vec<StoreRecord> = (50..58).map(record).collect();
    {
        let mut store = Store::open(&dir).unwrap();
        store.append(&batch_a).unwrap();
        store.flush().unwrap();
    }
    // Tear mid-way through what would have been the next block: append
    // B then chop half of its bytes off together with the footer.
    let clean = std::fs::read(&path).unwrap();
    {
        let mut store = Store::open(&dir).unwrap();
        store.append(&batch_b).unwrap();
        let torn_len = std::fs::metadata(&path).unwrap().len() - 5;
        drop(store); // flushes a footer we immediately destroy
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..torn_len as usize]).unwrap();
    }
    assert!(std::fs::metadata(&path).unwrap().len() > clean.len() as u64);

    // Recovery sees only batch A; appending batch B again must land
    // where the torn block was and produce a fully healthy store.
    let mut store = Store::open(&dir).unwrap();
    assert!(store.recovered());
    assert_eq!(store.len(), batch_a.len());
    store.append(&batch_b).unwrap();
    store.flush().unwrap();
    store
        .verify()
        .unwrap_or_else(|e| panic!("healed store fails verify: {e}"));
    drop(store);

    let mut store = Store::open(&dir).unwrap();
    assert!(!store.recovered());
    assert_eq!(store.len(), batch_a.len() + batch_b.len());
    for r in batch_a.iter().chain(&batch_b) {
        assert_eq!(store.get(&r.key).unwrap().as_ref(), Some(r));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
