//! Text Gantt chart of a bound, scheduled design.

use std::fmt::Write as _;

use pchls_cdfg::Cdfg;
use pchls_fulib::ModuleLibrary;
use pchls_sched::{Schedule, TimingMap};

use crate::binding::Binding;

/// Renders one row per functional-unit instance showing which operation
/// occupies it in every cycle — the classic schedule picture of HLS
/// papers.
///
/// Each cell shows the occupying operation's id (`.` = idle); multi-cycle
/// executions repeat their id. Unbound operations are skipped, so the
/// chart is also usable mid-synthesis.
///
/// # Example
///
/// ```
/// use pchls_bind::{bind_schedule, gantt, CostWeights};
/// use pchls_cdfg::benchmarks::hal;
/// use pchls_fulib::{paper_library, SelectionPolicy};
/// use pchls_sched::{asap, TimingMap};
///
/// # fn main() -> Result<(), pchls_bind::BindError> {
/// let g = hal();
/// let lib = paper_library();
/// let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
/// let s = asap(&g, &t);
/// let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default())?;
/// let chart = gantt(&g, &lib, &b, &s, &t);
/// assert!(chart.contains("mult_par"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn gantt(
    graph: &Cdfg,
    library: &ModuleLibrary,
    binding: &Binding,
    schedule: &Schedule,
    timing: &TimingMap,
) -> String {
    let latency = schedule.latency(timing);
    let cell = graph
        .node_ids()
        .map(|id| id.to_string().len())
        .max()
        .unwrap_or(2)
        .max(2);
    let name_w = binding
        .instances()
        .iter()
        .map(|i| library.module(i.module()).name().len())
        .max()
        .unwrap_or(4)
        + 6;

    let mut s = String::new();
    let _ = write!(s, "{:<name_w$} |", "unit");
    for c in 0..latency {
        let _ = write!(s, "{c:>cell$}");
    }
    s.push('\n');
    let _ = writeln!(s, "{}", "-".repeat(name_w + 2 + latency as usize * cell));

    for (idx, inst) in binding.instances().iter().enumerate() {
        let label = format!("fu{idx} {}", library.module(inst.module()).name());
        let _ = write!(s, "{label:<name_w$} |");
        let mut row = vec![None; latency as usize];
        for &op in inst.ops() {
            for c in schedule.start(op)..schedule.finish(op, timing) {
                row[c as usize] = Some(op);
            }
        }
        for slot in row {
            match slot {
                Some(op) => {
                    let _ = write!(s, "{:>cell$}", op.to_string());
                }
                None => {
                    let _ = write!(s, "{:>cell$}", ".");
                }
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::CostWeights;
    use crate::partition::bind_schedule;
    use pchls_cdfg::benchmarks::hal;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::asap;

    fn setup() -> (Cdfg, ModuleLibrary, Binding, Schedule, TimingMap) {
        let g = hal();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        (g, lib, b, s, t)
    }

    #[test]
    fn one_row_per_instance() {
        let (g, lib, b, s, t) = setup();
        let chart = gantt(&g, &lib, &b, &s, &t);
        // Header + separator + one line per instance.
        assert_eq!(chart.lines().count(), 2 + b.instances().len());
    }

    #[test]
    fn every_op_appears_in_the_chart() {
        let (g, lib, b, s, t) = setup();
        let chart = gantt(&g, &lib, &b, &s, &t);
        for id in g.node_ids() {
            assert!(chart.contains(&id.to_string()), "{id} missing");
        }
    }

    #[test]
    fn multi_cycle_ops_occupy_their_whole_interval() {
        let (g, lib, b, s, t) = setup();
        let chart = gantt(&g, &lib, &b, &s, &t);
        // A 2-cycle multiplication shows its id twice in one row.
        let mul = g
            .nodes()
            .iter()
            .find(|n| n.kind() == pchls_cdfg::OpKind::Mul)
            .unwrap()
            .id();
        let row = chart
            .lines()
            .find(|l| l.contains(&mul.to_string()))
            .expect("mul row exists");
        assert!(row.matches(&mul.to_string()).count() >= 2);
    }
}
