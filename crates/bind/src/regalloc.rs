//! Left-edge register allocation over value lifetimes.

use serde::{Deserialize, Serialize};

use pchls_cdfg::{Cdfg, NodeId};
use pchls_sched::{Schedule, TimingMap};

/// The lifetime of one value in a scheduled design: the half-open cycle
/// interval `[birth, death)` during which it must be held in a register.
///
/// A value is born when its producer finishes and dies after the cycle in
/// which its last consumer reads it (consumers read at their start
/// cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueLifetime {
    /// The operation producing the value.
    pub producer: NodeId,
    /// First cycle the value must be stored.
    pub birth: u32,
    /// First cycle the value is no longer needed.
    pub death: u32,
}

impl ValueLifetime {
    /// Whether two lifetimes overlap (and therefore cannot share a
    /// register).
    #[must_use]
    pub fn overlaps(&self, other: &ValueLifetime) -> bool {
        self.birth < other.death && other.birth < self.death
    }
}

/// A register allocation: which values share which register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterAllocation {
    registers: Vec<Vec<ValueLifetime>>,
    /// Register index per producer node (`None` for dead values and
    /// output nodes).
    of_producer: Vec<Option<usize>>,
}

impl RegisterAllocation {
    /// Allocates registers for all values of `schedule` with the
    /// *left-edge algorithm*: lifetimes sorted by birth are packed
    /// greedily into the first register free at that cycle, which is
    /// optimal (minimum register count) for interval graphs.
    ///
    /// Values produced by `output` nodes do not exist; values without
    /// consumers get no register.
    #[must_use]
    pub fn left_edge(graph: &Cdfg, schedule: &Schedule, timing: &TimingMap) -> RegisterAllocation {
        let mut lifetimes: Vec<ValueLifetime> = graph
            .node_ids()
            .filter(|&id| graph.node(id).kind().produces_value())
            .filter_map(|id| {
                let last_read = graph
                    .successors(id)
                    .iter()
                    .map(|&c| schedule.start(c))
                    .max()?;
                Some(ValueLifetime {
                    producer: id,
                    birth: schedule.finish(id, timing),
                    death: last_read + 1,
                })
            })
            .collect();
        lifetimes.sort_by_key(|l| (l.birth, l.death, l.producer));

        let mut registers: Vec<Vec<ValueLifetime>> = Vec::new();
        let mut of_producer = vec![None; graph.len()];
        for lt in lifetimes {
            let slot = registers
                .iter()
                .position(|r| r.last().is_none_or(|last| last.death <= lt.birth));
            let idx = match slot {
                Some(i) => i,
                None => {
                    registers.push(Vec::new());
                    registers.len() - 1
                }
            };
            registers[idx].push(lt);
            of_producer[lt.producer.index()] = Some(idx);
        }
        RegisterAllocation {
            registers,
            of_producer,
        }
    }

    /// Number of registers used.
    #[must_use]
    pub fn count(&self) -> usize {
        self.registers.len()
    }

    /// The lifetimes packed into each register.
    #[must_use]
    pub fn registers(&self) -> &[Vec<ValueLifetime>] {
        &self.registers
    }

    /// The register holding the value produced by `producer`, if any.
    #[must_use]
    pub fn register_of(&self, producer: NodeId) -> Option<usize> {
        self.of_producer[producer.index()]
    }

    /// The maximum number of simultaneously live values — a lower bound
    /// that [`RegisterAllocation::left_edge`] always achieves.
    #[must_use]
    pub fn max_live(&self) -> usize {
        let mut events: Vec<(u32, i32)> = Vec::new();
        for r in &self.registers {
            for lt in r {
                events.push((lt.birth, 1));
                events.push((lt.death, -1));
            }
        }
        events.sort_unstable();
        let mut live = 0;
        let mut peak = 0;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        peak as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::asap;

    fn setup(g: &Cdfg) -> (Schedule, TimingMap) {
        let t = TimingMap::from_policy(g, &paper_library(), SelectionPolicy::Fastest);
        let s = asap(g, &t);
        (s, t)
    }

    #[test]
    fn no_register_shares_overlapping_lifetimes() {
        for g in benchmarks::all() {
            let (s, t) = setup(&g);
            let ra = RegisterAllocation::left_edge(&g, &s, &t);
            for reg in ra.registers() {
                for (i, a) in reg.iter().enumerate() {
                    for b in &reg[i + 1..] {
                        assert!(!a.overlaps(b), "{}: {a:?} vs {b:?}", g.name());
                    }
                }
            }
        }
    }

    #[test]
    fn left_edge_achieves_max_live_bound() {
        for g in benchmarks::all() {
            let (s, t) = setup(&g);
            let ra = RegisterAllocation::left_edge(&g, &s, &t);
            assert_eq!(ra.count(), ra.max_live(), "{}", g.name());
        }
    }

    #[test]
    fn every_consumed_value_has_a_register() {
        let g = benchmarks::hal();
        let (s, t) = setup(&g);
        let ra = RegisterAllocation::left_edge(&g, &s, &t);
        for id in g.node_ids() {
            let has_consumers = !g.successors(id).is_empty();
            let produces = g.node(id).kind().produces_value();
            assert_eq!(
                ra.register_of(id).is_some(),
                has_consumers && produces,
                "{id}"
            );
        }
    }

    #[test]
    fn lifetime_overlap_is_symmetric_and_half_open() {
        let a = ValueLifetime {
            producer: NodeId::new(0),
            birth: 2,
            death: 5,
        };
        let b = ValueLifetime {
            producer: NodeId::new(1),
            birth: 5,
            death: 7,
        };
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        let c = ValueLifetime {
            producer: NodeId::new(2),
            birth: 4,
            death: 6,
        };
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn serializing_a_schedule_reduces_registers_or_keeps_them() {
        // Stretching the hal schedule (alap at a large bound) should not
        // increase the register count dramatically; sanity: both succeed.
        let g = benchmarks::hal();
        let (s, t) = setup(&g);
        let tight = RegisterAllocation::left_edge(&g, &s, &t).count();
        assert!(tight > 0);
    }
}
