//! Binding error type.

use std::fmt;

use pchls_cdfg::NodeId;

use crate::binding::InstanceId;

/// Errors raised by binding construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindError {
    /// An operation is not bound to any instance.
    Unbound(NodeId),
    /// An instance's module cannot execute an operation bound to it.
    KindMismatch {
        /// The offending operation.
        node: NodeId,
        /// The instance it is bound to.
        instance: InstanceId,
    },
    /// Two operations on one instance execute in overlapping cycles.
    Overlap {
        /// First operation.
        a: NodeId,
        /// Second operation.
        b: NodeId,
        /// The shared instance.
        instance: InstanceId,
    },
    /// An operation's scheduled timing disagrees with its instance's
    /// module (delay or power mismatch).
    TimingMismatch {
        /// The offending operation.
        node: NodeId,
        /// The instance it is bound to.
        instance: InstanceId,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::Unbound(n) => write!(f, "operation {n} is not bound to any instance"),
            BindError::KindMismatch { node, instance } => {
                write!(f, "instance {instance} cannot execute operation {node}")
            }
            BindError::Overlap { a, b, instance } => {
                write!(f, "operations {a} and {b} overlap on instance {instance}")
            }
            BindError::TimingMismatch { node, instance } => write!(
                f,
                "operation {node} is scheduled with timing different from instance {instance}"
            ),
        }
    }
}

impl std::error::Error for BindError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BindError>();
    }

    #[test]
    fn display_names_participants() {
        let e = BindError::Overlap {
            a: NodeId::new(1),
            b: NodeId::new(2),
            instance: InstanceId::new(0),
        };
        let s = e.to_string();
        assert!(s.contains("n1") && s.contains("n2") && s.contains("fu0"));
    }
}
