//! Functional-unit instances and the operation → instance map.

use std::fmt;

use serde::{Deserialize, Serialize};

use pchls_cdfg::{Cdfg, NodeId};
use pchls_fulib::{ModuleId, ModuleLibrary};
use pchls_sched::{Schedule, TimingMap};

use crate::error::BindError;

/// Identifier of one functional-unit instance within a [`Binding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(usize);

impl InstanceId {
    /// Creates an instance id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> InstanceId {
        InstanceId(index)
    }

    /// Raw index into the binding's instance list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fu{}", self.0)
    }
}

/// One allocated functional unit: a module type plus the operations that
/// share it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuInstance {
    module: ModuleId,
    ops: Vec<NodeId>,
}

impl FuInstance {
    /// The module type of this instance.
    #[must_use]
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Operations bound to this instance, in binding order.
    #[must_use]
    pub fn ops(&self) -> &[NodeId] {
        &self.ops
    }
}

/// A (possibly partial) binding of operations to functional-unit
/// instances.
///
/// # Example
///
/// ```
/// use pchls_cdfg::benchmarks::hal;
/// use pchls_fulib::paper_library;
/// use pchls_bind::Binding;
///
/// let g = hal();
/// let lib = paper_library();
/// let mut b = Binding::new(g.len());
/// let adder = b.new_instance(lib.by_name("add").unwrap());
/// let an_add = g.nodes().iter()
///     .find(|n| n.kind() == pchls_cdfg::OpKind::Add).unwrap().id();
/// b.bind(an_add, adder);
/// assert_eq!(b.instance_of(an_add), Some(adder));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    instances: Vec<FuInstance>,
    op_to_instance: Vec<Option<InstanceId>>,
}

impl Binding {
    /// An empty binding over a graph of `len` operations.
    #[must_use]
    pub fn new(len: usize) -> Binding {
        Binding {
            instances: Vec::new(),
            op_to_instance: vec![None; len],
        }
    }

    /// Allocates a fresh instance of `module` and returns its id.
    pub fn new_instance(&mut self, module: ModuleId) -> InstanceId {
        let id = InstanceId(self.instances.len());
        self.instances.push(FuInstance {
            module,
            ops: Vec::new(),
        });
        id
    }

    /// Binds `op` to `instance`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is already bound or `instance` does not exist —
    /// both indicate a synthesis-loop bug that must not be masked.
    pub fn bind(&mut self, op: NodeId, instance: InstanceId) {
        assert!(
            self.op_to_instance[op.index()].is_none(),
            "{op} is already bound"
        );
        self.instances[instance.0].ops.push(op);
        self.op_to_instance[op.index()] = Some(instance);
    }

    /// Removes the binding of `op`, if any. The instance survives even if
    /// it becomes empty (callers may rebind onto it).
    pub fn unbind(&mut self, op: NodeId) {
        if let Some(inst) = self.op_to_instance[op.index()].take() {
            self.instances[inst.0].ops.retain(|&o| o != op);
        }
    }

    /// Drops empty instances, renumbering the survivors.
    pub fn prune_empty(&mut self) {
        let mut remap: Vec<Option<InstanceId>> = Vec::with_capacity(self.instances.len());
        let mut kept = Vec::new();
        for inst in self.instances.drain(..) {
            if inst.ops.is_empty() {
                remap.push(None);
            } else {
                remap.push(Some(InstanceId(kept.len())));
                kept.push(inst);
            }
        }
        self.instances = kept;
        for slot in &mut self.op_to_instance {
            if let Some(old) = *slot {
                *slot = remap[old.0];
            }
        }
    }

    /// The instance `op` is bound to, if any.
    #[must_use]
    pub fn instance_of(&self, op: NodeId) -> Option<InstanceId> {
        self.op_to_instance[op.index()]
    }

    /// All instances in allocation order.
    #[must_use]
    pub fn instances(&self) -> &[FuInstance] {
        &self.instances
    }

    /// The instance with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this binding.
    #[must_use]
    pub fn instance(&self, id: InstanceId) -> &FuInstance {
        &self.instances[id.0]
    }

    /// Ids of all instances.
    pub fn instance_ids(&self) -> impl Iterator<Item = InstanceId> + '_ {
        (0..self.instances.len()).map(InstanceId)
    }

    /// Number of operations not yet bound.
    #[must_use]
    pub fn unbound_count(&self) -> usize {
        self.op_to_instance.iter().filter(|o| o.is_none()).count()
    }

    /// Whether every operation is bound.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.unbound_count() == 0
    }

    /// Total functional-unit area of the allocated instances.
    #[must_use]
    pub fn area(&self, library: &ModuleLibrary) -> u64 {
        self.instances
            .iter()
            .map(|i| u64::from(library.module(i.module).area()))
            .sum()
    }

    /// Validates a complete binding against a schedule:
    ///
    /// 1. every operation is bound,
    /// 2. each instance's module implements all its operations' kinds,
    /// 3. operations sharing an instance never overlap in time,
    /// 4. each operation's [`TimingMap`] entry matches its instance's
    ///    module latency and power.
    ///
    /// # Errors
    ///
    /// The first violated rule is reported as the corresponding
    /// [`BindError`].
    pub fn validate(
        &self,
        graph: &Cdfg,
        library: &ModuleLibrary,
        schedule: &Schedule,
        timing: &TimingMap,
    ) -> Result<(), BindError> {
        for id in graph.node_ids() {
            if self.instance_of(id).is_none() {
                return Err(BindError::Unbound(id));
            }
        }
        for (idx, inst) in self.instances.iter().enumerate() {
            let iid = InstanceId(idx);
            let module = library.module(inst.module);
            for &op in &inst.ops {
                if !module.implements(graph.node(op).kind()) {
                    return Err(BindError::KindMismatch {
                        node: op,
                        instance: iid,
                    });
                }
                let t = timing.of(op);
                if t.delay != module.latency() || (t.power - module.power()).abs() > 1e-9 {
                    return Err(BindError::TimingMismatch {
                        node: op,
                        instance: iid,
                    });
                }
            }
            let mut spans: Vec<(u32, u32, NodeId)> = inst
                .ops
                .iter()
                .map(|&op| (schedule.start(op), schedule.finish(op, timing), op))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(BindError::Overlap {
                        a: w[0].2,
                        b: w[1].2,
                        instance: iid,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks::hal;
    use pchls_cdfg::OpKind;
    use pchls_fulib::paper_library;
    use pchls_sched::OpTiming;

    fn setup() -> (Cdfg, ModuleLibrary) {
        (hal(), paper_library())
    }

    #[test]
    fn bind_unbind_round_trip() {
        let (g, lib) = setup();
        let mut b = Binding::new(g.len());
        let inst = b.new_instance(lib.by_name("add").unwrap());
        let op = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Add)
            .unwrap()
            .id();
        b.bind(op, inst);
        assert_eq!(b.instance_of(op), Some(inst));
        assert_eq!(b.instance(inst).ops(), &[op]);
        b.unbind(op);
        assert_eq!(b.instance_of(op), None);
        assert!(b.instance(inst).ops().is_empty());
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (g, lib) = setup();
        let mut b = Binding::new(g.len());
        let inst = b.new_instance(lib.by_name("add").unwrap());
        let op = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Add)
            .unwrap()
            .id();
        b.bind(op, inst);
        b.bind(op, inst);
    }

    #[test]
    fn prune_renumbers_instances() {
        let (g, lib) = setup();
        let mut b = Binding::new(g.len());
        let add = lib.by_name("add").unwrap();
        let empty = b.new_instance(add);
        let used = b.new_instance(add);
        let op = g
            .nodes()
            .iter()
            .find(|n| n.kind() == OpKind::Add)
            .unwrap()
            .id();
        b.bind(op, used);
        let _ = empty;
        b.prune_empty();
        assert_eq!(b.instances().len(), 1);
        assert_eq!(b.instance_of(op), Some(InstanceId::new(0)));
    }

    #[test]
    fn area_sums_instance_modules() {
        let (g, lib) = setup();
        let mut b = Binding::new(g.len());
        b.new_instance(lib.by_name("mult_par").unwrap());
        b.new_instance(lib.by_name("add").unwrap());
        assert_eq!(b.area(&lib), 339 + 87);
    }

    #[test]
    fn validate_catches_overlap() {
        let (g, lib) = setup();
        let mut b = Binding::new(g.len());
        // Bind every op to its own fastest instance, except two adds that
        // share one adder while overlapping in time.
        let mut timing_entries = Vec::new();
        let mut starts = vec![0u32; g.len()];
        let adds: Vec<NodeId> = g
            .nodes()
            .iter()
            .filter(|n| n.kind() == OpKind::Add)
            .map(|n| n.id())
            .collect();
        let shared = b.new_instance(lib.by_name("add").unwrap());
        for n in g.nodes() {
            let mid = lib
                .select(n.kind(), pchls_fulib::SelectionPolicy::Fastest)
                .unwrap();
            let m = lib.module(mid);
            timing_entries.push(OpTiming {
                delay: m.latency(),
                power: m.power(),
            });
            if adds.contains(&n.id()) {
                b.bind(n.id(), shared);
            } else {
                let inst = b.new_instance(mid);
                b.bind(n.id(), inst);
            }
            starts[n.id().index()] = 5; // everyone at cycle 5: adds collide
        }
        let timing = TimingMap::from_entries(timing_entries);
        let schedule = Schedule::new(starts);
        let err = b.validate(&g, &lib, &schedule, &timing).unwrap_err();
        assert!(matches!(err, BindError::Overlap { .. }));
    }

    #[test]
    fn validate_catches_unbound() {
        let (g, lib) = setup();
        let b = Binding::new(g.len());
        let timing = TimingMap::from_policy(&g, &lib, pchls_fulib::SelectionPolicy::Fastest);
        let schedule = Schedule::new(vec![0; g.len()]);
        assert!(matches!(
            b.validate(&g, &lib, &schedule, &timing),
            Err(BindError::Unbound(_))
        ));
    }
}
