//! Functional-unit utilization reporting.

use serde::{Deserialize, Serialize};

use pchls_sched::{Schedule, TimingMap};

use crate::binding::{Binding, InstanceId};

/// How busy each functional-unit instance is over the schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    busy_cycles: Vec<u32>,
    latency: u32,
}

impl Utilization {
    /// Computes per-instance busy cycles for `binding` under `schedule`.
    #[must_use]
    pub fn of(binding: &Binding, schedule: &Schedule, timing: &TimingMap) -> Utilization {
        let busy_cycles = binding
            .instances()
            .iter()
            .map(|inst| inst.ops().iter().map(|&op| timing.delay(op)).sum())
            .collect();
        Utilization {
            busy_cycles,
            latency: schedule.latency(timing),
        }
    }

    /// Busy cycles of one instance.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn busy_cycles(&self, id: InstanceId) -> u32 {
        self.busy_cycles[id.index()]
    }

    /// Busy fraction of one instance in `[0, 1]` (0 for an empty
    /// schedule).
    #[must_use]
    pub fn fraction(&self, id: InstanceId) -> f64 {
        if self.latency == 0 {
            0.0
        } else {
            f64::from(self.busy_cycles(id)) / f64::from(self.latency)
        }
    }

    /// Mean busy fraction across all instances (0 when there are none).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.busy_cycles.is_empty() || self.latency == 0 {
            return 0.0;
        }
        let total: u32 = self.busy_cycles.iter().sum();
        f64::from(total) / (f64::from(self.latency) * self.busy_cycles.len() as f64)
    }

    /// Number of instances covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.busy_cycles.len()
    }

    /// Whether no instances are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.busy_cycles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::CostWeights;
    use crate::partition::bind_schedule;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::asap;

    #[test]
    fn fractions_are_bounded_and_consistent() {
        let lib = paper_library();
        let g = benchmarks::elliptic();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let u = Utilization::of(&b, &s, &t);
        assert_eq!(u.len(), b.instances().len());
        let mut total = 0.0;
        for id in b.instance_ids() {
            let f = u.fraction(id);
            assert!((0.0..=1.0).contains(&f), "fraction {f}");
            total += f;
        }
        assert!((u.average() - total / u.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn busy_cycles_sum_op_delays() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let u = Utilization::of(&b, &s, &t);
        let total_busy: u32 = b.instance_ids().map(|id| u.busy_cycles(id)).sum();
        let total_delay: u32 = g.node_ids().map(|id| t.delay(id)).sum();
        assert_eq!(total_busy, total_delay);
    }

    #[test]
    fn sharing_raises_utilization() {
        // A dedicated-unit binding has strictly lower average utilization
        // than a shared one on the same schedule.
        let lib = paper_library();
        let g = benchmarks::elliptic();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let shared = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let mut dedicated = Binding::new(g.len());
        for n in g.nodes() {
            let m = lib.select(n.kind(), SelectionPolicy::Fastest).unwrap();
            let inst = dedicated.new_instance(m);
            dedicated.bind(n.id(), inst);
        }
        let u_shared = Utilization::of(&shared, &s, &t);
        let u_dedicated = Utilization::of(&dedicated, &s, &t);
        assert!(u_shared.average() > u_dedicated.average());
    }
}
