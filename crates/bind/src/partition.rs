//! Greedy partial clique partitioning of the compatibility graph.

use pchls_cdfg::{Cdfg, NodeId, Reachability};
use pchls_fulib::ModuleLibrary;
use pchls_sched::{Schedule, TimingMap};

use crate::binding::Binding;
use crate::compat::{cheapest_common_module, CompatibilityGraph, CostWeights};
use crate::error::BindError;

/// Partitions the operations into cliques of the compatibility graph and
/// returns the resulting binding: one functional-unit instance per
/// clique, typed with the cheapest module that covers the whole clique.
///
/// The greedy rule follows Jou et al.: repeatedly merge the pair of
/// cliques with the largest gain (cheapest-common-module area saved plus
/// weighted shared interconnect), until no merge is possible. Singleton
/// cliques remain for operations that cannot share.
///
/// This is the *fixed-schedule* partitioner used by the baselines; the
/// full synthesis algorithm in `pchls-core` interleaves partitioning with
/// power-aware rescheduling instead.
///
/// # Panics
///
/// Panics if `compat` does not cover `graph`.
#[must_use]
pub fn partition_cliques(
    graph: &Cdfg,
    library: &ModuleLibrary,
    compat: &CompatibilityGraph,
    timing: &TimingMap,
    weights: &CostWeights,
) -> Binding {
    assert_eq!(compat.len(), graph.len(), "compatibility graph mismatch");
    let mut cliques: Vec<Vec<NodeId>> = graph.node_ids().map(|id| vec![id]).collect();

    loop {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..cliques.len() {
            for j in (i + 1)..cliques.len() {
                let Some(gain) = merge_gain(
                    graph,
                    library,
                    compat,
                    timing,
                    weights,
                    &cliques[i],
                    &cliques[j],
                ) else {
                    continue;
                };
                if gain <= 0.0 {
                    continue; // partial partitioning: never merge at a loss
                }
                if best.is_none_or(|(bg, _, _)| gain > bg + 1e-12) {
                    best = Some((gain, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        let merged = cliques.swap_remove(j);
        cliques[i].extend(merged);
        // swap_remove never disturbs index i because i < j.
    }

    let mut binding = Binding::new(graph.len());
    for clique in &cliques {
        let module = cheapest_common_module(graph, library, timing, clique)
            .expect("every clique admits a module by construction");
        let inst = binding.new_instance(module);
        for &op in clique {
            binding.bind(op, inst);
        }
    }
    binding
}

/// Gain of merging cliques `a` and `b`, or `None` if they cannot merge.
///
/// Merging is allowed when every cross pair is compatible and one module
/// covers the union. The gain is the area no longer duplicated:
/// `area(module(a)) + area(module(b)) − area(module(a ∪ b))`, plus the
/// weighted pairwise interconnect sharing across the cut.
fn merge_gain(
    graph: &Cdfg,
    library: &ModuleLibrary,
    compat: &CompatibilityGraph,
    timing: &TimingMap,
    weights: &CostWeights,
    a: &[NodeId],
    b: &[NodeId],
) -> Option<f64> {
    for &x in a {
        for &y in b {
            if !compat.compatible(x, y) {
                return None;
            }
        }
    }
    let union: Vec<NodeId> = a.iter().chain(b).copied().collect();
    let m_union = cheapest_common_module(graph, library, timing, &union)?;
    let m_a = cheapest_common_module(graph, library, timing, a).expect("clique invariant");
    let m_b = cheapest_common_module(graph, library, timing, b).expect("clique invariant");
    let area_gain = f64::from(library.module(m_a).area()) + f64::from(library.module(m_b).area())
        - f64::from(library.module(m_union).area());
    let interconnect: f64 = a
        .iter()
        .flat_map(|&x| b.iter().map(move |&y| (x, y)))
        .map(|(x, y)| {
            compat.weight(x, y)
                - weights.area
                    * f64::from(
                        crate::compat::shared_module_area(graph, library, timing, x, y)
                            .unwrap_or(0),
                    )
        })
        .sum();
    Some(weights.area * area_gain + interconnect)
}

/// Binds a *fixed* schedule: builds the interval compatibility graph
/// (early = late = `schedule`) and clique-partitions it.
///
/// # Errors
///
/// Returns the first [`BindError`] if the produced binding fails
/// validation — which would indicate an internal invariant violation and
/// is asserted against in tests.
pub fn bind_schedule(
    graph: &Cdfg,
    library: &ModuleLibrary,
    schedule: &Schedule,
    timing: &TimingMap,
    weights: &CostWeights,
) -> Result<Binding, BindError> {
    let reach = Reachability::new(graph);
    let compat =
        CompatibilityGraph::build(graph, library, schedule, schedule, timing, &reach, weights);
    let binding = partition_cliques(graph, library, &compat, timing, weights);
    binding.validate(graph, library, schedule, timing)?;
    Ok(binding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_cdfg::OpKind;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::asap;

    #[test]
    fn bound_designs_validate_on_all_benchmarks() {
        let lib = paper_library();
        for g in benchmarks::all() {
            for policy in [SelectionPolicy::Fastest, SelectionPolicy::MinArea] {
                let t = TimingMap::from_policy(&g, &lib, policy);
                let s = asap(&g, &t);
                let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
                assert!(b.is_complete());
            }
        }
    }

    #[test]
    fn sharing_beats_one_unit_per_op() {
        let lib = paper_library();
        let g = benchmarks::elliptic();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let no_sharing: u64 = g
            .nodes()
            .iter()
            .map(|n| {
                u64::from(
                    lib.module(lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
                        .area(),
                )
            })
            .sum();
        assert!(
            b.area(&lib) < no_sharing,
            "sharing {} !< dedicated {no_sharing}",
            b.area(&lib)
        );
    }

    #[test]
    fn serialized_chain_folds_to_one_adder() {
        // add -> add -> add chain: all dependence-ordered, one unit.
        let mut builder = pchls_cdfg::CdfgBuilder::new("chain");
        let x = builder.input("x");
        let y = builder.input("y");
        let a1 = builder.add(x, y);
        let a2 = builder.add(a1, y);
        let a3 = builder.add(a2, y);
        builder.output("o", a3);
        let g = builder.finish().unwrap();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let adders = b
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(OpKind::Add))
            .count();
        assert_eq!(adders, 1);
        assert_eq!(b.instance_of(a1), b.instance_of(a2));
        assert_eq!(b.instance_of(a2), b.instance_of(a3));
    }

    #[test]
    fn hal_asap_needs_four_parallel_multipliers() {
        // Under the fastest-module ASAP schedule the four first-level
        // multiplications run concurrently, so sharing cannot go below 4.
        let lib = paper_library();
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let mults = b
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(OpKind::Mul))
            .count();
        assert_eq!(mults, 4);
    }

    #[test]
    fn io_modules_are_shared_too() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        // Serialize the inputs over 6 cycles so one input unit suffices.
        let mut starts = asap(&g, &t).starts().to_vec();
        for (cycle, n) in g.inputs().enumerate() {
            starts[n.id().index()] = cycle as u32;
        }
        // Shift everything else by 6 to stay valid.
        for id in g.node_ids() {
            if g.node(id).kind() != OpKind::Input {
                starts[id.index()] += 6;
            }
        }
        let s = Schedule::new(starts);
        s.validate(&g, &t, None, None).unwrap();
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let inputs = b
            .instances()
            .iter()
            .filter(|i| lib.module(i.module()).implements(OpKind::Input))
            .count();
        assert_eq!(inputs, 1);
    }
}
