//! The power-aware time-extended compatibility graph (`V1`).

use pchls_cdfg::{Cdfg, NodeId, Reachability};
use pchls_fulib::{ModuleId, ModuleLibrary};
use pchls_sched::{Schedule, TimingMap};

/// Weights combining area savings and interconnect savings into one merge
/// gain, mirroring the "minimum area … using least interconnect"
/// objective of the paper (and of Jou et al.'s partitioning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the functional-unit area saved by a merge.
    pub area: f64,
    /// Weight of each shared operand source / result consumer (a proxy
    /// for multiplexer inputs saved).
    pub interconnect: f64,
    /// Penalty per cycle an operation is displaced past its earliest
    /// feasible start by a sharing decision. Serializing two
    /// dependence-ordered operations is free; serializing two concurrent
    /// siblings consumes schedule slack that later (often more valuable)
    /// merges may need. This term makes the greedy prefer free
    /// serializations among otherwise equal-area merges.
    pub displacement: f64,
}

impl Default for CostWeights {
    /// Area dominates; interconnect breaks ties (one shared connection is
    /// worth a tenth of an area unit). The displacement penalty defaults
    /// to **off**: measured across the Figure 2 curves it helps some
    /// points and hurts others (greedy trajectories are highly sensitive
    /// to tie-breaks — see the ablation section of `EXPERIMENTS.md`), so
    /// it is left as an experimentation knob.
    fn default() -> Self {
        CostWeights {
            area: 1.0,
            interconnect: 0.1,
            displacement: 0.0,
        }
    }
}

/// The compatibility graph over the operations of one CDFG.
///
/// Two operations are *compatible* (may share a functional unit) when
///
/// 1. some library module implements both kinds with exactly the delay
///    and power each operation is scheduled with, **and**
/// 2. their executions can be serialized: they are dependence-ordered, or
///    one's earliest possible finish (from `pasap`) is no later than the
///    other's latest possible start (from `palap`).
///
/// Passing the same schedule as both `early` and `late` yields the
/// classical fixed-schedule compatibility (disjoint execution intervals).
#[derive(Debug, Clone)]
pub struct CompatibilityGraph {
    n: usize,
    words: usize,
    bits: Vec<u64>,
    weights: Vec<f64>,
}

impl CompatibilityGraph {
    /// Builds the compatibility graph. See the type-level documentation
    /// for the compatibility rule; edge weights are
    /// `weights.area × (area of the cheapest module covering both kinds)`
    /// `+ weights.interconnect × (shared sources + shared sinks)`.
    ///
    /// # Panics
    ///
    /// Panics if the schedules or timing do not cover the graph.
    #[must_use]
    pub fn build(
        graph: &Cdfg,
        library: &ModuleLibrary,
        early: &Schedule,
        late: &Schedule,
        timing: &TimingMap,
        reach: &Reachability,
        weights: &CostWeights,
    ) -> CompatibilityGraph {
        let n = graph.len();
        assert_eq!(early.len(), n, "early schedule covers the graph");
        assert_eq!(late.len(), n, "late schedule covers the graph");
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        let mut wts = vec![0.0f64; n * n];

        for i in 0..n {
            let a = NodeId::new(i as u32);
            for j in (i + 1)..n {
                let b = NodeId::new(j as u32);
                let Some(gain_area) = shared_module_area(graph, library, timing, a, b) else {
                    continue;
                };
                let serializable = reach.ordered(a, b)
                    || early.finish(a, timing) <= late.start(b)
                    || early.finish(b, timing) <= late.start(a);
                if !serializable {
                    continue;
                }
                bits[i * words + j / 64] |= 1 << (j % 64);
                bits[j * words + i / 64] |= 1 << (i % 64);
                let shared = shared_connections(graph, a, b);
                let w = weights.area * f64::from(gain_area) + weights.interconnect * shared as f64;
                wts[i * n + j] = w;
                wts[j * n + i] = w;
            }
        }
        CompatibilityGraph {
            n,
            words,
            bits,
            weights: wts,
        }
    }

    /// Number of operations covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph covers no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether `a` and `b` may share a functional unit.
    #[must_use]
    pub fn compatible(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        let (i, j) = (a.index(), b.index());
        self.bits[i * self.words + j / 64] & (1 << (j % 64)) != 0
    }

    /// Merge gain of `a` and `b` (0 if incompatible).
    #[must_use]
    pub fn weight(&self, a: NodeId, b: NodeId) -> f64 {
        self.weights[a.index() * self.n + b.index()]
    }

    /// Number of operations compatible with `a`.
    #[must_use]
    pub fn degree(&self, a: NodeId) -> usize {
        let i = a.index();
        self.bits[i * self.words..(i + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// All compatible pairs `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |i| {
            let a = NodeId::new(i as u32);
            ((i + 1)..self.n).filter_map(move |j| {
                let b = NodeId::new(j as u32);
                self.compatible(a, b).then_some((a, b))
            })
        })
    }

    /// Whether every pair in `ops` is mutually compatible.
    #[must_use]
    pub fn is_clique(&self, ops: &[NodeId]) -> bool {
        ops.iter()
            .enumerate()
            .all(|(i, &a)| ops[i + 1..].iter().all(|&b| self.compatible(a, b)))
    }
}

/// Area of the cheapest module that implements both operations' kinds
/// *with their scheduled timing*, or `None` if no such module exists.
pub(crate) fn shared_module_area(
    graph: &Cdfg,
    library: &ModuleLibrary,
    timing: &TimingMap,
    a: NodeId,
    b: NodeId,
) -> Option<u32> {
    cheapest_common_module(graph, library, timing, &[a, b]).map(|m| library.module(m).area())
}

/// The cheapest module implementing every op in `ops` with each op's
/// scheduled delay and power.
pub(crate) fn cheapest_common_module(
    graph: &Cdfg,
    library: &ModuleLibrary,
    timing: &TimingMap,
    ops: &[NodeId],
) -> Option<ModuleId> {
    library
        .ids()
        .filter(|&mid| {
            let m = library.module(mid);
            ops.iter().all(|&op| {
                let t = timing.of(op);
                m.implements(graph.node(op).kind())
                    && m.latency() == t.delay
                    && (m.power() - t.power).abs() <= 1e-9
            })
        })
        .min_by_key(|&mid| library.module(mid).area())
}

/// Shared operand producers plus shared result consumers — each saves a
/// multiplexer input when the two operations share a unit.
fn shared_connections(graph: &Cdfg, a: NodeId, b: NodeId) -> usize {
    let count_common = |xs: &[NodeId], ys: &[NodeId]| xs.iter().filter(|x| ys.contains(x)).count();
    count_common(graph.operands(a), graph.operands(b))
        + count_common(graph.successors(a), graph.successors(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks::hal;
    use pchls_cdfg::{CdfgBuilder, OpKind};
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::{alap, asap};

    fn fixed_compat(g: &Cdfg) -> (CompatibilityGraph, TimingMap) {
        let lib = paper_library();
        let t = TimingMap::from_policy(g, &lib, SelectionPolicy::Fastest);
        let s = asap(g, &t);
        let r = Reachability::new(g);
        let c = CompatibilityGraph::build(g, &lib, &s, &s, &t, &r, &CostWeights::default());
        (c, t)
    }

    #[test]
    fn dependence_ordered_same_kind_ops_are_compatible() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(a1, y);
        b.output("o", a2);
        let g = b.finish().unwrap();
        let (c, _) = fixed_compat(&g);
        assert!(c.compatible(a1, a2));
        assert!(c.weight(a1, a2) > 0.0);
    }

    #[test]
    fn concurrent_ops_with_fixed_schedule_are_incompatible() {
        // Two independent adds, both scheduled at cycle 1 by asap.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(y, x);
        b.output("o1", a1);
        b.output("o2", a2);
        let g = b.finish().unwrap();
        let (c, _) = fixed_compat(&g);
        assert!(!c.compatible(a1, a2));
    }

    #[test]
    fn concurrent_ops_with_slack_windows_become_compatible() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.add(x, y);
        let a2 = b.add(y, x);
        b.output("o1", a1);
        b.output("o2", a2);
        let g = b.finish().unwrap();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let early = asap(&g, &t);
        let late = alap(&g, &t, 6).unwrap(); // slack lets one slide past the other
        let r = Reachability::new(&g);
        let c = CompatibilityGraph::build(&g, &lib, &early, &late, &t, &r, &CostWeights::default());
        assert!(c.compatible(a1, a2));
    }

    #[test]
    fn different_uncombinable_kinds_are_incompatible() {
        // No module implements both * and + in the paper library.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let m = b.mul(a, y);
        b.output("o", m);
        let g = b.finish().unwrap();
        let (c, _) = fixed_compat(&g);
        assert!(!c.compatible(a, m));
    }

    #[test]
    fn alu_makes_add_and_sub_compatible() {
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        let s = b.sub(a, y);
        b.output("o", s);
        let g = b.finish().unwrap();
        let (c, _) = fixed_compat(&g);
        assert!(c.compatible(a, s));
        // Gain reflects the ALU area (97), the cheapest {+,−} module.
        assert!((c.weight(a, s) - (97.0 + 0.1 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn serial_and_parallel_multiplications_cannot_share() {
        // Ops scheduled with different multiplier timings must not merge.
        let mut b = CdfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m1 = b.mul(x, y);
        let m2 = b.mul(m1, y);
        b.output("o", m2);
        let g = b.finish().unwrap();
        let lib = paper_library();
        let mut t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        // m2 uses the serial multiplier instead.
        t.set(
            m2,
            pchls_sched::OpTiming {
                delay: 4,
                power: 2.7,
            },
        );
        let s = asap(&g, &t);
        let r = Reachability::new(&g);
        let c = CompatibilityGraph::build(&g, &lib, &s, &s, &t, &r, &CostWeights::default());
        assert!(!c.compatible(m1, m2));
    }

    #[test]
    fn clique_check_on_hal_multiplications() {
        let g = hal();
        let (c, _) = fixed_compat(&g);
        // Chained multiplications form a clique; the four concurrent
        // first-level ones do not.
        let muls: Vec<NodeId> = g
            .nodes()
            .iter()
            .filter(|n| n.kind() == OpKind::Mul)
            .map(|n| n.id())
            .collect();
        assert!(!c.is_clique(&muls));
        // t2 -> t3 chain is a 2-clique.
        assert!(c.is_clique(&[muls[1], muls[2]]));
    }

    #[test]
    fn edges_and_degree_are_consistent() {
        let g = hal();
        let (c, _) = fixed_compat(&g);
        let edge_count = c.edges().count();
        let degree_sum: usize = g.node_ids().map(|id| c.degree(id)).sum();
        assert_eq!(degree_sum, 2 * edge_count);
        for (a, b) in c.edges() {
            assert!(c.compatible(a, b));
            assert!(c.compatible(b, a));
        }
    }
}
