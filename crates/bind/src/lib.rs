//! Allocation and binding for power-constrained high-level synthesis.
//!
//! This crate supplies the resource-sharing layer of the paper, extending
//! the clique-partitioning architecture synthesis of Jou, Kuang & Chen
//! (VLSI-TSA 1993):
//!
//! * [`Binding`] — functional-unit instances and the operation → instance
//!   map, with structural validation.
//! * [`CompatibilityGraph`] — the paper's power-aware *time-extended
//!   compatibility graph* `V1`: two operations are compatible when some
//!   library module implements both **and** their power-feasible execution
//!   windows (from `pasap`/`palap`) allow serialization on one unit.
//! * [`partition_cliques`] — greedy partial clique partitioning of a
//!   compatibility graph into functional-unit instances, minimizing area
//!   and interconnect (the baseline binder for fixed schedules).
//! * [`RegisterAllocation`] — left-edge register allocation over value
//!   lifetimes.
//! * [`InterconnectEstimate`] — multiplexer fan-in estimation for bound
//!   datapaths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod compat;
mod error;
mod gantt;
mod interconnect;
mod partition;
mod regalloc;
mod utilization;

pub use binding::{Binding, FuInstance, InstanceId};
pub use compat::{CompatibilityGraph, CostWeights};
pub use error::BindError;
pub use gantt::gantt;
pub use interconnect::InterconnectEstimate;
pub use partition::{bind_schedule, partition_cliques};
pub use regalloc::{RegisterAllocation, ValueLifetime};
pub use utilization::Utilization;
