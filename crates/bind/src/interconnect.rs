//! Multiplexer fan-in estimation for a bound datapath.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use pchls_cdfg::Cdfg;

use crate::binding::Binding;
use crate::regalloc::RegisterAllocation;

/// A steering-logic estimate for a bound datapath.
///
/// Every functional-unit input port needs a multiplexer selecting among
/// the registers that ever feed it; every register needs one selecting
/// among the instances that ever write it. The estimate counts *extra*
/// mux inputs (fan-in beyond one) — a 1-source connection is a wire and
/// costs nothing. This is the "least interconnect" tie-breaking cost of
/// the paper and of Jou et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterconnectEstimate {
    /// Extra multiplexer inputs in front of functional-unit operand ports.
    pub fu_mux_inputs: usize,
    /// Extra multiplexer inputs in front of register write ports.
    pub reg_mux_inputs: usize,
}

impl InterconnectEstimate {
    /// Computes the estimate for `binding` + `registers` over `graph`.
    ///
    /// Unbound operations contribute nothing (useful mid-synthesis).
    #[must_use]
    pub fn of(
        graph: &Cdfg,
        binding: &Binding,
        registers: &RegisterAllocation,
    ) -> InterconnectEstimate {
        // FU side: distinct register sources per (instance, port).
        let mut fu_mux_inputs = 0;
        for inst_id in binding.instance_ids() {
            let inst = binding.instance(inst_id);
            let max_ports = inst
                .ops()
                .iter()
                .map(|&op| graph.operands(op).len())
                .max()
                .unwrap_or(0);
            for port in 0..max_ports {
                let sources: BTreeSet<usize> = inst
                    .ops()
                    .iter()
                    .filter_map(|&op| graph.operands(op).get(port))
                    .filter_map(|&src| registers.register_of(src))
                    .collect();
                fu_mux_inputs += sources.len().saturating_sub(1);
            }
        }
        // Register side: distinct writer instances per register.
        let mut reg_mux_inputs = 0;
        for reg in registers.registers() {
            let writers: BTreeSet<usize> = reg
                .iter()
                .filter_map(|lt| binding.instance_of(lt.producer))
                .map(|i| i.index())
                .collect();
            reg_mux_inputs += writers.len().saturating_sub(1);
        }
        InterconnectEstimate {
            fu_mux_inputs,
            reg_mux_inputs,
        }
    }

    /// Total extra multiplexer inputs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.fu_mux_inputs + self.reg_mux_inputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::CostWeights;
    use crate::partition::bind_schedule;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};
    use pchls_sched::{asap, TimingMap};

    #[test]
    fn dedicated_units_need_no_fu_muxes() {
        // One instance per op = every port has exactly one source.
        let g = benchmarks::hal();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let mut binding = crate::Binding::new(g.len());
        for n in g.nodes() {
            let m = lib.select(n.kind(), SelectionPolicy::Fastest).unwrap();
            let inst = binding.new_instance(m);
            binding.bind(n.id(), inst);
        }
        let regs = RegisterAllocation::left_edge(&g, &s, &t);
        let est = InterconnectEstimate::of(&g, &binding, &regs);
        assert_eq!(est.fu_mux_inputs, 0);
    }

    #[test]
    fn shared_units_cost_muxes() {
        let g = benchmarks::elliptic();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let shared = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let regs = RegisterAllocation::left_edge(&g, &s, &t);
        let est = InterconnectEstimate::of(&g, &shared, &regs);
        assert!(est.fu_mux_inputs > 0, "sharing must introduce muxes");
        assert!(est.total() >= est.fu_mux_inputs);
    }

    #[test]
    fn estimate_is_deterministic() {
        let g = benchmarks::cosine();
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        let regs = RegisterAllocation::left_edge(&g, &s, &t);
        let a = InterconnectEstimate::of(&g, &b, &regs);
        let c = InterconnectEstimate::of(&g, &b, &regs);
        assert_eq!(a, c);
    }
}
