//! Property-based tests over binding, register allocation and
//! interconnect estimation on random DAGs.

use proptest::prelude::*;

use pchls_bind::{
    bind_schedule, CompatibilityGraph, CostWeights, InterconnectEstimate, RegisterAllocation,
};
use pchls_cdfg::{random_dag, RandomDagConfig, Reachability};
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{alap, asap, TimingMap};

prop_compose! {
    fn config()(
        ops in 2usize..40,
        inputs in 1usize..5,
        outputs in 1usize..3,
        mul_permille in 0u32..800,
        depth_bias in 0u32..5,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binding a fixed schedule always yields a complete, valid binding
    /// that never costs more area than one unit per operation.
    #[test]
    fn bind_schedule_is_valid_and_never_worse_than_dedicated(
        cfg in config(),
        policy_min_area in any::<bool>(),
    ) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let policy = if policy_min_area { SelectionPolicy::MinArea } else { SelectionPolicy::Fastest };
        let t = TimingMap::from_policy(&g, &lib, policy);
        let s = asap(&g, &t);
        let b = bind_schedule(&g, &lib, &s, &t, &CostWeights::default()).unwrap();
        prop_assert!(b.is_complete());
        let dedicated: u64 = g
            .nodes()
            .iter()
            .map(|n| u64::from(lib.module(lib.select(n.kind(), policy).unwrap()).area()))
            .sum();
        prop_assert!(b.area(&lib) <= dedicated);
    }

    /// Compatibility is symmetric, irreflexive, and consistent with the
    /// fixed-schedule interval rule.
    #[test]
    fn compatibility_is_sound(cfg in config()) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let r = Reachability::new(&g);
        let c = CompatibilityGraph::build(&g, &lib, &s, &s, &t, &r, &CostWeights::default());
        for a in g.node_ids() {
            prop_assert!(!c.compatible(a, a));
            for b in g.node_ids() {
                prop_assert_eq!(c.compatible(a, b), c.compatible(b, a));
                if c.compatible(a, b) {
                    // Fixed-schedule compatibility requires disjoint
                    // execution intervals.
                    let disjoint = s.finish(a, &t) <= s.start(b) || s.finish(b, &t) <= s.start(a);
                    prop_assert!(disjoint, "{a} and {b} compatible but overlap");
                    prop_assert!(c.weight(a, b) > 0.0);
                }
            }
        }
    }

    /// Left-edge register allocation is optimal (count = max live) and
    /// never shares a register between overlapping lifetimes, under both
    /// tight and slack schedules.
    #[test]
    fn left_edge_is_optimal_and_sound(cfg in config(), slack in 0u32..10) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let early = asap(&g, &t);
        let lat = early.latency(&t) + slack;
        let late = alap(&g, &t, lat).unwrap();
        for s in [early, late] {
            let ra = RegisterAllocation::left_edge(&g, &s, &t);
            prop_assert_eq!(ra.count(), ra.max_live());
            for reg in ra.registers() {
                for (i, a) in reg.iter().enumerate() {
                    for b in &reg[i + 1..] {
                        prop_assert!(!a.overlaps(b));
                    }
                }
            }
        }
    }

    /// Interconnect estimation: dedicated bindings need no FU muxes; the
    /// estimate is always finite and consistent.
    #[test]
    fn interconnect_estimate_is_sane(cfg in config()) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        let mut dedicated = pchls_bind::Binding::new(g.len());
        for n in g.nodes() {
            let m = lib.select(n.kind(), SelectionPolicy::Fastest).unwrap();
            let inst = dedicated.new_instance(m);
            dedicated.bind(n.id(), inst);
        }
        let regs = RegisterAllocation::left_edge(&g, &s, &t);
        let est = InterconnectEstimate::of(&g, &dedicated, &regs);
        prop_assert_eq!(est.fu_mux_inputs, 0);
        prop_assert_eq!(est.total(), est.fu_mux_inputs + est.reg_mux_inputs);
    }
}
