//! End-to-end smoke test of the TCP front-end: a real listener, real
//! client sockets, a small request mix, and a byte-level diff of every
//! served point against direct engine output — the in-process twin of
//! the CI service-smoke step.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pchls_cdfg::benchmarks;
use pchls_core::{
    Engine, SynthesisConstraints, SynthesisOptions, SynthesisRequest, SynthesisResult,
};
use pchls_fulib::paper_library;
use pchls_serve::{
    serve_tcp_with, Service, ServiceConfig, ShutdownHandle, SubmitRequest, SubmitResponse,
};

/// A reactor front end on an ephemeral port. Dropping the guard
/// requests a stop and asserts the serve loop exits cleanly — every
/// test here also exercises the shutdown path end to end.
struct ServerGuard {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    shutdown: Arc<ShutdownHandle>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.shutdown.request_stop();
        if let Some(thread) = self.thread.take() {
            let result = thread.join().expect("serve loop must not panic");
            assert!(result.is_ok(), "serve loop must exit cleanly: {result:?}");
        }
    }
}

/// Starts a service on an ephemeral port; returns the shared service,
/// the address to dial, and the stop guard.
fn spawn_server() -> ServerGuard {
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(ShutdownHandle::new());
    let thread = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve_tcp_with(&service, &listener, &shutdown))
    };
    ServerGuard {
        service,
        addr,
        shutdown,
        thread: Some(thread),
    }
}

/// The request mix both sides evaluate: repeated graphs (cache
/// exercise) plus one infeasible point.
fn mix() -> Vec<(String, u32, f64)> {
    vec![
        ("hal".to_owned(), 17, 25.0),
        ("hal".to_owned(), 10, 40.0),
        ("cosine".to_owned(), 15, 40.0),
        ("hal".to_owned(), 17, 1.0), // infeasible
        ("cosine".to_owned(), 15, 60.0),
        ("hal".to_owned(), 17, 25.0), // exact repeat
    ]
}

/// Serialized direct-engine point for one request of the mix.
fn direct_line(engine: &Engine, graph: &str, latency: u32, power: f64) -> String {
    let g = benchmarks::all()
        .into_iter()
        .find(|g| g.name() == graph)
        .unwrap();
    let compiled = engine.compile(&g);
    let constraints = SynthesisConstraints::new(latency, power);
    let point = SynthesisResult {
        request: SynthesisRequest::new(constraints.clone()),
        outcome: engine
            .session(&compiled)
            .synthesize(constraints, &SynthesisOptions::default()),
    }
    .to_point(compiled.name());
    serde_json::to_string(&point).expect("point serializes")
}

#[test]
fn tcp_round_trip_is_byte_identical_to_direct_engine_output() {
    let server = spawn_server();
    let (service, addr) = (Arc::clone(&server.service), server.addr);
    let stream = TcpStream::connect(addr).expect("dial the service");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    // Fire the whole mix pipelined, then collect all replies.
    for (id, (graph, latency, power)) in mix().into_iter().enumerate() {
        let req = SubmitRequest::synth(id as u64, &graph, latency, power);
        writeln!(writer, "{}", serde_json::to_string(&req).unwrap()).unwrap();
    }
    let mut responses: Vec<SubmitResponse> = Vec::new();
    while responses.len() < mix().len() {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        responses.push(serde_json::from_str(&line).expect("response parses"));
    }

    // Every reply diffs clean against the direct engine, byte for byte.
    for (id, (graph, latency, power)) in mix().into_iter().enumerate() {
        let resp = responses
            .iter()
            .find(|r| r.id == id as u64)
            .unwrap_or_else(|| panic!("no reply for id {id}"));
        assert!(resp.ok, "id {id}: {:?}", resp.error);
        let served = serde_json::to_string(resp.point.as_ref().unwrap()).unwrap();
        let direct = direct_line(service.engine(), &graph, latency, power);
        assert_eq!(served, direct, "{graph} T={latency} P={power}");
    }

    // The repeated-graph mix left a warm cache and live counters.
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&SubmitRequest::stats(99)).unwrap()
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let stats_resp: SubmitResponse = serde_json::from_str(&line).unwrap();
    let stats = stats_resp.stats.expect("stats payload");
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.cache_entries, 2, "hal + cosine");
    assert_eq!(stats.cache_misses, 2);
    assert!(stats.cache_hit_rate > 0.0, "repeats must hit the cache");
}

#[test]
fn two_connections_share_one_cache() {
    let server = spawn_server();
    let (service, addr) = (Arc::clone(&server.service), server.addr);
    let point_of = |id: u64| {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let req = SubmitRequest::synth(id, "elliptic", 22, 30.0);
        writeln!(writer, "{}", serde_json::to_string(&req).unwrap()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp: SubmitResponse = serde_json::from_str(&line).unwrap();
        assert!(resp.ok);
        resp.point.unwrap()
    };
    let a = point_of(1);
    let b = point_of(2);
    assert_eq!(a, b);
    let stats = service.stats();
    assert_eq!(stats.cache_misses, 1, "exactly one compile ran");
    assert_eq!(
        stats.result_hits, 1,
        "second connection reused the cached result without recompiling"
    );
    assert_eq!(stats.cache_hits, 0);
}
