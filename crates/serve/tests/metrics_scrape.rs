//! Live scrape of the service's metrics through the wire: real TCP
//! clients drive a request mix, then a `metrics` op pulls the
//! Prometheus-style exposition and the test asserts the series the
//! dashboards would alert on — exact counts where the per-service
//! registry guarantees isolation, presence for the process-global
//! store series.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pchls_core::Engine;
use pchls_fulib::paper_library;
use pchls_serve::{
    serve_tcp_with, Service, ServiceConfig, ShutdownHandle, SubmitRequest, SubmitResponse,
};

struct ServerGuard {
    addr: std::net::SocketAddr,
    shutdown: Arc<ShutdownHandle>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.shutdown.request_stop();
        if let Some(thread) = self.thread.take() {
            let result = thread.join().expect("serve loop must not panic");
            assert!(result.is_ok(), "serve loop must exit cleanly: {result:?}");
        }
    }
}

fn spawn_server() -> ServerGuard {
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(ShutdownHandle::new());
    let thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve_tcp_with(&service, &listener, &shutdown))
    };
    ServerGuard {
        addr,
        shutdown,
        thread: Some(thread),
    }
}

fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    stream: &mut TcpStream,
    request: &SubmitRequest,
) -> SubmitResponse {
    let mut line = serde_json::to_string(request).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    serde_json::from_str(&reply).unwrap_or_else(|e| panic!("bad reply `{reply}`: {e}"))
}

/// The exposition line for a metric, if present.
fn sample<'t>(text: &'t str, series: &str) -> Option<&'t str> {
    text.lines()
        .find(|l| l.starts_with(series) && l.as_bytes().get(series.len()) == Some(&b' '))
}

#[test]
fn metrics_op_scrapes_counters_lanes_and_tiers() {
    let server = spawn_server();
    let mut stream = TcpStream::connect(server.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Three requests against two distinct graphs: the repeat of `hal`
    // at the same point is a result-tier hit served on the hit lane.
    for (id, graph, latency, power) in [
        (1, "hal", 17, 25.0),
        (2, "cosine", 15, 40.0),
        (3, "hal", 17, 25.0),
    ] {
        let reply = roundtrip(
            &mut reader,
            &mut stream,
            &SubmitRequest::synth(id, graph, latency, power),
        );
        assert!(reply.ok, "request {id} failed: {:?}", reply.error);
    }

    let scrape = SubmitRequest {
        op: "metrics".to_owned(),
        ..SubmitRequest::stats(9)
    };
    let reply = roundtrip(&mut reader, &mut stream, &scrape);
    assert!(reply.ok);
    assert_eq!(reply.id, 9);
    let text = reply.metrics.expect("metrics reply carries the text");

    // Request disposition: this service's registry is private to the
    // test, so the counts are exact.
    assert_eq!(
        sample(&text, "pchls_requests_total"),
        Some("pchls_requests_total 3")
    );
    assert_eq!(
        sample(&text, "pchls_requests_completed_total"),
        Some("pchls_requests_completed_total 3")
    );
    assert_eq!(
        sample(&text, "pchls_requests_shed_total"),
        Some("pchls_requests_shed_total 0")
    );
    assert_eq!(
        sample(&text, "pchls_requests_rate_limited_total"),
        Some("pchls_requests_rate_limited_total 0")
    );

    // Cache tiers, mirrored from the service snapshot: two distinct
    // graphs compiled, the repeated constraint point answered from the
    // result tier.
    assert_eq!(
        sample(&text, "pchls_compile_cache_misses_total"),
        Some("pchls_compile_cache_misses_total 2")
    );
    assert_eq!(
        sample(&text, "pchls_result_tier_hits_total"),
        Some("pchls_result_tier_hits_total 1")
    );

    // The near-miss patcher's series ride the per-service registry:
    // no request here was a sibling edit, so both count zero, and the
    // two cold runs each left a replay seed behind.
    assert_eq!(
        sample(&text, "pchls_requests_patched_total"),
        Some("pchls_requests_patched_total 0")
    );
    assert_eq!(
        sample(&text, "pchls_patch_fallbacks_total"),
        Some("pchls_patch_fallbacks_total 0")
    );
    assert_eq!(
        sample(&text, "pchls_replay_seed_entries"),
        Some("pchls_replay_seed_entries 2")
    );

    // Latency histograms render as summaries, per lane: the repeat ran
    // on the hit lane, the two cold points on the synth lane.
    assert!(
        text.contains("# TYPE pchls_lane_latency_seconds summary"),
        "{text}"
    );
    for series in [
        r#"pchls_lane_latency_seconds{lane="hit",quantile="0.99"}"#,
        r#"pchls_lane_latency_seconds{lane="synth",quantile="0.99"}"#,
        r#"pchls_request_latency_seconds{quantile="0.999"}"#,
    ] {
        assert!(
            sample(&text, series).is_some(),
            "missing `{series}` in:\n{text}"
        );
    }
    assert_eq!(
        sample(&text, r#"pchls_lane_latency_seconds_count{lane="hit"}"#),
        Some(r#"pchls_lane_latency_seconds_count{lane="hit"} 1"#)
    );
    assert_eq!(
        sample(&text, r#"pchls_lane_latency_seconds_count{lane="synth"}"#),
        Some(r#"pchls_lane_latency_seconds_count{lane="synth"} 2"#)
    );

    // The process-global store series ride the same scrape. Other
    // tests in this process may also touch the global registry, so
    // presence only.
    for series in [
        "pchls_store_tier_hits_total",
        "pchls_store_tier_misses_total",
        "pchls_store_appends_total",
    ] {
        assert!(
            sample(&text, series).is_some(),
            "missing `{series}` in:\n{text}"
        );
    }

    // Every family is typed exactly once.
    let mut types: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
    let before = types.len();
    types.dedup();
    assert_eq!(types.len(), before, "duplicate # TYPE lines:\n{text}");
}

/// `metrics` is exempt from the per-connection rate limit, exactly
/// like `stats`: a starved bucket still answers a scrape.
#[test]
fn metrics_op_is_rate_limit_exempt() {
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 1,
            rate_per_sec: 0.001,
            burst: 1.0,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(ShutdownHandle::new());
    let thread = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve_tcp_with(&service, &listener, &shutdown))
    };
    let server = ServerGuard {
        addr,
        shutdown,
        thread: Some(thread),
    };

    let mut stream = TcpStream::connect(server.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Burn the bucket's single token, then confirm synth is limited
    // while metrics keeps answering.
    let first = roundtrip(
        &mut reader,
        &mut stream,
        &SubmitRequest::synth(1, "hal", 17, 25.0),
    );
    assert!(first.ok);
    let limited = roundtrip(
        &mut reader,
        &mut stream,
        &SubmitRequest::synth(2, "hal", 10, 40.0),
    );
    assert_eq!(limited.error.as_deref(), Some("rate_limited"));
    for id in 3..6 {
        let scrape = SubmitRequest {
            op: "metrics".to_owned(),
            ..SubmitRequest::stats(id)
        };
        let reply = roundtrip(&mut reader, &mut stream, &scrape);
        assert!(reply.ok, "scrape {id} was limited: {:?}", reply.error);
        let text = reply.metrics.expect("metrics text");
        assert_eq!(
            sample(&text, "pchls_requests_rate_limited_total"),
            Some("pchls_requests_rate_limited_total 1")
        );
    }
}
