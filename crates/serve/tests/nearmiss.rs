//! End-to-end near-miss patching over TCP: a base inline graph primes a
//! replay seed, the one-edit sibling is answered by the patched path
//! (delta compile + incremental replay, no cold synthesis), and the
//! served point byte-diffs clean against a cold direct synthesis — the
//! wire-level twin of the in-process `service` tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pchls_cdfg::{random_dag, Cdfg, GraphEdit, NodeId, OpKind, RandomDagConfig};
use pchls_core::{
    Engine, SynthesisConstraints, SynthesisOptions, SynthesisRequest, SynthesisResult,
};
use pchls_fulib::paper_library;
use pchls_serve::{
    serve_tcp_with, Service, ServiceConfig, ShutdownHandle, SubmitRequest, SubmitResponse,
};

/// A reactor front end on an ephemeral port; dropping the guard stops
/// the serve loop and asserts it exits cleanly.
struct ServerGuard {
    service: Arc<Service>,
    addr: std::net::SocketAddr,
    shutdown: Arc<ShutdownHandle>,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.shutdown.request_stop();
        if let Some(thread) = self.thread.take() {
            let result = thread.join().expect("serve loop must not panic");
            assert!(result.is_ok(), "serve loop must exit cleanly: {result:?}");
        }
    }
}

fn spawn_server() -> ServerGuard {
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(ShutdownHandle::new());
    let thread = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || serve_tcp_with(&service, &listener, &shutdown))
    };
    ServerGuard {
        service,
        addr,
        shutdown,
        thread: Some(thread),
    }
}

/// A base graph plus a one-edit sibling: one extra adder hanging off
/// two existing values, so the edit cone stays minimal.
fn edit_pair() -> (Cdfg, Cdfg) {
    let base = random_dag(&RandomDagConfig {
        ops: 48,
        seed: 9,
        ..RandomDagConfig::default()
    });
    let producers: Vec<NodeId> = base
        .node_ids()
        .filter(|&id| base.node(id).kind().produces_value())
        .collect();
    let mut edit = GraphEdit::new(&base);
    edit.add_op(OpKind::Add, &[producers[0], producers[1]])
        .unwrap();
    let edited = edit.finish().unwrap();
    (base, edited)
}

#[test]
fn tcp_near_miss_is_patched_and_byte_identical_to_cold_synthesis() {
    let server = spawn_server();
    let (service, addr) = (Arc::clone(&server.service), server.addr);
    let (base, edited) = edit_pair();
    let (latency, power) = (200u32, 60.0f64);

    let stream = TcpStream::connect(addr).expect("dial the service");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut exchange = |req: &SubmitRequest| -> SubmitResponse {
        writeln!(writer, "{}", serde_json::to_string(req).unwrap()).unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        serde_json::from_str(&line).expect("response parses")
    };

    // The base request cold-runs and leaves a replay seed behind.
    let first = exchange(&SubmitRequest::synth_text(
        1,
        &pchls_cdfg::write_cdfg(&base),
        latency,
        power,
    ));
    assert!(first.ok, "{:?}", first.error);

    // The sibling is one edit away under the same constraint point:
    // answered by patching, never touching the compile cache.
    let resp = exchange(&SubmitRequest::synth_text(
        2,
        &pchls_cdfg::write_cdfg(&edited),
        latency,
        power,
    ));
    assert!(resp.ok, "{:?}", resp.error);

    let stats_resp = exchange(&SubmitRequest::stats(3));
    let stats = stats_resp.stats.expect("stats payload");
    assert_eq!(stats.patched, 1, "the sibling must ride the patched path");
    assert_eq!(stats.patch_fallbacks, 0);
    assert_eq!(stats.cache_misses, 1, "only the base graph compiled cold");
    assert!(stats.seed_entries >= 1);
    assert_eq!(stats.completed, 2);

    // The patched point is byte-identical to a cold direct synthesis
    // of the edited graph.
    let compiled = service.engine().compile(&edited);
    let constraints = SynthesisConstraints::new(latency, power);
    let direct = SynthesisResult {
        request: SynthesisRequest::new(constraints.clone()),
        outcome: service
            .engine()
            .session(&compiled)
            .synthesize(constraints, &SynthesisOptions::default()),
    }
    .to_point(compiled.name());
    assert_eq!(
        serde_json::to_string(resp.point.as_ref().unwrap()).unwrap(),
        serde_json::to_string(&direct).unwrap(),
    );
}
