//! Overload end-to-end: drive the reactor TCP front end past capacity
//! and verify the admission contract — every request is *answered*
//! (shed ones with a well-formed `overloaded` error, never a dropped
//! connection or a malformed line), accepted synthesis responses stay
//! byte-identical to direct `Session` output, warm requests keep
//! flowing on the hit lane, and the loop still shuts down cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pchls_core::{
    Engine, SynthesisConstraints, SynthesisOptions, SynthesisRequest, SynthesisResult,
};
use pchls_fulib::paper_library;
use pchls_serve::{
    serve_tcp_with, Service, ServiceConfig, ShutdownHandle, SubmitRequest, SubmitResponse,
};

/// A synthesis-heavy graph (hundreds of iterations per run), so jobs
/// reliably outlive the submission burst.
fn heavy_graph_text(seed: u64) -> String {
    let g = pchls_cdfg::random_dag(&pchls_cdfg::RandomDagConfig {
        ops: 150,
        inputs: 6,
        outputs: 3,
        mul_permille: 300,
        depth_bias: 2,
        seed,
    });
    pchls_cdfg::write_cdfg(&g)
}

/// Direct-engine reference line for an inline-text request.
fn direct_line(engine: &Engine, text: &str, latency: u32, power: f64) -> String {
    let g = pchls_cdfg::parse_cdfg(text).unwrap();
    let compiled = engine.compile(&g);
    let constraints = SynthesisConstraints::new(latency, power);
    let point = SynthesisResult {
        request: SynthesisRequest::new(constraints.clone()),
        outcome: engine
            .session(&compiled)
            .synthesize(constraints, &SynthesisOptions::default()),
    }
    .to_point(compiled.name());
    serde_json::to_string(&point).unwrap()
}

#[test]
fn overloaded_shard_sheds_answers_everything_and_shuts_down_cleanly() {
    // One shard, one synth worker, a two-deep lane: a burst of heavy
    // jobs must overflow admission.
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 1,
            shards: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    ));
    // Pre-warm one named point so the hit lane has something to serve
    // while the synth lane drowns.
    assert!(service.call(SubmitRequest::synth(0, "hal", 17, 25.0)).ok);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = ShutdownHandle::new();
    let text = heavy_graph_text(7);
    let g = pchls_cdfg::parse_cdfg(&text).unwrap();
    let latency = service.engine().compile(&g).min_latency() * 2;

    std::thread::scope(|scope| {
        let loop_thread = scope.spawn(|| serve_tcp_with(&service, &listener, &shutdown));

        // The flood: one pipelined burst of distinct heavy constraint
        // points, fired without reading a single reply.
        const BURST: usize = 12;
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for i in 0..BURST {
            let req = SubmitRequest::synth_text(i as u64 + 1, &text, latency, 60.0 + i as f64);
            writeln!(writer, "{}", serde_json::to_string(&req).unwrap()).unwrap();
        }
        writer.flush().unwrap();

        // Meanwhile the warm point answers on a second connection, on
        // the hit lane, byte-identical to a direct run.
        let warm_stream = TcpStream::connect(addr).unwrap();
        let mut warm_reader = BufReader::new(warm_stream.try_clone().unwrap());
        let mut warm_writer = warm_stream;
        let warm_req = SubmitRequest::synth(500, "hal", 17, 25.0);
        writeln!(warm_writer, "{}", serde_json::to_string(&warm_req).unwrap()).unwrap();
        let mut warm_line = String::new();
        warm_reader.read_line(&mut warm_line).unwrap();
        let warm: SubmitResponse = serde_json::from_str(&warm_line).expect("well-formed");
        assert!(warm.ok, "warm lane starved: {:?}", warm.error);

        // Every burst request gets exactly one well-formed response.
        let mut responses: Vec<SubmitResponse> = Vec::new();
        while responses.len() < BURST {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            responses.push(serde_json::from_str(&line).expect("malformed response line"));
        }
        let shed: Vec<&SubmitResponse> = responses
            .iter()
            .filter(|r| r.error.as_deref() == Some("overloaded"))
            .collect();
        let served: Vec<&SubmitResponse> = responses.iter().filter(|r| r.ok).collect();
        assert!(
            !shed.is_empty(),
            "a 12-burst into a 2-deep lane must shed something"
        );
        assert!(!served.is_empty(), "the worker must serve something");
        assert_eq!(shed.len() + served.len(), BURST, "no third kind of outcome");
        // Accepted responses are byte-identical to direct synthesis.
        for resp in &served {
            let power = 60.0 + (resp.id - 1) as f64;
            let served_json = serde_json::to_string(resp.point.as_ref().unwrap()).unwrap();
            assert_eq!(
                served_json,
                direct_line(service.engine(), &text, latency, power),
                "id {}",
                resp.id
            );
        }

        // The stats line agrees with what the wire saw.
        writeln!(
            writer,
            "{}",
            serde_json::to_string(&SubmitRequest::stats(900)).unwrap()
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let stats_resp: SubmitResponse = serde_json::from_str(&line).unwrap();
        let stats = stats_resp.stats.expect("stats payload");
        assert_eq!(stats.shed, shed.len() as u64);
        assert!(stats.hit_lane.count >= 1, "warm request rode the hit lane");

        shutdown.request_stop();
        loop_thread.join().unwrap().unwrap();
    });
}

#[test]
fn deadline_on_a_queued_job_still_trips() {
    // One worker grinding a heavy job; a second heavy job with a 1ms
    // deadline sits queued past its deadline — the reactor's timer (or
    // the worker's first progress check) must cancel it.
    let service = Arc::new(Service::start(
        Engine::new(paper_library()),
        ServiceConfig {
            workers: 1,
            shards: 1,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = ShutdownHandle::new();
    let text = heavy_graph_text(9);
    let g = pchls_cdfg::parse_cdfg(&text).unwrap();
    let latency = service.engine().compile(&g).min_latency() * 2;

    std::thread::scope(|scope| {
        let loop_thread = scope.spawn(|| serve_tcp_with(&service, &listener, &shutdown));
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let blocker = SubmitRequest::synth_text(1, &text, latency, 60.0);
        let doomed = SubmitRequest::synth_text(2, &text, latency, 61.0).with_deadline_ms(1);
        writeln!(writer, "{}", serde_json::to_string(&blocker).unwrap()).unwrap();
        writeln!(writer, "{}", serde_json::to_string(&doomed).unwrap()).unwrap();
        let mut responses: Vec<SubmitResponse> = Vec::new();
        while responses.len() < 2 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            responses.push(serde_json::from_str(&line).expect("well-formed"));
        }
        let doomed_resp = responses.iter().find(|r| r.id == 2).unwrap();
        assert!(!doomed_resp.ok, "a 1ms deadline on a queued job must trip");
        let why = doomed_resp.error.as_deref().unwrap();
        assert!(
            why == "cancelled" || why == "deadline exceeded",
            "unexpected error: {why}"
        );
        assert!(responses.iter().find(|r| r.id == 1).unwrap().ok);
        shutdown.request_stop();
        loop_thread.join().unwrap().unwrap();
    });
    assert_eq!(service.stats().cancelled, 1);
}
