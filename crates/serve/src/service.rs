//! The request scheduler: a bounded job queue feeding a dedicated
//! worker pool, with per-request deadlines and cancellation.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pchls_cdfg::{benchmarks, graph_fingerprint, parse_cdfg, Cdfg};
use pchls_core::{
    Engine, SynthesisConstraints, SynthesisError, SynthesisOptions, SynthesisRequest,
    SynthesisResult,
};
use pchls_par::WorkerPool;
use pchls_store::{StoreKey, StoreRecord};

use crate::cache::CompileCache;
use crate::protocol::{SubmitRequest, SubmitResponse};
use crate::queue::JobQueue;
use crate::results::ResultTier;
use crate::stats::{LatencyHistogram, ServiceStats};

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads consuming the job queue (0 = one per available
    /// core, i.e. [`pchls_par::thread_count`]).
    pub workers: usize,
    /// Maximum jobs waiting in the queue before [`Service::submit`]
    /// blocks (backpressure).
    pub queue_cap: usize,
    /// Maximum compiled graphs resident in the cache.
    pub cache_cap: usize,
    /// Maximum synthesis results resident in the in-memory result tier.
    pub result_cap: usize,
    /// Directory of the persistent result store (tier 2). `None` runs
    /// memory-only; `Some` makes completed results durable and answers
    /// previously-seen points warm across restarts.
    pub store_dir: Option<PathBuf>,
    /// Synthesis options applied to every request (the CLI and batch
    /// path use the default paper configuration). Result-cache keys do
    /// not carry options — point one store directory at one options
    /// configuration.
    pub options: SynthesisOptions,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_cap: 256,
            cache_cap: 64,
            result_cap: 4096,
            store_dir: None,
            options: SynthesisOptions::default(),
        }
    }
}

/// One queued synthesis job.
struct Job {
    request: SubmitRequest,
    cancel: Arc<AtomicBool>,
    reply: Sender<SubmitResponse>,
    accepted: Instant,
}

/// How a processed job ended, for the counters.
enum Disposition {
    Completed,
    Failed,
    Cancelled,
}

/// State shared between the front-ends, the queue and the workers.
struct Shared {
    engine: Engine,
    options: SynthesisOptions,
    cache: CompileCache,
    results: ResultTier,
    queue: JobQueue<Job>,
    latency: LatencyHistogram,
    /// The built-in graphs, constructed once so the per-request
    /// named-graph lookup is a scan + clone-free borrow, not a rebuild
    /// of the whole benchmark suite.
    builtin_graphs: Vec<Cdfg>,
    workers: usize,
    requests: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
}

/// A running synthesis service: an [`Engine`] fronted by the
/// content-addressed [`CompileCache`] and a bounded queue of synthesis
/// jobs consumed by a dedicated [`WorkerPool`].
///
/// Requests enter through [`submit`](Service::submit) (asynchronous,
/// replies over a channel) or [`call`](Service::call) (synchronous
/// convenience); the stdio/TCP front-ends
/// ([`serve_stdio`](crate::serve_stdio) / [`serve_tcp`](crate::serve_tcp))
/// adapt the wire protocol onto `submit`. Dropping the service closes
/// the queue, drains in-flight jobs and joins the workers.
///
/// # Example
///
/// ```
/// use pchls_fulib::paper_library;
/// use pchls_serve::{Service, ServiceConfig, SubmitRequest};
///
/// let service = Service::start(
///     pchls_core::Engine::new(paper_library()),
///     ServiceConfig { workers: 2, ..ServiceConfig::default() },
/// );
/// let response = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
/// assert!(response.ok);
/// assert!(response.point.unwrap().is_feasible());
/// ```
pub struct Service {
    shared: Arc<Shared>,
    pool: Option<WorkerPool>,
}

impl Service {
    /// Starts the worker pool over `engine` and begins accepting jobs.
    ///
    /// # Panics
    ///
    /// When a configured `store_dir` cannot be opened — use
    /// [`Service::try_start`] to handle that without panicking.
    #[must_use]
    pub fn start(engine: Engine, config: ServiceConfig) -> Service {
        Service::try_start(engine, config).expect("result store unusable")
    }

    /// [`start`](Service::start), surfacing a failure to open the
    /// configured result store instead of panicking.
    ///
    /// # Errors
    ///
    /// Opening or recovering the store under `config.store_dir` failed.
    pub fn try_start(engine: Engine, config: ServiceConfig) -> std::io::Result<Service> {
        let workers = if config.workers == 0 {
            pchls_par::thread_count()
        } else {
            config.workers
        };
        let results = ResultTier::open(config.result_cap, config.store_dir.as_deref())?;
        let shared = Arc::new(Shared {
            engine,
            options: config.options,
            cache: CompileCache::new(config.cache_cap),
            results,
            queue: JobQueue::new(config.queue_cap),
            latency: LatencyHistogram::new(),
            builtin_graphs: benchmarks::all(),
            workers,
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        });
        let pool = {
            let shared = Arc::clone(&shared);
            WorkerPool::spawn(workers, move |_worker| {
                while let Some(job) = shared.queue.pop() {
                    shared.process(job);
                }
            })
        };
        Ok(Service {
            shared,
            pool: Some(pool),
        })
    }

    /// The engine answering this service's requests.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Enqueues a `synth` request; the reply arrives on `reply` when a
    /// worker finishes it. Blocks while the queue is full
    /// (backpressure). Returns the request's cancellation flag — store
    /// `true` to abort the run mid-iteration.
    ///
    /// # Errors
    ///
    /// Hands the request back when the service is shutting down.
    // The `Err` carries the whole request (now budget-bearing) by
    // design — it only materializes on the cold shutdown path, and the
    // caller owns the request it gets back.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        request: SubmitRequest,
        reply: Sender<SubmitResponse>,
    ) -> Result<Arc<AtomicBool>, SubmitRequest> {
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            request,
            cancel: Arc::clone(&cancel),
            reply,
            accepted: Instant::now(),
        };
        self.shared.queue.push(job).map_err(|job| job.request)?;
        // Count only after the push: a request rejected at shutdown was
        // never "accepted into the queue" (the documented meaning).
        self.shared.requests.fetch_add(1, Ordering::Relaxed);
        Ok(cancel)
    }

    /// Submits and waits for the reply — the one-liner for tests,
    /// benchmarks and simple clients.
    #[must_use]
    pub fn call(&self, request: SubmitRequest) -> SubmitResponse {
        let id = request.id;
        let (tx, rx) = std::sync::mpsc::channel();
        match self.submit(request, tx) {
            Ok(_) => rx
                .recv()
                .unwrap_or_else(|_| SubmitResponse::error(id, "worker dropped the reply")),
            Err(_) => SubmitResponse::error(id, "service is shutting down"),
        }
    }

    /// A consistent metrics snapshot (served immediately; never queued
    /// behind synthesis jobs).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let cache = self.shared.cache.stats();
        let (results, store) = self.shared.results.stats();
        ServiceStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            cancelled: self.shared.cancelled.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.len(),
            workers: self.shared.workers,
            cache_entries: cache.entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_coalesced: cache.coalesced,
            cache_evictions: cache.evictions,
            cache_hit_rate: cache.hit_rate(),
            cache_entry_bytes: cache.entry_bytes,
            cache_mean_eviction_age: cache.mean_eviction_age(),
            result_entries: results.entries,
            result_hits: results.hits,
            result_misses: results.misses,
            result_evictions: results.evictions,
            result_entry_bytes: results.entry_bytes,
            result_mean_eviction_age: results.mean_eviction_age(),
            result_hit_rate: results.hit_rate(),
            store_hits: store.hits,
            store_misses: store.misses,
            store_appends: store.appends,
            p50_latency_secs: self.shared.latency.quantile(0.50),
            p99_latency_secs: self.shared.latency.quantile(0.99),
        }
    }

    /// Stops accepting new jobs, drains the queue and joins the
    /// workers. Also runs on drop; call explicitly to control when the
    /// blocking happens.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        if let Some(pool) = self.pool.take() {
            // `join_lossy`, not `join`: this also runs from Drop, which
            // may execute while already unwinding from the very failure
            // that killed a worker — propagating there would double-
            // panic and abort. Surface worker panics only when it is
            // safe to do so.
            let panicked = pool.join_lossy();
            if panicked > 0 && !std::thread::panicking() {
                panic!("{panicked} service worker(s) panicked");
            }
        }
        // With the workers gone no one produces results any more; drain
        // the write-behind queue and commit the store footer.
        self.shared.results.shutdown();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.shared.workers)
            .field("queue_depth", &self.shared.queue.len())
            .field("cache_entries", &self.shared.cache.len())
            .finish()
    }
}

impl Shared {
    /// Processes one job on a worker thread and sends the reply.
    fn process(&self, job: Job) {
        let (response, disposition) = self.respond(&job);
        match disposition {
            Disposition::Completed => &self.completed,
            Disposition::Failed => &self.failed,
            Disposition::Cancelled => &self.cancelled,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.latency.record(job.accepted.elapsed());
        // A client that hung up stops caring about its reply; nothing
        // to do about the send failing.
        let _ = job.reply.send(response);
    }

    fn respond(&self, job: &Job) -> (SubmitResponse, Disposition) {
        let req = &job.request;
        let fail = |msg: String| (SubmitResponse::error(req.id, msg), Disposition::Failed);

        // Validate the constraint point up front — the constraints
        // constructor panics on nonsense, a worker must not. (A budget
        // envelope is already validated by its `Deserialize` impl; only
        // the horizon fit remains to be checked here.)
        if req.latency == 0 {
            return fail("latency must be a positive cycle count".into());
        }
        if req.power.is_nan() || req.power < 0.0 {
            return fail("power bound must be non-negative".into());
        }
        if let Some(budget) = &req.budget {
            // Shape-vs-horizon rules live on `PowerBudget` itself (one
            // source of truth with the CLI's `--budget` validation);
            // value validity was already enforced by the deserializer.
            if let Err(msg) = budget.check_horizon(req.latency) {
                return fail(msg);
            }
        }
        let graph = match self.resolve_graph(req) {
            Ok(g) => g,
            Err(msg) => return fail(msg),
        };

        // Content-address the *result* before compiling anything: the
        // fingerprint and budget digest name the outcome, so a cached
        // point answers with zero synthesis work — and on the
        // store-backed path, with zero compile work even after a
        // restart.
        let constraints = match &req.budget {
            Some(budget) => SynthesisConstraints::new(req.latency, budget.clone()),
            None => SynthesisConstraints::new(req.latency, req.power),
        };
        let fingerprint = graph_fingerprint(graph.as_ref());
        let key = StoreKey::new(fingerprint, &constraints);
        if let Some(record) = self.results.lookup(&key) {
            // Determinism makes the reconstruction byte-identical to a
            // fresh `Session::synthesize` for this graph name.
            let point = record.to_point(graph.name());
            return (SubmitResponse::point(req.id, point), Disposition::Completed);
        }

        let compiled = match self
            .cache
            .get_or_compile_keyed(&self.engine, fingerprint, graph.as_ref())
            .0
        {
            Ok(c) => c,
            Err(e) => return fail(format!("compile failed: {e}")),
        };

        let deadline =
            (req.deadline_ms > 0).then(|| job.accepted + Duration::from_millis(req.deadline_ms));
        let session = self.engine.session(&compiled);
        let outcome =
            session.synthesize_with_progress(constraints.clone(), &self.options, &mut |_| {
                if job.cancel.load(Ordering::Relaxed)
                    || deadline.is_some_and(|d| Instant::now() >= d)
                {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });

        match outcome {
            Err(SynthesisError::Cancelled) => {
                let why = if job.cancel.load(Ordering::Relaxed) {
                    "cancelled"
                } else {
                    "deadline exceeded"
                };
                (SubmitResponse::error(req.id, why), Disposition::Cancelled)
            }
            // Feasible or not, the point is exactly what a direct
            // `Session::batch` would emit — including the null-field
            // shape for infeasible constraints.
            outcome => {
                let trace = outcome
                    .as_ref()
                    .map(|d| pchls_store::trace_bytes(&d.schedule))
                    .unwrap_or_default();
                let point = SynthesisResult {
                    request: SynthesisRequest::new(constraints).with_options(self.options),
                    outcome,
                }
                .to_point(compiled.name());
                // Cache the completed outcome (infeasible included —
                // "no design exists here" is as durable a fact as a
                // design). Cancelled and failed runs are never cached.
                self.results
                    .insert(StoreRecord::from_point(key, &point, trace));
                (SubmitResponse::point(req.id, point), Disposition::Completed)
            }
        }
    }

    /// Materializes the request's graph: inline text first, then the
    /// built-in benchmark namespace. Named graphs borrow from the
    /// service's prebuilt list — nothing is constructed on the hot
    /// path; only inline text allocates.
    fn resolve_graph(&self, req: &SubmitRequest) -> Result<std::borrow::Cow<'_, Cdfg>, String> {
        if !req.graph_text.is_empty() {
            return parse_cdfg(&req.graph_text)
                .map(std::borrow::Cow::Owned)
                .map_err(|e| format!("parsing graph_text: {e}"));
        }
        if req.graph.is_empty() {
            return Err("request names no graph (set `graph` or `graph_text`)".into());
        }
        self.builtin_graphs
            .iter()
            .find(|g| g.name() == req.graph)
            .map(std::borrow::Cow::Borrowed)
            .ok_or_else(|| format!("unknown graph `{}`", req.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_core::SweepPoint;
    use pchls_fulib::paper_library;

    fn service(workers: usize) -> Service {
        Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    /// The direct-engine reference for one constraint point.
    fn direct_point(engine: &Engine, graph: &str, latency: u32, power: f64) -> SweepPoint {
        let g = benchmarks::all()
            .into_iter()
            .find(|g| g.name() == graph)
            .unwrap();
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let constraints = SynthesisConstraints::new(latency, power);
        SynthesisResult {
            request: SynthesisRequest::new(constraints.clone()),
            outcome: session.synthesize(constraints, &SynthesisOptions::default()),
        }
        .to_point(compiled.name())
    }

    #[test]
    fn served_point_is_byte_identical_to_direct_synthesis() {
        let service = service(2);
        for (id, (graph, t, p)) in [("hal", 17, 25.0), ("hal", 10, 40.0), ("cosine", 15, 40.0)]
            .into_iter()
            .enumerate()
        {
            let resp = service.call(SubmitRequest::synth(id as u64, graph, t, p));
            assert!(resp.ok, "{graph} T={t} P={p}: {:?}", resp.error);
            let served = serde_json::to_string(&resp.point.unwrap()).unwrap();
            let direct =
                serde_json::to_string(&direct_point(service.engine(), graph, t, p)).unwrap();
            assert_eq!(served, direct, "{graph} T={t} P={p}");
        }
    }

    #[test]
    fn infeasible_points_answer_ok_with_null_fields() {
        let service = service(1);
        let resp = service.call(SubmitRequest::synth(1, "hal", 17, 1.0));
        assert!(resp.ok, "infeasible is a served outcome, not a failure");
        let point = resp.point.unwrap();
        assert!(!point.is_feasible());
        let served = serde_json::to_string(&point).unwrap();
        let direct =
            serde_json::to_string(&direct_point(service.engine(), "hal", 17, 1.0)).unwrap();
        assert_eq!(served, direct);
    }

    #[test]
    fn repeated_graphs_hit_the_cache() {
        let service = service(2);
        for id in 0..6 {
            let resp = service.call(SubmitRequest::synth(id, "hal", 17, 20.0 + id as f64));
            assert!(resp.ok);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits + stats.cache_coalesced, 5);
        assert!(stats.cache_hit_rate > 0.0);
        assert!(stats.p50_latency_secs > 0.0);
    }

    #[test]
    fn bad_requests_fail_without_panicking_a_worker() {
        let service = service(1);
        for (req, needle) in [
            (SubmitRequest::synth(1, "hal", 0, 25.0), "latency"),
            (SubmitRequest::synth(2, "hal", 17, -1.0), "power"),
            (SubmitRequest::synth(3, "hal", 17, f64::NAN), "power"),
            (
                SubmitRequest::synth(4, "nonexistent", 17, 25.0),
                "unknown graph",
            ),
            (SubmitRequest::synth(5, "", 17, 25.0), "names no graph"),
            (
                SubmitRequest::synth_text(6, "this is not a dfg", 17, 25.0),
                "parsing graph_text",
            ),
        ] {
            let id = req.id;
            let resp = service.call(req);
            assert!(!resp.ok);
            assert_eq!(resp.id, id);
            let msg = resp.error.unwrap();
            assert!(msg.contains(needle), "`{msg}` missing `{needle}`");
        }
        // The workers survived all of it.
        assert!(service.call(SubmitRequest::synth(9, "hal", 17, 25.0)).ok);
        assert_eq!(service.stats().failed, 6);
    }

    #[test]
    fn constant_budget_requests_answer_byte_identically_to_scalar_ones() {
        use pchls_core::PowerBudget;
        let service = service(1);
        let scalar = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
        let budget = service
            .call(SubmitRequest::synth(2, "hal", 17, 0.0).with_budget(PowerBudget::constant(25.0)));
        assert!(scalar.ok && budget.ok);
        assert_eq!(
            serde_json::to_string(&scalar.point.unwrap()).unwrap(),
            serde_json::to_string(&budget.point.unwrap()).unwrap(),
        );
    }

    #[test]
    fn envelope_requests_are_served_and_respect_the_tight_phase() {
        use pchls_core::PowerBudget;
        let service = service(1);
        // Loose early, tight late: still feasible at T=30, but the
        // design's late cycles must obey the 12.0 phase.
        let budget = PowerBudget::steps(vec![(0, 40.0), (15, 12.0)]);
        let resp =
            service.call(SubmitRequest::synth(1, "hal", 30, 0.0).with_budget(budget.clone()));
        assert!(resp.ok, "{:?}", resp.error);
        let point = resp.point.unwrap();
        assert!(point.is_feasible());
        // The reported bound is the envelope's peak.
        assert_eq!(point.power_bound, 40.0);
    }

    #[test]
    fn malformed_budget_shapes_fail_cleanly() {
        use pchls_core::PowerBudget;
        let service = service(1);
        let wrong_len = service.call(
            SubmitRequest::synth(1, "hal", 17, 0.0)
                .with_budget(PowerBudget::per_cycle(vec![25.0; 5])),
        );
        assert!(!wrong_len.ok);
        assert!(wrong_len.error.unwrap().contains("17"));
        let late_step = service.call(
            SubmitRequest::synth(2, "hal", 17, 0.0)
                .with_budget(PowerBudget::steps(vec![(0, 30.0), (40, 10.0)])),
        );
        assert!(!late_step.ok);
        assert!(late_step.error.unwrap().contains("cycle 40"));
        // Workers survived.
        assert!(service.call(SubmitRequest::synth(9, "hal", 17, 25.0)).ok);
    }

    #[test]
    fn inline_graph_text_round_trips_through_the_service() {
        let g = benchmarks::hal();
        let text = pchls_cdfg::write_cdfg(&g);
        let service = service(1);
        let via_text = service.call(SubmitRequest::synth_text(1, &text, 17, 25.0));
        let via_name = service.call(SubmitRequest::synth(2, "hal", 17, 25.0));
        assert_eq!(via_text.point, via_name.point);
        // Same structure ⇒ same fingerprint ⇒ same result key: the
        // second call is a tier-1 result hit and never even reaches the
        // compile cache.
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.result_misses, 1);
    }

    #[test]
    fn identical_constraint_points_hit_the_result_tier() {
        let service = service(1);
        let first = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
        let second = service.call(SubmitRequest::synth(2, "hal", 17, 25.0));
        assert_eq!(
            serde_json::to_string(&first.point.unwrap()).unwrap(),
            serde_json::to_string(&second.point.unwrap()).unwrap(),
        );
        let stats = service.stats();
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.result_entries, 1);
        assert!(stats.result_entry_bytes > 0);
        assert!((stats.result_hit_rate - 0.5).abs() < 1e-12);
        // Infeasible outcomes are cached facts too.
        let inf_a = service.call(SubmitRequest::synth(3, "hal", 17, 1.0));
        let inf_b = service.call(SubmitRequest::synth(4, "hal", 17, 1.0));
        assert_eq!(inf_a.point, inf_b.point);
        assert!(!inf_b.point.unwrap().is_feasible());
        assert_eq!(service.stats().result_hits, 2);
    }

    #[test]
    fn store_backed_service_answers_warm_after_restart() {
        let dir = std::env::temp_dir().join(format!("pchls-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServiceConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let points = [(17u32, 25.0), (10, 40.0), (17, 1.0)];
        let cold: Vec<String> = {
            let service = Service::start(Engine::new(paper_library()), config());
            let cold = points
                .iter()
                .enumerate()
                .map(|(id, &(t, p))| {
                    let resp = service.call(SubmitRequest::synth(id as u64, "hal", t, p));
                    serde_json::to_string(&resp.point.unwrap()).unwrap()
                })
                .collect();
            service.shutdown();
            cold
        };

        // A brand-new service over the same store dir: every point is
        // answered from disk, byte-identical, without one compile.
        let service = Service::start(Engine::new(paper_library()), config());
        for (id, (&(t, p), want)) in points.iter().zip(&cold).enumerate() {
            let resp = service.call(SubmitRequest::synth(10 + id as u64, "hal", t, p));
            assert_eq!(&serde_json::to_string(&resp.point.unwrap()).unwrap(), want);
        }
        let stats = service.stats();
        assert_eq!(stats.store_hits, 3, "all three served from the store");
        assert_eq!(stats.cache_misses, 0, "nothing was compiled");
        assert_eq!(stats.completed, 3);
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A graph big enough that synthesis takes many iterations (and
    /// well over a millisecond), so cancellation paths are exercised
    /// deterministically.
    fn chunky_graph_text() -> String {
        let g = pchls_cdfg::random_dag(&pchls_cdfg::RandomDagConfig {
            ops: 150,
            inputs: 6,
            outputs: 3,
            mul_permille: 300,
            depth_bias: 2,
            seed: 42,
        });
        pchls_cdfg::write_cdfg(&g)
    }

    /// A latency bound comfortably inside the feasible region of the
    /// chunky graph (twice its critical path), so a cancelled run was
    /// genuinely in progress rather than rejected as infeasible.
    fn chunky_latency(service: &Service, text: &str) -> u32 {
        let g = parse_cdfg(text).unwrap();
        service.engine().compile(&g).min_latency() * 2
    }

    #[test]
    fn cancel_flag_aborts_a_run() {
        let service = service(1);
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = service
            .submit(SubmitRequest::synth_text(1, &text, latency, 60.0), tx)
            .unwrap();
        cancel.store(true, Ordering::Relaxed);
        let resp = rx.recv().unwrap();
        // The flag was set before the first hook check could pass, so
        // the run must come back cancelled.
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("cancelled"));
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn immediate_deadline_cancels() {
        let service = service(1);
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let resp =
            service.call(SubmitRequest::synth_text(1, &text, latency, 60.0).with_deadline_ms(1));
        // A 1ms deadline on a 150-op synthesis must trip the hook.
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("deadline exceeded"));
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let service = service(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for id in 0..4 {
            service
                .submit(SubmitRequest::synth(id, "hal", 17, 25.0), tx.clone())
                .unwrap();
        }
        drop(tx);
        service.shutdown();
        // Every queued job was still answered.
        assert_eq!(rx.iter().count(), 4);
    }
}
