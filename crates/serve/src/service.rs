//! The request scheduler: shards of compile cache + result tier +
//! two-lane job queue, each fed by its own workers, with per-request
//! deadlines, cancellation and load-shedding admission.
//!
//! # Sharding
//!
//! Every request is routed to a shard by its graph's content hash
//! (`graph_fingerprint % shards`), so one graph's compile cache entry,
//! result-tier entries and queue always live on the same shard and two
//! shards never contend on a lock for the hot path. The persistent
//! store (tier 2) stays service-wide behind one shared
//! [`StoreHandle`](crate::results::StoreHandle) — disk is off the hot
//! path and the on-disk index is one file per directory.
//!
//! # Lanes and admission
//!
//! At admission each request is classified: if the shard's result tier
//! already holds the answer (memory or store index — a pure probe, no
//! counters move) it rides the **hit lane**, otherwise the **synth
//! lane**. Each shard runs one dedicated hit worker plus its share of
//! synthesis workers; all workers drain hits first, so a queued
//! rand200-sized synthesis job never delays a warm lookup behind it.
//!
//! In-process callers use the blocking [`Service::submit`]
//! (backpressure, never sheds). Network front ends use
//! [`Service::try_submit`]: past the shard's admission bound the
//! request is refused *immediately* with a well-formed `overloaded`
//! error — the reactor thread never blocks on a saturated shard, and
//! the client always gets a parseable response instead of a dropped
//! connection.

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pchls_cdfg::{benchmarks, diff, graph_fingerprint, parse_cdfg, Cdfg};
use pchls_core::{
    CompiledGraph, Engine, SynthesisConstraints, SynthesisError, SynthesisMemo, SynthesisOptions,
    SynthesisRequest, SynthesisResult,
};
use pchls_obs::{Arg, Counter, MetricsRegistry};
use pchls_par::WorkerPool;
use pchls_store::{StoreKey, StoreRecord};

use crate::cache::{CacheStats, CompileCache};
use crate::lanes::{Lane, LaneQueues, PushRefusal};
use crate::protocol::{SubmitRequest, SubmitResponse};
use crate::results::{ResultCacheStats, ResultTier, StoreHandle, StoreTierStats};
use crate::stats::{LaneSnapshot, LatencyHistogram, ServiceStats};

/// Tuning knobs of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Synthesis worker threads across all shards (0 = one per
    /// available core, i.e. [`pchls_par::thread_count`]). Each shard
    /// additionally runs one dedicated hit-lane worker.
    pub workers: usize,
    /// Maximum jobs waiting per lane across the service — divided
    /// evenly over the shards (each lane of each shard gets
    /// `queue_cap / shards`, at least 1). [`Service::submit`] blocks at
    /// the bound (backpressure); [`Service::try_submit`] sheds.
    pub queue_cap: usize,
    /// Maximum compiled graphs resident across all shard caches.
    pub cache_cap: usize,
    /// Maximum synthesis results resident across all in-memory result
    /// tiers.
    pub result_cap: usize,
    /// Directory of the persistent result store (tier 2). `None` runs
    /// memory-only; `Some` makes completed results durable and answers
    /// previously-seen points warm across restarts. One store serves
    /// all shards.
    pub store_dir: Option<PathBuf>,
    /// Independent shards (0 = auto: one per synthesis worker, capped
    /// at 4). Each shard owns a compile cache, a result tier, a
    /// two-lane queue and its workers.
    pub shards: usize,
    /// Synth-lane depth at which [`Service::try_submit`] starts
    /// shedding, per shard (0 = the lane's capacity, i.e. shed only
    /// when full). Lower values trade queueing delay for shed rate.
    pub shed_depth: usize,
    /// Per-connection token-bucket refill rate for `synth` requests on
    /// the TCP front end, in requests per second (0 = unlimited).
    pub rate_per_sec: f64,
    /// Per-connection token-bucket burst capacity (clamped to ≥ 1).
    pub burst: f64,
    /// Longest request line the network front ends accept, in bytes.
    /// Oversized lines are answered with a structured error and
    /// discarded — client buffers never grow without bound.
    pub max_line_bytes: usize,
    /// Seconds between in-flight stats lines printed to stderr by the
    /// TCP front end (0 = only the final line at exit). Driven by the
    /// reactor's timer wheel, so an idle server still reports.
    pub stats_interval: u64,
    /// Synthesis options applied to every request (the CLI and batch
    /// path use the default paper configuration). Result-cache keys do
    /// not carry options — point one store directory at one options
    /// configuration.
    pub options: SynthesisOptions,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_cap: 256,
            cache_cap: 64,
            result_cap: 4096,
            store_dir: None,
            shards: 0,
            shed_depth: 0,
            rate_per_sec: 0.0,
            burst: 32.0,
            max_line_bytes: 1 << 20,
            stats_interval: 0,
            options: SynthesisOptions::default(),
        }
    }
}

/// Where a finished job's response goes.
pub(crate) enum ReplySink {
    /// An in-process caller's channel.
    Channel(Sender<SubmitResponse>),
    /// A reactor-owned connection: the completion channel plus the
    /// reactor's waker, so the I/O thread learns about the response
    /// without polling.
    Conn {
        conn: u64,
        tx: Sender<(u64, SubmitResponse)>,
        waker: pchls_net::Waker,
    },
}

impl ReplySink {
    pub(crate) fn send(&self, response: SubmitResponse) {
        match self {
            // A caller that hung up stops caring about its reply;
            // nothing to do about the send failing.
            ReplySink::Channel(tx) => {
                let _ = tx.send(response);
            }
            ReplySink::Conn { conn, tx, waker } => {
                let _ = tx.send((*conn, response));
                let _ = waker.wake();
            }
        }
    }
}

/// What [`Service::try_submit`] did with a request.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Queued; the reply will arrive on the sink. Carries the request's
    /// cancellation flag — store `true` to abort the run mid-iteration.
    Accepted(Arc<AtomicBool>),
    /// Shed at admission: the shard's lane was past its bound. A
    /// well-formed `overloaded` error was already sent on the sink.
    Overloaded,
    /// The service is shutting down. A `shutting down` error was
    /// already sent on the sink.
    ShuttingDown,
}

/// The admission knobs the network front ends read off the service.
pub(crate) struct FrontendLimits {
    pub rate_per_sec: f64,
    pub burst: f64,
    pub max_line_bytes: usize,
    pub stats_interval: u64,
}

/// One queued synthesis job.
pub(crate) struct Job {
    request: SubmitRequest,
    cancel: Arc<AtomicBool>,
    reply: ReplySink,
    accepted: Instant,
    /// The lane this job was admitted on (for the per-lane histogram —
    /// classification happens once, at admission).
    lane: Lane,
}

/// How a processed job ended, for the counters.
enum Disposition {
    Completed,
    Failed,
    Cancelled,
}

/// How many recorded base runs (replay seeds) each shard keeps for the
/// near-miss patcher. A seed carries the full iteration journal of its
/// run (megabytes for large graphs), so the bound is deliberately tiny
/// — the target workload is a client iterating on one design.
const SEED_CAP: usize = 4;

/// Largest edit cone the near-miss patcher accepts, as a divisor of the
/// graph size: cones above `len / PATCH_CONE_DIVISOR` replay too much
/// of the recorded run to reliably beat a cold synthesis, so they take
/// the cold path without touching the seed.
const PATCH_CONE_DIVISOR: usize = 8;

/// One recorded cold run a shard retains as a patch seed: a later
/// result-tier miss whose graph diffs against `graph` at a small cone,
/// under the same constraint point, is answered by delta compile +
/// incremental replay instead of cold synthesis.
struct ReplaySeed {
    constraints: SynthesisConstraints,
    graph: Cdfg,
    compiled: Arc<CompiledGraph>,
    memo: SynthesisMemo,
}

/// One shard: compile cache, in-memory result tier and two-lane queue,
/// all keyed by graphs whose `fingerprint % shards` selects this shard.
struct Shard {
    cache: CompileCache,
    results: ResultTier,
    lanes: LaneQueues<Job>,
    /// Synth-lane depth at which `try_submit` sheds.
    shed_depth: usize,
    /// Replay seeds for the near-miss patcher, newest last.
    seeds: Mutex<Vec<Arc<ReplaySeed>>>,
}

/// State shared between the front ends, the shards and the workers.
struct Shared {
    engine: Engine,
    options: SynthesisOptions,
    shards: Vec<Shard>,
    /// The persistent tier, shared by every shard's result tier.
    store: Option<Arc<StoreHandle>>,
    /// This service's own metrics registry (per-instance, not global,
    /// so exact-count tests never observe another service's traffic).
    /// The handles below are resolved from it once at startup; the
    /// registry itself is what `metrics_text` renders.
    metrics: MetricsRegistry,
    latency: Arc<LatencyHistogram>,
    hit_latency: Arc<LatencyHistogram>,
    synth_latency: Arc<LatencyHistogram>,
    /// The built-in graphs, constructed once so the per-request
    /// named-graph lookup is a scan + clone-free borrow, not a rebuild
    /// of the whole benchmark suite.
    builtin_graphs: Vec<Cdfg>,
    /// Name → fingerprint for the built-ins, so routing a named request
    /// costs one hash lookup instead of a fingerprint computation.
    builtin_fingerprints: HashMap<String, u64>,
    limits: FrontendLimits,
    workers: usize,
    requests: Counter,
    completed: Counter,
    failed: Counter,
    cancelled: Counter,
    shed: Counter,
    rate_limited: Counter,
    patched: Counter,
    patch_fallbacks: Counter,
}

/// A running synthesis service: an [`Engine`] fronted by sharded
/// content-addressed caches and bounded two-lane queues consumed by
/// dedicated [`WorkerPool`]s (see the module docs for the sharding and
/// admission story).
///
/// Requests enter through [`submit`](Service::submit) (asynchronous,
/// blocking backpressure), [`try_submit`](Service::try_submit)
/// (non-blocking, sheds under load) or [`call`](Service::call)
/// (synchronous convenience); the stdio/TCP front ends
/// ([`serve_stdio`](crate::serve_stdio) / [`serve_tcp`](crate::serve_tcp))
/// adapt the wire protocol onto them. Dropping the service closes the
/// queues, drains in-flight jobs and joins the workers.
///
/// # Example
///
/// ```
/// use pchls_fulib::paper_library;
/// use pchls_serve::{Service, ServiceConfig, SubmitRequest};
///
/// let service = Service::start(
///     pchls_core::Engine::new(paper_library()),
///     ServiceConfig { workers: 2, ..ServiceConfig::default() },
/// );
/// let response = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
/// assert!(response.ok);
/// assert!(response.point.unwrap().is_feasible());
/// ```
pub struct Service {
    shared: Arc<Shared>,
    pools: Vec<WorkerPool>,
}

impl Service {
    /// Starts the worker pools over `engine` and begins accepting jobs.
    ///
    /// # Panics
    ///
    /// When a configured `store_dir` cannot be opened — use
    /// [`Service::try_start`] to handle that without panicking.
    #[must_use]
    pub fn start(engine: Engine, config: ServiceConfig) -> Service {
        Service::try_start(engine, config).expect("result store unusable")
    }

    /// [`start`](Service::start), surfacing a failure to open the
    /// configured result store instead of panicking.
    ///
    /// # Errors
    ///
    /// Opening or recovering the store under `config.store_dir` failed.
    pub fn try_start(engine: Engine, config: ServiceConfig) -> std::io::Result<Service> {
        let synth_workers = if config.workers == 0 {
            pchls_par::thread_count()
        } else {
            config.workers
        };
        let shard_count = if config.shards == 0 {
            synth_workers.clamp(1, 4)
        } else {
            config.shards
        };
        let per = |total: usize| (total / shard_count).max(1);
        let lane_cap = per(config.queue_cap);
        let shed_depth = if config.shed_depth == 0 {
            lane_cap
        } else {
            config.shed_depth.min(lane_cap)
        };
        let store = config
            .store_dir
            .as_deref()
            .map(StoreHandle::open)
            .transpose()?;
        let shards: Vec<Shard> = (0..shard_count)
            .map(|_| Shard {
                cache: CompileCache::new(per(config.cache_cap)),
                results: ResultTier::with_store(per(config.result_cap), store.clone()),
                lanes: LaneQueues::new(lane_cap, lane_cap),
                shed_depth,
                seeds: Mutex::new(Vec::new()),
            })
            .collect();
        let builtin_graphs = benchmarks::all();
        let builtin_fingerprints = builtin_graphs
            .iter()
            .map(|g| (g.name().to_string(), graph_fingerprint(g)))
            .collect();
        let metrics = MetricsRegistry::new();
        let shared = Arc::new(Shared {
            engine,
            options: config.options,
            shards,
            store,
            latency: metrics.histogram("pchls_request_latency_seconds"),
            hit_latency: metrics.histogram("pchls_lane_latency_seconds{lane=\"hit\"}"),
            synth_latency: metrics.histogram("pchls_lane_latency_seconds{lane=\"synth\"}"),
            builtin_graphs,
            builtin_fingerprints,
            limits: FrontendLimits {
                rate_per_sec: config.rate_per_sec.max(0.0),
                burst: config.burst,
                max_line_bytes: config.max_line_bytes.max(1),
                stats_interval: config.stats_interval,
            },
            // One hit worker per shard rides along with the synth pool.
            workers: synth_workers + shard_count,
            requests: metrics.counter("pchls_requests_total"),
            completed: metrics.counter("pchls_requests_completed_total"),
            failed: metrics.counter("pchls_requests_failed_total"),
            cancelled: metrics.counter("pchls_requests_cancelled_total"),
            shed: metrics.counter("pchls_requests_shed_total"),
            rate_limited: metrics.counter("pchls_requests_rate_limited_total"),
            patched: metrics.counter("pchls_requests_patched_total"),
            patch_fallbacks: metrics.counter("pchls_patch_fallbacks_total"),
            metrics,
        });
        let mut pools = Vec::with_capacity(2 * shard_count);
        for idx in 0..shard_count {
            // Spread the synth workers over the shards, at least one
            // each.
            let count = (synth_workers / shard_count
                + usize::from(idx < synth_workers % shard_count))
            .max(1);
            let sh = Arc::clone(&shared);
            pools.push(WorkerPool::spawn(count, move |_worker| {
                while let Some((_, job)) = sh.shards[idx].lanes.pop() {
                    sh.process(idx, job);
                }
            }));
            let sh = Arc::clone(&shared);
            pools.push(WorkerPool::spawn(1, move |_worker| {
                while let Some(job) = sh.shards[idx].lanes.pop_hit() {
                    sh.process(idx, job);
                }
            }));
        }
        Ok(Service { shared, pools })
    }

    /// The engine answering this service's requests.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Enqueues a `synth` request; the reply arrives on `reply` when a
    /// worker finishes it. Blocks while the target lane is full
    /// (backpressure — this path never sheds). Returns the request's
    /// cancellation flag — store `true` to abort the run mid-iteration.
    ///
    /// # Errors
    ///
    /// Hands the request back when the service is shutting down.
    // The `Err` carries the whole request (budget-bearing) by design —
    // it only materializes on the cold shutdown path, and the caller
    // owns the request it gets back.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        request: SubmitRequest,
        reply: Sender<SubmitResponse>,
    ) -> Result<Arc<AtomicBool>, SubmitRequest> {
        let (shard, lane) = self.shared.route(&request);
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            request,
            cancel: Arc::clone(&cancel),
            reply: ReplySink::Channel(reply),
            accepted: Instant::now(),
            lane,
        };
        self.shared.shards[shard]
            .lanes
            .push(lane, job)
            .map_err(|job| job.request)?;
        // Count only after the push: a request rejected at shutdown was
        // never "accepted into the queue" (the documented meaning).
        self.shared.requests.inc();
        Ok(cancel)
    }

    /// Non-blocking admission — the network front ends' path. Refused
    /// requests (shard past its admission bound, or shutdown) are
    /// *answered*, not dropped: a well-formed error response is sent on
    /// `reply` before this returns.
    pub fn try_submit(
        &self,
        request: SubmitRequest,
        reply: Sender<SubmitResponse>,
    ) -> SubmitOutcome {
        self.submit_sink(request, ReplySink::Channel(reply))
    }

    /// [`try_submit`](Service::try_submit) over any reply sink.
    pub(crate) fn submit_sink(&self, request: SubmitRequest, sink: ReplySink) -> SubmitOutcome {
        let (shard_idx, lane) = self.shared.route(&request);
        let shard = &self.shared.shards[shard_idx];
        if lane == Lane::Synth && shard.lanes.depth(Lane::Synth) >= shard.shed_depth {
            self.shared.shed.inc();
            pchls_obs::event!("serve.shed", "id" => request.id);
            sink.send(SubmitResponse::error(request.id, "overloaded"));
            return SubmitOutcome::Overloaded;
        }
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            request,
            cancel: Arc::clone(&cancel),
            reply: sink,
            accepted: Instant::now(),
            lane,
        };
        match shard.lanes.try_push(lane, job) {
            Ok(()) => {
                self.shared.requests.inc();
                SubmitOutcome::Accepted(cancel)
            }
            Err(PushRefusal::Full(job)) => {
                self.shared.shed.inc();
                pchls_obs::event!("serve.shed", "id" => job.request.id);
                job.reply
                    .send(SubmitResponse::error(job.request.id, "overloaded"));
                SubmitOutcome::Overloaded
            }
            Err(PushRefusal::Closed(job)) => {
                job.reply.send(SubmitResponse::error(
                    job.request.id,
                    "service is shutting down",
                ));
                SubmitOutcome::ShuttingDown
            }
        }
    }

    /// Records one request refused by a connection's token bucket (the
    /// TCP front end answers it with a `rate_limited` error).
    pub(crate) fn note_rate_limited(&self) {
        self.shared.rate_limited.inc();
        pchls_obs::event!("serve.rate_limited");
    }

    /// The admission knobs the network front ends apply per connection.
    pub(crate) fn limits(&self) -> &FrontendLimits {
        &self.shared.limits
    }

    /// Submits and waits for the reply — the one-liner for tests,
    /// benchmarks and simple clients.
    #[must_use]
    pub fn call(&self, request: SubmitRequest) -> SubmitResponse {
        let id = request.id;
        let (tx, rx) = std::sync::mpsc::channel();
        match self.submit(request, tx) {
            Ok(_) => rx
                .recv()
                .unwrap_or_else(|_| SubmitResponse::error(id, "worker dropped the reply")),
            Err(_) => SubmitResponse::error(id, "service is shutting down"),
        }
    }

    /// A consistent metrics snapshot (served immediately; never queued
    /// behind synthesis jobs). Cache and result counters are summed
    /// across shards; store counters come from the one shared handle.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let shared = &self.shared;
        let cache = CacheStats::merged(shared.shards.iter().map(|s| s.cache.stats()));
        let results = ResultCacheStats::merged(shared.shards.iter().map(|s| s.results.stats().0));
        let store = shared
            .store
            .as_ref()
            .map_or_else(StoreTierStats::default, |s| s.stats());
        let queue_depth = shared.shards.iter().map(|s| s.lanes.len()).sum();
        ServiceStats {
            requests: shared.requests.get(),
            completed: shared.completed.get(),
            failed: shared.failed.get(),
            cancelled: shared.cancelled.get(),
            shed: shared.shed.get(),
            rate_limited: shared.rate_limited.get(),
            queue_depth,
            workers: shared.workers,
            shards: shared.shards.len(),
            cache_entries: cache.entries,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_coalesced: cache.coalesced,
            cache_evictions: cache.evictions,
            cache_hit_rate: cache.hit_rate(),
            cache_entry_bytes: cache.entry_bytes,
            cache_mean_eviction_age: cache.mean_eviction_age(),
            result_entries: results.entries,
            result_hits: results.hits,
            result_misses: results.misses,
            result_evictions: results.evictions,
            result_entry_bytes: results.entry_bytes,
            result_mean_eviction_age: results.mean_eviction_age(),
            result_hit_rate: results.hit_rate(),
            store_hits: store.hits,
            store_misses: store.misses,
            store_appends: store.appends,
            seed_entries: shared
                .shards
                .iter()
                .map(|s| s.seeds.lock().expect("seed lock").len())
                .sum(),
            patched: shared.patched.get(),
            patch_fallbacks: shared.patch_fallbacks.get(),
            p50_latency_secs: shared.latency.quantile(0.50),
            p99_latency_secs: shared.latency.quantile(0.99),
            p999_latency_secs: shared.latency.quantile(0.999),
            max_latency_secs: shared.latency.max_seconds(),
            hit_lane: LaneSnapshot::of(&shared.hit_latency),
            synth_lane: LaneSnapshot::of(&shared.synth_latency),
        }
    }

    /// The Prometheus-style text exposition behind the wire protocol's
    /// `metrics` op and `pchls serve --metrics`: this service's own
    /// registry (request counters and latency histograms record in
    /// place; cache-, result- and store-tier series are mirrored from
    /// [`Service::stats`] at scrape time) followed by the process-wide
    /// registry (the persistent store's disk timings).
    #[must_use]
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let m = &self.shared.metrics;
        let mirror = |name: &str, value: u64| m.counter(name).store(value);
        mirror("pchls_compile_cache_hits_total", stats.cache_hits);
        mirror("pchls_compile_cache_misses_total", stats.cache_misses);
        mirror("pchls_compile_cache_coalesced_total", stats.cache_coalesced);
        mirror("pchls_compile_cache_evictions_total", stats.cache_evictions);
        mirror("pchls_result_tier_hits_total", stats.result_hits);
        mirror("pchls_result_tier_misses_total", stats.result_misses);
        mirror("pchls_result_tier_evictions_total", stats.result_evictions);
        mirror("pchls_store_tier_hits_total", stats.store_hits);
        mirror("pchls_store_tier_misses_total", stats.store_misses);
        mirror("pchls_store_appends_total", stats.store_appends);
        let gauge = |name: &str, value: f64| m.gauge(name).set(value);
        gauge("pchls_queue_depth", stats.queue_depth as f64);
        gauge("pchls_workers", stats.workers as f64);
        gauge("pchls_shards", stats.shards as f64);
        gauge("pchls_compile_cache_entries", stats.cache_entries as f64);
        gauge("pchls_result_tier_entries", stats.result_entries as f64);
        gauge("pchls_replay_seed_entries", stats.seed_entries as f64);
        format!("{}{}", m.render(), pchls_obs::global().render())
    }

    /// Stops accepting new jobs, drains the queues and joins the
    /// workers. Also runs on drop; call explicitly to control when the
    /// blocking happens.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for shard in &self.shared.shards {
            shard.lanes.close();
        }
        let mut panicked = 0;
        for pool in self.pools.drain(..) {
            // `join_lossy`, not `join`: this also runs from Drop, which
            // may execute while already unwinding from the very failure
            // that killed a worker — propagating there would double-
            // panic and abort. Surface worker panics only when it is
            // safe to do so.
            panicked += pool.join_lossy();
        }
        if panicked > 0 && !std::thread::panicking() {
            panic!("{panicked} service worker(s) panicked");
        }
        // With the workers gone no one produces results any more; drain
        // the write-behind queue and commit the store footer. The
        // handle is shared — shutting down any one tier settles all.
        if let Some(store) = &self.shared.store {
            store.shutdown();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("workers", &self.shared.workers)
            .field("shards", &self.shared.shards.len())
            .field(
                "queue_depth",
                &self
                    .shared
                    .shards
                    .iter()
                    .map(|s| s.lanes.len())
                    .sum::<usize>(),
            )
            .finish()
    }
}

/// FNV-1a — routes requests that have no graph fingerprint (unknown
/// names, unparseable text) to a stable shard.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Shared {
    /// Shard + lane for a request. The shard is the graph fingerprint
    /// modulo the shard count (inline `graph_text` is parsed here so
    /// structurally identical text and named requests land on the same
    /// shard and share cache entries); requests whose answer already
    /// sits in that shard's result tier ride the hit lane. The
    /// classification is best-effort — an entry evicted between
    /// admission and processing just makes one hit-lane job do real
    /// work.
    fn route(&self, req: &SubmitRequest) -> (usize, Lane) {
        let n = self.shards.len() as u64;
        let fingerprint = if req.graph_text.is_empty() {
            self.builtin_fingerprints.get(&req.graph).copied()
        } else {
            parse_cdfg(&req.graph_text)
                .ok()
                .map(|g| graph_fingerprint(&g))
        };
        let Some(fingerprint) = fingerprint else {
            // Unknown graph or unparseable text: fails fast in the
            // worker; any stable shard will do.
            let bytes = if req.graph_text.is_empty() {
                req.graph.as_bytes()
            } else {
                req.graph_text.as_bytes()
            };
            return ((fnv1a(bytes) % n) as usize, Lane::Synth);
        };
        let shard = (fingerprint % n) as usize;
        let lane = match validated_constraints(req) {
            Ok(constraints)
                if self.shards[shard]
                    .results
                    .contains(&StoreKey::new(fingerprint, &constraints)) =>
            {
                Lane::Hit
            }
            _ => Lane::Synth,
        };
        (shard, lane)
    }

    /// Processes one job on a worker thread and sends the reply.
    fn process(&self, shard_idx: usize, job: Job) {
        let (response, disposition) = self.respond(&self.shards[shard_idx], &job);
        match disposition {
            Disposition::Completed => &self.completed,
            Disposition::Failed => &self.failed,
            Disposition::Cancelled => &self.cancelled,
        }
        .inc();
        let done = Instant::now();
        let elapsed = done - job.accepted;
        self.latency.record(elapsed);
        match job.lane {
            Lane::Hit => &self.hit_latency,
            Lane::Synth => &self.synth_latency,
        }
        .record(elapsed);
        if pchls_obs::enabled() {
            // Retroactive span: accepted on the front end, finished
            // here — explicit timestamps rather than a scope guard.
            pchls_obs::record_span(
                "serve.request",
                job.accepted,
                done,
                &[
                    ("id", Arg::U64(job.request.id)),
                    ("shard", Arg::U64(shard_idx as u64)),
                    (
                        "lane",
                        Arg::Str(match job.lane {
                            Lane::Hit => "hit",
                            Lane::Synth => "synth",
                        }),
                    ),
                    (
                        "outcome",
                        Arg::Str(match disposition {
                            Disposition::Completed => "completed",
                            Disposition::Failed => "failed",
                            Disposition::Cancelled => "cancelled",
                        }),
                    ),
                ],
            );
        }
        job.reply.send(response);
    }

    fn respond(&self, shard: &Shard, job: &Job) -> (SubmitResponse, Disposition) {
        let req = &job.request;
        let fail = |msg: String| (SubmitResponse::error(req.id, msg), Disposition::Failed);

        // Validate the constraint point up front — the constraints
        // constructor panics on nonsense, a worker must not.
        let constraints = match validated_constraints(req) {
            Ok(c) => c,
            Err(msg) => return fail(msg),
        };
        let graph = match self.resolve_graph(req) {
            Ok(g) => g,
            Err(msg) => return fail(msg),
        };

        // Content-address the *result* before compiling anything: the
        // fingerprint and budget digest name the outcome, so a cached
        // point answers with zero synthesis work — and on the
        // store-backed path, with zero compile work even after a
        // restart.
        let fingerprint = graph_fingerprint(graph.as_ref());
        let key = StoreKey::new(fingerprint, &constraints);
        if let Some(record) = shard.results.lookup(&key) {
            // Determinism makes the reconstruction byte-identical to a
            // fresh `Session::synthesize` for this graph name.
            let point = record.to_point(graph.name());
            return (SubmitResponse::point(req.id, point), Disposition::Completed);
        }

        // Near miss: no cached result for this exact graph, but a
        // sibling recorded under the same constraint point may be one
        // small edit away — answer by delta compile + incremental
        // replay when it is.
        if let Some(answer) = self.try_patch(shard, job, &constraints, graph.as_ref(), key) {
            return answer;
        }

        let compiled = match shard
            .cache
            .get_or_compile_keyed(&self.engine, fingerprint, graph.as_ref())
            .0
        {
            Ok(c) => c,
            Err(e) => return fail(format!("compile failed: {e}")),
        };

        let deadline =
            (req.deadline_ms > 0).then(|| job.accepted + Duration::from_millis(req.deadline_ms));
        let session = self.engine.session(&compiled);
        // Record while synthesizing: a successful cold run doubles as
        // the replay seed a later near-miss sibling patches against.
        let outcome = session.synthesize_recorded_with_progress(
            constraints.clone(),
            &self.options,
            &mut |_| {
                if job.cancel.load(Ordering::Relaxed)
                    || deadline.is_some_and(|d| Instant::now() >= d)
                {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );

        match outcome {
            Err(SynthesisError::Cancelled) => {
                let why = if job.cancel.load(Ordering::Relaxed) {
                    "cancelled"
                } else {
                    "deadline exceeded"
                };
                (SubmitResponse::error(req.id, why), Disposition::Cancelled)
            }
            // Feasible or not, the point is exactly what a direct
            // `Session::batch` would emit — including the null-field
            // shape for infeasible constraints.
            outcome => {
                let (outcome, memo) = match outcome {
                    Ok((design, memo)) => (Ok(design), Some(memo)),
                    Err(e) => (Err(e), None),
                };
                if let Some(memo) = memo {
                    self.remember_seed(
                        shard,
                        ReplaySeed {
                            constraints: constraints.clone(),
                            graph: graph.as_ref().clone(),
                            compiled: Arc::clone(&compiled),
                            memo,
                        },
                    );
                }
                let trace = outcome
                    .as_ref()
                    .map(|d| pchls_store::trace_bytes(&d.schedule))
                    .unwrap_or_default();
                let point = SynthesisResult {
                    request: SynthesisRequest::new(constraints).with_options(self.options),
                    outcome,
                }
                .to_point(compiled.name());
                // Cache the completed outcome (infeasible included —
                // "no design exists here" is as durable a fact as a
                // design). Cancelled and failed runs are never cached.
                shard
                    .results
                    .insert(StoreRecord::from_point(key, &point, trace));
                (SubmitResponse::point(req.id, point), Disposition::Completed)
            }
        }
    }

    /// The near-miss patch path: a result-tier miss whose graph is a
    /// small edit away from a recorded sibling under the same
    /// constraint point is answered by [`Engine::recompile_with_delta`]
    /// plus an incremental replay instead of a cold compile + synthesis
    /// — byte-identical output (the incremental kernel's differential
    /// guarantee) at a fraction of the work. Returns `None` when no
    /// seed applies; the caller falls through to the cold path.
    fn try_patch(
        &self,
        shard: &Shard,
        job: &Job,
        constraints: &SynthesisConstraints,
        graph: &Cdfg,
        key: StoreKey,
    ) -> Option<(SubmitResponse, Disposition)> {
        let req = &job.request;
        // Replay runs without a progress hook, so a patched request
        // cannot be cancelled or deadlined mid-iteration; supervised
        // requests keep the cold path.
        if req.deadline_ms > 0 || job.cancel.load(Ordering::Relaxed) {
            return None;
        }
        // Newest seed first: the interactive-edit workload patches
        // against the run it just recorded.
        let candidates: Vec<Arc<ReplaySeed>> = {
            let seeds = shard.seeds.lock().expect("seed lock");
            seeds
                .iter()
                .rev()
                .filter(|s| s.constraints == *constraints)
                .cloned()
                .collect()
        };
        if candidates.is_empty() {
            return None;
        }
        let max_cone = graph.len() / PATCH_CONE_DIVISOR;
        let Some((seed, delta)) = candidates.into_iter().find_map(|seed| {
            let delta = diff(&seed.graph, graph);
            (!delta.degenerate() && delta.cone_size() <= max_cone).then_some((seed, delta))
        }) else {
            // Siblings existed but every edit cone was too large (or
            // the diff degenerate): record the miss and go cold.
            self.patch_fallbacks.inc();
            return None;
        };
        let cone = delta.cone_size();
        let compiled = match self
            .engine
            .recompile_with_delta(&seed.compiled, graph, &delta)
        {
            Ok(c) => c,
            Err(_) => {
                self.patch_fallbacks.inc();
                return None;
            }
        };
        let session = self.engine.session(&compiled);
        match session.resynthesize_with_limit(&seed.memo, &delta, max_cone) {
            Ok(re) => {
                // Either arm answered with the cold path's exact bytes:
                // an incremental replay by the kernel's differential
                // guarantee, an internal fallback by actually running
                // the cold kernel over the recompiled graph.
                if re.incremental {
                    self.patched.inc();
                } else {
                    self.patch_fallbacks.inc();
                }
                pchls_obs::event!("serve.patched", "id" => req.id, "cone" => cone);
                let trace = pchls_store::trace_bytes(&re.design.schedule);
                let point = SynthesisResult {
                    request: SynthesisRequest::new(constraints.clone()).with_options(self.options),
                    outcome: Ok(re.design),
                }
                .to_point(compiled.name());
                shard
                    .results
                    .insert(StoreRecord::from_point(key, &point, trace));
                Some((SubmitResponse::point(req.id, point), Disposition::Completed))
            }
            // Replay errors (the edited graph is infeasible here) defer
            // to the cold path, which owns error reporting and
            // infeasible-point caching.
            Err(_) => {
                self.patch_fallbacks.inc();
                None
            }
        }
    }

    /// Retains `seed` for the shard's near-miss patcher: replaces an
    /// existing seed of the same graph + constraints, appends
    /// otherwise, evicting the oldest past [`SEED_CAP`].
    fn remember_seed(&self, shard: &Shard, seed: ReplaySeed) {
        let mut seeds = shard.seeds.lock().expect("seed lock");
        if let Some(slot) = seeds
            .iter_mut()
            .find(|s| s.constraints == seed.constraints && s.graph == seed.graph)
        {
            *slot = Arc::new(seed);
            return;
        }
        seeds.push(Arc::new(seed));
        if seeds.len() > SEED_CAP {
            seeds.remove(0);
        }
    }

    /// Materializes the request's graph: inline text first, then the
    /// built-in benchmark namespace. Named graphs borrow from the
    /// service's prebuilt list — nothing is constructed on the hot
    /// path; only inline text allocates.
    fn resolve_graph(&self, req: &SubmitRequest) -> Result<std::borrow::Cow<'_, Cdfg>, String> {
        if !req.graph_text.is_empty() {
            return parse_cdfg(&req.graph_text)
                .map(std::borrow::Cow::Owned)
                .map_err(|e| format!("parsing graph_text: {e}"));
        }
        if req.graph.is_empty() {
            return Err("request names no graph (set `graph` or `graph_text`)".into());
        }
        self.builtin_graphs
            .iter()
            .find(|g| g.name() == req.graph)
            .map(std::borrow::Cow::Borrowed)
            .ok_or_else(|| format!("unknown graph `{}`", req.graph))
    }
}

/// Checks the request's constraint point and materializes it. (A budget
/// envelope's values are already validated by its `Deserialize` impl;
/// only the horizon fit remains to be checked here.)
fn validated_constraints(req: &SubmitRequest) -> Result<SynthesisConstraints, String> {
    if req.latency == 0 {
        return Err("latency must be a positive cycle count".into());
    }
    if req.power.is_nan() || req.power < 0.0 {
        return Err("power bound must be non-negative".into());
    }
    if let Some(budget) = &req.budget {
        // Shape-vs-horizon rules live on `PowerBudget` itself (one
        // source of truth with the CLI's `--budget` validation).
        budget.check_horizon(req.latency)?;
    }
    Ok(match &req.budget {
        Some(budget) => SynthesisConstraints::new(req.latency, budget.clone()),
        None => SynthesisConstraints::new(req.latency, req.power),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_core::SweepPoint;
    use pchls_fulib::paper_library;

    fn service(workers: usize) -> Service {
        Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    /// The direct-engine reference for one constraint point.
    fn direct_point(engine: &Engine, graph: &str, latency: u32, power: f64) -> SweepPoint {
        let g = benchmarks::all()
            .into_iter()
            .find(|g| g.name() == graph)
            .unwrap();
        let compiled = engine.compile(&g);
        let session = engine.session(&compiled);
        let constraints = SynthesisConstraints::new(latency, power);
        SynthesisResult {
            request: SynthesisRequest::new(constraints.clone()),
            outcome: session.synthesize(constraints, &SynthesisOptions::default()),
        }
        .to_point(compiled.name())
    }

    #[test]
    fn served_point_is_byte_identical_to_direct_synthesis() {
        let service = service(2);
        for (id, (graph, t, p)) in [("hal", 17, 25.0), ("hal", 10, 40.0), ("cosine", 15, 40.0)]
            .into_iter()
            .enumerate()
        {
            let resp = service.call(SubmitRequest::synth(id as u64, graph, t, p));
            assert!(resp.ok, "{graph} T={t} P={p}: {:?}", resp.error);
            let served = serde_json::to_string(&resp.point.unwrap()).unwrap();
            let direct =
                serde_json::to_string(&direct_point(service.engine(), graph, t, p)).unwrap();
            assert_eq!(served, direct, "{graph} T={t} P={p}");
        }
    }

    #[test]
    fn infeasible_points_answer_ok_with_null_fields() {
        let service = service(1);
        let resp = service.call(SubmitRequest::synth(1, "hal", 17, 1.0));
        assert!(resp.ok, "infeasible is a served outcome, not a failure");
        let point = resp.point.unwrap();
        assert!(!point.is_feasible());
        let served = serde_json::to_string(&point).unwrap();
        let direct =
            serde_json::to_string(&direct_point(service.engine(), "hal", 17, 1.0)).unwrap();
        assert_eq!(served, direct);
    }

    #[test]
    fn repeated_graphs_hit_the_cache() {
        let service = service(2);
        for id in 0..6 {
            let resp = service.call(SubmitRequest::synth(id, "hal", 17, 20.0 + id as f64));
            assert!(resp.ok);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits + stats.cache_coalesced, 5);
        assert!(stats.cache_hit_rate > 0.0);
        assert!(stats.p50_latency_secs > 0.0);
        assert!(stats.max_latency_secs > 0.0);
        // One graph ⇒ one fingerprint ⇒ one shard served everything.
        assert!(stats.shards >= 1);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn bad_requests_fail_without_panicking_a_worker() {
        let service = service(1);
        for (req, needle) in [
            (SubmitRequest::synth(1, "hal", 0, 25.0), "latency"),
            (SubmitRequest::synth(2, "hal", 17, -1.0), "power"),
            (SubmitRequest::synth(3, "hal", 17, f64::NAN), "power"),
            (
                SubmitRequest::synth(4, "nonexistent", 17, 25.0),
                "unknown graph",
            ),
            (SubmitRequest::synth(5, "", 17, 25.0), "names no graph"),
            (
                SubmitRequest::synth_text(6, "this is not a dfg", 17, 25.0),
                "parsing graph_text",
            ),
        ] {
            let id = req.id;
            let resp = service.call(req);
            assert!(!resp.ok);
            assert_eq!(resp.id, id);
            let msg = resp.error.unwrap();
            assert!(msg.contains(needle), "`{msg}` missing `{needle}`");
        }
        // The workers survived all of it.
        assert!(service.call(SubmitRequest::synth(9, "hal", 17, 25.0)).ok);
        assert_eq!(service.stats().failed, 6);
    }

    #[test]
    fn constant_budget_requests_answer_byte_identically_to_scalar_ones() {
        use pchls_core::PowerBudget;
        let service = service(1);
        let scalar = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
        let budget = service
            .call(SubmitRequest::synth(2, "hal", 17, 0.0).with_budget(PowerBudget::constant(25.0)));
        assert!(scalar.ok && budget.ok);
        assert_eq!(
            serde_json::to_string(&scalar.point.unwrap()).unwrap(),
            serde_json::to_string(&budget.point.unwrap()).unwrap(),
        );
    }

    #[test]
    fn envelope_requests_are_served_and_respect_the_tight_phase() {
        use pchls_core::PowerBudget;
        let service = service(1);
        // Loose early, tight late: still feasible at T=30, but the
        // design's late cycles must obey the 12.0 phase.
        let budget = PowerBudget::steps(vec![(0, 40.0), (15, 12.0)]);
        let resp =
            service.call(SubmitRequest::synth(1, "hal", 30, 0.0).with_budget(budget.clone()));
        assert!(resp.ok, "{:?}", resp.error);
        let point = resp.point.unwrap();
        assert!(point.is_feasible());
        // The reported bound is the envelope's peak.
        assert_eq!(point.power_bound, 40.0);
    }

    #[test]
    fn malformed_budget_shapes_fail_cleanly() {
        use pchls_core::PowerBudget;
        let service = service(1);
        let wrong_len = service.call(
            SubmitRequest::synth(1, "hal", 17, 0.0)
                .with_budget(PowerBudget::per_cycle(vec![25.0; 5])),
        );
        assert!(!wrong_len.ok);
        assert!(wrong_len.error.unwrap().contains("17"));
        let late_step = service.call(
            SubmitRequest::synth(2, "hal", 17, 0.0)
                .with_budget(PowerBudget::steps(vec![(0, 30.0), (40, 10.0)])),
        );
        assert!(!late_step.ok);
        assert!(late_step.error.unwrap().contains("cycle 40"));
        // Workers survived.
        assert!(service.call(SubmitRequest::synth(9, "hal", 17, 25.0)).ok);
    }

    #[test]
    fn inline_graph_text_round_trips_through_the_service() {
        let g = benchmarks::hal();
        let text = pchls_cdfg::write_cdfg(&g);
        let service = service(1);
        let via_text = service.call(SubmitRequest::synth_text(1, &text, 17, 25.0));
        let via_name = service.call(SubmitRequest::synth(2, "hal", 17, 25.0));
        assert_eq!(via_text.point, via_name.point);
        // Same structure ⇒ same fingerprint ⇒ same shard and same
        // result key: the second call is a tier-1 result hit and never
        // even reaches the compile cache.
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.result_misses, 1);
    }

    #[test]
    fn identical_constraint_points_hit_the_result_tier() {
        let service = service(1);
        let first = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
        let second = service.call(SubmitRequest::synth(2, "hal", 17, 25.0));
        assert_eq!(
            serde_json::to_string(&first.point.unwrap()).unwrap(),
            serde_json::to_string(&second.point.unwrap()).unwrap(),
        );
        let stats = service.stats();
        assert_eq!(stats.result_hits, 1);
        assert_eq!(stats.result_entries, 1);
        assert!(stats.result_entry_bytes > 0);
        assert!((stats.result_hit_rate - 0.5).abs() < 1e-12);
        // The repeat was classified at admission and rode the hit lane.
        assert_eq!(stats.hit_lane.count, 1);
        assert_eq!(stats.synth_lane.count, 1);
        // Infeasible outcomes are cached facts too.
        let inf_a = service.call(SubmitRequest::synth(3, "hal", 17, 1.0));
        let inf_b = service.call(SubmitRequest::synth(4, "hal", 17, 1.0));
        assert_eq!(inf_a.point, inf_b.point);
        assert!(!inf_b.point.unwrap().is_feasible());
        assert_eq!(service.stats().result_hits, 2);
    }

    /// A base graph and a one-edit sibling (one extra adder hanging off
    /// two existing values — a minimal cone) for the near-miss tests.
    fn edit_pair() -> (Cdfg, Cdfg) {
        let base = pchls_cdfg::random_dag(&pchls_cdfg::RandomDagConfig {
            ops: 48,
            seed: 9,
            ..pchls_cdfg::RandomDagConfig::default()
        });
        let producers: Vec<pchls_cdfg::NodeId> = base
            .node_ids()
            .filter(|&id| base.node(id).kind().produces_value())
            .collect();
        let mut edit = pchls_cdfg::GraphEdit::new(&base);
        edit.add_op(pchls_cdfg::OpKind::Add, &[producers[0], producers[1]])
            .unwrap();
        let edited = edit.finish().unwrap();
        (base, edited)
    }

    #[test]
    fn near_miss_is_patched_from_a_recorded_sibling() {
        let (base, edited) = edit_pair();
        let service = service(1);
        let first = service.call(SubmitRequest::synth_text(
            1,
            &pchls_cdfg::write_cdfg(&base),
            200,
            60.0,
        ));
        assert!(first.ok, "{:?}", first.error);
        assert_eq!(service.stats().seed_entries, 1, "the cold run left a seed");

        let resp = service.call(SubmitRequest::synth_text(
            2,
            &pchls_cdfg::write_cdfg(&edited),
            200,
            60.0,
        ));
        assert!(resp.ok, "{:?}", resp.error);
        let served = serde_json::to_string(resp.point.as_ref().unwrap()).unwrap();
        let stats = service.stats();
        assert_eq!(
            stats.patched, 1,
            "the sibling patches instead of cold-running"
        );
        assert_eq!(stats.patch_fallbacks, 0);
        assert_eq!(
            stats.cache_misses, 1,
            "the edited graph never met the compile cache"
        );
        assert_eq!(stats.completed, 2);

        // Byte-identity against a cold direct synthesis of the edited
        // graph — the patched path's whole contract.
        let compiled = service.engine().compile(&edited);
        let constraints = SynthesisConstraints::new(200, 60.0);
        let direct = SynthesisResult {
            request: SynthesisRequest::new(constraints.clone()),
            outcome: service
                .engine()
                .session(&compiled)
                .synthesize(constraints, &SynthesisOptions::default()),
        }
        .to_point(compiled.name());
        assert_eq!(served, serde_json::to_string(&direct).unwrap());

        // The patched answer entered the result tier like any other
        // completion: an exact repeat is a tier-1 hit.
        let again = service.call(SubmitRequest::synth_text(
            3,
            &pchls_cdfg::write_cdfg(&edited),
            200,
            60.0,
        ));
        assert_eq!(again.point, resp.point);
        assert_eq!(service.stats().result_hits, 1);
    }

    #[test]
    fn patching_requires_a_matching_constraint_point() {
        let (base, edited) = edit_pair();
        let service = service(1);
        assert!(
            service
                .call(SubmitRequest::synth_text(
                    1,
                    &pchls_cdfg::write_cdfg(&base),
                    200,
                    60.0,
                ))
                .ok
        );
        // Same edit, different power bound: the seed's constraint point
        // does not match, so the request cold-runs (and leaves its own
        // seed behind).
        assert!(
            service
                .call(SubmitRequest::synth_text(
                    2,
                    &pchls_cdfg::write_cdfg(&edited),
                    200,
                    55.0,
                ))
                .ok
        );
        let stats = service.stats();
        assert_eq!(stats.patched, 0);
        assert_eq!(stats.cache_misses, 2, "both graphs compiled cold");
        assert_eq!(stats.seed_entries, 2);
    }

    #[test]
    fn store_backed_service_answers_warm_after_restart() {
        let dir = std::env::temp_dir().join(format!("pchls-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServiceConfig {
            workers: 1,
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let points = [(17u32, 25.0), (10, 40.0), (17, 1.0)];
        let cold: Vec<String> = {
            let service = Service::start(Engine::new(paper_library()), config());
            let cold = points
                .iter()
                .enumerate()
                .map(|(id, &(t, p))| {
                    let resp = service.call(SubmitRequest::synth(id as u64, "hal", t, p));
                    serde_json::to_string(&resp.point.unwrap()).unwrap()
                })
                .collect();
            service.shutdown();
            cold
        };

        // A brand-new service over the same store dir: every point is
        // answered from disk, byte-identical, without one compile —
        // and, classified by the store's index, on the hit lane.
        let service = Service::start(Engine::new(paper_library()), config());
        for (id, (&(t, p), want)) in points.iter().zip(&cold).enumerate() {
            let resp = service.call(SubmitRequest::synth(10 + id as u64, "hal", t, p));
            assert_eq!(&serde_json::to_string(&resp.point.unwrap()).unwrap(), want);
        }
        let stats = service.stats();
        assert_eq!(stats.store_hits, 3, "all three served from the store");
        assert_eq!(stats.cache_misses, 0, "nothing was compiled");
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.hit_lane.count, 3, "store index fed the hit lane");
        service.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A graph big enough that synthesis takes many iterations (and
    /// well over a millisecond), so cancellation paths are exercised
    /// deterministically.
    fn chunky_graph_text() -> String {
        let g = pchls_cdfg::random_dag(&pchls_cdfg::RandomDagConfig {
            ops: 150,
            inputs: 6,
            outputs: 3,
            mul_permille: 300,
            depth_bias: 2,
            seed: 42,
        });
        pchls_cdfg::write_cdfg(&g)
    }

    /// A latency bound comfortably inside the feasible region of the
    /// chunky graph (twice its critical path), so a cancelled run was
    /// genuinely in progress rather than rejected as infeasible.
    fn chunky_latency(service: &Service, text: &str) -> u32 {
        let g = parse_cdfg(text).unwrap();
        service.engine().compile(&g).min_latency() * 2
    }

    #[test]
    fn cancel_flag_aborts_a_run() {
        let service = service(1);
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = service
            .submit(SubmitRequest::synth_text(1, &text, latency, 60.0), tx)
            .unwrap();
        cancel.store(true, Ordering::Relaxed);
        let resp = rx.recv().unwrap();
        // The flag was set before the first hook check could pass, so
        // the run must come back cancelled.
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("cancelled"));
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn immediate_deadline_cancels() {
        let service = service(1);
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let resp =
            service.call(SubmitRequest::synth_text(1, &text, latency, 60.0).with_deadline_ms(1));
        // A 1ms deadline on a 150-op synthesis must trip the hook.
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("deadline exceeded"));
        assert_eq!(service.stats().cancelled, 1);
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let service = service(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for id in 0..4 {
            service
                .submit(SubmitRequest::synth(id, "hal", 17, 25.0), tx.clone())
                .unwrap();
        }
        drop(tx);
        service.shutdown();
        // Every queued job was still answered.
        assert_eq!(rx.iter().count(), 4);
    }

    #[test]
    fn try_submit_sheds_with_a_well_formed_error_when_a_shard_is_full() {
        // One shard, one worker, a one-deep synth lane. Park the worker
        // on a slow job, fill the lane, then watch admission refuse.
        let service = Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 1,
                shards: 1,
                queue_cap: 1,
                ..ServiceConfig::default()
            },
        );
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let (tx, rx) = std::sync::mpsc::channel();
        // Two slow jobs: one runs, one waits in the one-slot lane.
        let slow = SubmitRequest::synth_text(1, &text, latency, 60.0);
        let first = service.submit(slow.clone(), tx.clone()).unwrap();
        // Wait until the worker has taken the first job off the queue,
        // then occupy the freed slot.
        let occupied = std::time::Instant::now();
        loop {
            match service.try_submit(
                SubmitRequest::synth_text(2, &text, latency, 60.0),
                tx.clone(),
            ) {
                SubmitOutcome::Accepted(_) => break,
                SubmitOutcome::Overloaded => {
                    assert!(
                        occupied.elapsed() < Duration::from_secs(20),
                        "worker never drained the first job"
                    );
                    // The shed was answered; consume it and retry.
                    let resp = rx.recv().unwrap();
                    assert_eq!(resp.error.as_deref(), Some("overloaded"));
                    std::thread::sleep(Duration::from_millis(1));
                }
                SubmitOutcome::ShuttingDown => unreachable!("service is running"),
            }
        }
        // Queue is now provably full: the next try_submit must shed and
        // must answer on the channel, well-formed, with the right id.
        let before = service.stats().shed;
        match service.try_submit(
            SubmitRequest::synth_text(77, &text, latency, 60.0),
            tx.clone(),
        ) {
            SubmitOutcome::Overloaded => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let resp = rx.recv().unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.id, 77);
        assert_eq!(resp.error.as_deref(), Some("overloaded"));
        assert!(service.stats().shed > before);
        // Unblock and drain.
        first.store(true, Ordering::Relaxed);
        drop(tx);
        service.shutdown();
    }

    #[test]
    fn try_submit_answers_shutting_down_after_close() {
        let service = service(1);
        let (tx, rx) = std::sync::mpsc::channel();
        // Shut down, then poke the corpse through a second handle's
        // worth of API: lanes are closed, so admission must refuse.
        for shard in &service.shared.shards {
            shard.lanes.close();
        }
        match service.try_submit(SubmitRequest::synth(5, "hal", 17, 25.0), tx) {
            SubmitOutcome::ShuttingDown => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        let resp = rx.recv().unwrap();
        assert_eq!(resp.id, 5);
        assert!(resp.error.unwrap().contains("shutting down"));
    }

    #[test]
    fn hit_lane_answers_while_every_synth_worker_is_busy() {
        // One shard, one synth worker. Park the synth worker on a slow
        // job; a warm repeat must still be answered promptly by the
        // dedicated hit worker.
        let service = Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 1,
                shards: 1,
                ..ServiceConfig::default()
            },
        );
        // Warm the result tier.
        assert!(service.call(SubmitRequest::synth(1, "hal", 17, 25.0)).ok);
        let text = chunky_graph_text();
        let latency = chunky_latency(&service, &text);
        let (slow_tx, slow_rx) = std::sync::mpsc::channel();
        let cancel = service
            .submit(SubmitRequest::synth_text(2, &text, latency, 60.0), slow_tx)
            .unwrap();
        // While the lone synth worker grinds, the warm point answers.
        let warm = service.call(SubmitRequest::synth(3, "hal", 17, 25.0));
        assert!(warm.ok, "hit lane starved behind a synthesis job");
        assert_eq!(service.stats().hit_lane.count, 1);
        cancel.store(true, Ordering::Relaxed);
        let _ = slow_rx.recv();
        service.shutdown();
    }

    #[test]
    fn sharded_service_keeps_results_byte_identical() {
        // Four shards, several graphs: routing must not change answers.
        let service = Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 2,
                shards: 4,
                ..ServiceConfig::default()
            },
        );
        for (id, (graph, t, p)) in [
            ("hal", 17, 25.0),
            ("cosine", 15, 40.0),
            ("hal", 10, 40.0),
            ("cosine", 20, 30.0),
        ]
        .into_iter()
        .enumerate()
        {
            let resp = service.call(SubmitRequest::synth(id as u64, graph, t, p));
            assert!(resp.ok, "{graph}: {:?}", resp.error);
            let served = serde_json::to_string(&resp.point.unwrap()).unwrap();
            let direct =
                serde_json::to_string(&direct_point(service.engine(), graph, t, p)).unwrap();
            assert_eq!(served, direct, "{graph} T={t} P={p}");
        }
        assert_eq!(service.stats().shards, 4);
    }
}
