//! The two result cache tiers in front of synthesis.
//!
//! The compile cache ([`crate::CompileCache`]) amortizes *compilation*;
//! this module amortizes the *synthesis outcome itself*, which is safe
//! because the engine is deterministic: one `(graph_fingerprint,
//! latency_bound, budget_digest)` key ([`StoreKey`]) names exactly one
//! result for a fixed [`SynthesisOptions`](pchls_core::SynthesisOptions)
//! configuration (a service applies one options value to every request,
//! so the key never needs to carry it; callers mixing options must use
//! separate store directories).
//!
//! * **Tier 1** — a bounded in-memory LRU of [`StoreRecord`]s. A hit
//!   skips compile *and* synthesis.
//! * **Tier 2** (optional) — a persistent [`pchls_store::Store`].
//!   Lookups that miss memory read the store under its lock; completed
//!   results are handed to a **write-behind** thread over a channel, so
//!   workers never block on disk. A restarted service re-opens the
//!   store and answers previously-seen points warm, byte-identical,
//!   without compiling anything.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pchls_store::{Store, StoreKey, StoreRecord};

/// Counter snapshot of the in-memory result tier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResultCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that found nothing in memory.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes held by resident entries.
    pub entry_bytes: u64,
    /// Sum over evictions of the victim's idle age in LRU ticks.
    pub eviction_age_sum: u64,
    /// Idle age (ticks) of the most recent eviction victim.
    pub last_eviction_age: u64,
}

impl ResultCacheStats {
    /// Fraction of lookups answered from memory; `0.0` before any.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Mean idle age (ticks) of eviction victims; `0.0` before any.
    #[must_use]
    pub fn mean_eviction_age(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.eviction_age_sum as f64 / self.evictions as f64
        }
    }
}

/// Counter snapshot of the persistent tier (all zero when no store is
/// configured).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreTierStats {
    /// Lookups answered by the on-disk store.
    pub hits: u64,
    /// Lookups that reached the store and found nothing.
    pub misses: u64,
    /// Records handed to the write-behind thread and appended.
    pub appends: u64,
}

/// Approximate resident size of one cached record.
fn record_bytes(record: &StoreRecord) -> u64 {
    (std::mem::size_of::<StoreRecord>() + record.trace.len()) as u64
}

#[derive(Debug)]
struct ResultSlot {
    record: StoreRecord,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct ResultInner {
    map: HashMap<StoreKey, ResultSlot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entry_bytes: u64,
    eviction_age_sum: u64,
    last_eviction_age: u64,
}

#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
}

#[derive(Debug)]
struct StoreTier {
    store: Arc<Mutex<Store>>,
    /// Feed to the write-behind thread; dropped to initiate shutdown.
    sender: Mutex<Option<Sender<StoreRecord>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<StoreCounters>,
}

/// The two-tier result cache: memory LRU in front, optional persistent
/// store behind, write-behind appends.
#[derive(Debug)]
pub struct ResultTier {
    inner: Mutex<ResultInner>,
    cap: usize,
    store: Option<StoreTier>,
}

impl ResultTier {
    /// A tier holding at most `cap` records in memory (clamped to ≥ 1),
    /// optionally backed by the store under `store_dir`.
    ///
    /// # Errors
    ///
    /// Opening or recovering the store failed.
    pub fn open(cap: usize, store_dir: Option<&Path>) -> io::Result<ResultTier> {
        let store = match store_dir {
            None => None,
            Some(dir) => {
                let store = Arc::new(Mutex::new(Store::open(dir)?));
                let counters = Arc::new(StoreCounters::default());
                let (tx, rx) = std::sync::mpsc::channel::<StoreRecord>();
                let writer = {
                    let store = Arc::clone(&store);
                    let counters = Arc::clone(&counters);
                    std::thread::Builder::new()
                        .name("pchls-store-writer".into())
                        .spawn(move || write_behind(&rx, &store, &counters))
                        .expect("spawn store writer")
                };
                Some(StoreTier {
                    store,
                    sender: Mutex::new(Some(tx)),
                    writer: Mutex::new(Some(writer)),
                    counters,
                })
            }
        };
        Ok(ResultTier {
            inner: Mutex::new(ResultInner::default()),
            cap: cap.max(1),
            store,
        })
    }

    /// Whether a persistent store backs this tier.
    #[must_use]
    pub fn persistent(&self) -> bool {
        self.store.is_some()
    }

    /// Looks `key` up in memory, then (on miss) in the store. A store
    /// hit is promoted into the memory tier.
    pub fn lookup(&self, key: &StoreKey) -> Option<StoreRecord> {
        {
            let mut inner = self.inner.lock().expect("result cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(key) {
                slot.last_used = tick;
                let record = slot.record.clone();
                inner.hits += 1;
                return Some(record);
            }
            inner.misses += 1;
        }
        let tier = self.store.as_ref()?;
        let found = tier
            .store
            .lock()
            .expect("store lock")
            .get(key)
            .unwrap_or_default();
        match found {
            Some(record) => {
                tier.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.insert_memory(record.clone());
                Some(record)
            }
            None => {
                tier.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a completed result in memory and (write-behind) on disk.
    pub fn insert(&self, record: StoreRecord) {
        if let Some(tier) = &self.store {
            let sender = tier.sender.lock().expect("sender lock");
            if let Some(tx) = sender.as_ref() {
                // The writer owning the receiver only exits once this
                // sender is dropped, so a send cannot fail while it is
                // held here.
                let _ = tx.send(record.clone());
            }
        }
        self.insert_memory(record);
    }

    fn insert_memory(&self, record: StoreRecord) {
        let mut inner = self.inner.lock().expect("result cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = record_bytes(&record);
        let slot = ResultSlot {
            record,
            bytes,
            last_used: tick,
        };
        let key = slot.record.key;
        if let Some(old) = inner.map.insert(key, slot) {
            inner.entry_bytes -= old.bytes;
        }
        inner.entry_bytes += bytes;
        if inner.map.len() > self.cap {
            // The fresh insert carries the newest tick and is never the
            // victim (cap ≥ 1 ⇒ at least two entries here).
            let (&victim, age, victim_bytes) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, s)| (k, tick - s.last_used, s.bytes))
                .expect("over-cap map is non-empty");
            inner.map.remove(&victim);
            inner.entry_bytes -= victim_bytes;
            inner.evictions += 1;
            inner.eviction_age_sum += age;
            inner.last_eviction_age = age;
        }
    }

    /// Counter snapshots of both tiers.
    pub fn stats(&self) -> (ResultCacheStats, StoreTierStats) {
        let inner = self.inner.lock().expect("result cache lock");
        let memory = ResultCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            entry_bytes: inner.entry_bytes,
            eviction_age_sum: inner.eviction_age_sum,
            last_eviction_age: inner.last_eviction_age,
        };
        let store = self
            .store
            .as_ref()
            .map_or_else(StoreTierStats::default, |t| StoreTierStats {
                hits: t.counters.hits.load(Ordering::Relaxed),
                misses: t.counters.misses.load(Ordering::Relaxed),
                appends: t.counters.appends.load(Ordering::Relaxed),
            });
        (memory, store)
    }

    /// Stops the write-behind thread (draining everything queued) and
    /// flushes the store's footer so the next open needs no recovery
    /// scan. Idempotent; also run on drop.
    pub fn shutdown(&self) {
        let Some(tier) = &self.store else { return };
        drop(tier.sender.lock().expect("sender lock").take());
        if let Some(writer) = tier.writer.lock().expect("writer lock").take() {
            let _ = writer.join();
        }
        let _ = tier.store.lock().expect("store lock").flush();
    }
}

impl Drop for ResultTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The write-behind loop: drain whatever is queued, append it as one
/// block, repeat until the channel closes.
fn write_behind(rx: &Receiver<StoreRecord>, store: &Mutex<Store>, counters: &StoreCounters) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut store = store.lock().expect("store lock");
        if store.append(&batch).is_ok() {
            counters
                .appends
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pchls-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> StoreRecord {
        StoreRecord {
            key: StoreKey {
                fingerprint: i,
                latency_bound: 10,
                budget_digest: 1,
            },
            feasible: true,
            power_bound_bits: 0,
            area: i,
            latency: 9,
            peak_power_bits: 0,
            units: 1,
            trace: vec![0; i as usize % 3],
        }
    }

    #[test]
    fn memory_tier_lru_counts_hits_sizes_and_eviction_ages() {
        let tier = ResultTier::open(2, None).unwrap();
        assert!(!tier.persistent());
        tier.insert(record(1));
        tier.insert(record(2));
        assert!(tier.lookup(&record(1).key).is_some());
        tier.insert(record(3)); // evicts record 2 (LRU)
        assert!(tier.lookup(&record(2).key).is_none());
        assert!(tier.lookup(&record(1).key).is_some());
        let (mem, store) = tier.stats();
        assert_eq!((mem.hits, mem.misses, mem.evictions), (2, 1, 1));
        assert_eq!(mem.entries, 2);
        assert!(mem.entry_bytes >= 2 * std::mem::size_of::<StoreRecord>() as u64);
        assert!(mem.last_eviction_age > 0, "victim had aged ticks");
        assert!(mem.mean_eviction_age() > 0.0);
        assert!(mem.hit_rate() > 0.6 && mem.hit_rate() < 0.7);
        assert_eq!(store, StoreTierStats::default());
    }

    #[test]
    fn persistent_tier_answers_after_a_restart() {
        let dir = temp_dir("restart");
        {
            let tier = ResultTier::open(8, Some(&dir)).unwrap();
            for i in 0..5 {
                tier.insert(record(i));
            }
            tier.shutdown();
            let (_, store) = tier.stats();
            assert_eq!(store.appends, 5);
        }
        // A fresh tier (cold memory) finds everything in the store.
        let tier = ResultTier::open(8, Some(&dir)).unwrap();
        for i in 0..5 {
            assert_eq!(tier.lookup(&record(i).key), Some(record(i)), "record {i}");
        }
        assert!(tier.lookup(&record(99).key).is_none());
        let (mem, store) = tier.stats();
        assert_eq!((store.hits, store.misses), (5, 1));
        // Store hits were promoted: looking up again hits memory.
        assert!(tier.lookup(&record(0).key).is_some());
        let (mem2, store2) = tier.stats();
        assert_eq!(mem2.hits, mem.hits + 1);
        assert_eq!(store2.hits, store.hits);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
