//! The two result cache tiers in front of synthesis.
//!
//! The compile cache ([`crate::CompileCache`]) amortizes *compilation*;
//! this module amortizes the *synthesis outcome itself*, which is safe
//! because the engine is deterministic: one `(graph_fingerprint,
//! latency_bound, budget_digest)` key ([`StoreKey`]) names exactly one
//! result for a fixed [`SynthesisOptions`](pchls_core::SynthesisOptions)
//! configuration (a service applies one options value to every request,
//! so the key never needs to carry it; callers mixing options must use
//! separate store directories).
//!
//! * **Tier 1** — a bounded in-memory LRU of [`StoreRecord`]s. A hit
//!   skips compile *and* synthesis. The service runs one tier **per
//!   shard** (keys shard by fingerprint, so shards never contend).
//! * **Tier 2** (optional) — a persistent [`pchls_store::Store`] behind
//!   a [`StoreHandle`] **shared across shards** (the store file is one
//!   per directory; sharding it would split the on-disk index for no
//!   contention win — disk I/O is off the hot path anyway). Lookups
//!   that miss memory read the store under its lock; completed results
//!   are handed to one **write-behind** thread over a channel, so
//!   workers never block on disk. A restarted service re-opens the
//!   store and answers previously-seen points warm, byte-identical,
//!   without compiling anything.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pchls_store::{Store, StoreKey, StoreRecord};

/// Counter snapshot of the in-memory result tier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResultCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that found nothing in memory.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes held by resident entries.
    pub entry_bytes: u64,
    /// Sum over evictions of the victim's idle age in LRU ticks.
    pub eviction_age_sum: u64,
    /// Idle age (ticks) of the most recent eviction victim.
    pub last_eviction_age: u64,
}

impl ResultCacheStats {
    /// Fraction of lookups answered from memory; `0.0` before any.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Mean idle age (ticks) of eviction victims; `0.0` before any.
    #[must_use]
    pub fn mean_eviction_age(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.eviction_age_sum as f64 / self.evictions as f64
        }
    }

    /// Per-shard snapshots summed into a service-wide one.
    #[must_use]
    pub fn merged(snapshots: impl IntoIterator<Item = ResultCacheStats>) -> ResultCacheStats {
        snapshots
            .into_iter()
            .fold(ResultCacheStats::default(), |a, b| ResultCacheStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                evictions: a.evictions + b.evictions,
                entries: a.entries + b.entries,
                entry_bytes: a.entry_bytes + b.entry_bytes,
                eviction_age_sum: a.eviction_age_sum + b.eviction_age_sum,
                last_eviction_age: a.last_eviction_age.max(b.last_eviction_age),
            })
    }
}

/// Counter snapshot of the persistent tier (all zero when no store is
/// configured).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreTierStats {
    /// Lookups answered by the on-disk store.
    pub hits: u64,
    /// Lookups that reached the store and found nothing.
    pub misses: u64,
    /// Records handed to the write-behind thread and appended.
    pub appends: u64,
}

/// Approximate resident size of one cached record.
fn record_bytes(record: &StoreRecord) -> u64 {
    (std::mem::size_of::<StoreRecord>() + record.trace.len()) as u64
}

#[derive(Debug)]
struct ResultSlot {
    record: StoreRecord,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct ResultInner {
    map: HashMap<StoreKey, ResultSlot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    entry_bytes: u64,
    eviction_age_sum: u64,
    last_eviction_age: u64,
}

#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
}

/// One persistent store plus its write-behind thread, shareable by any
/// number of [`ResultTier`]s (the service gives each shard a tier over
/// the same handle).
#[derive(Debug)]
pub struct StoreHandle {
    store: Arc<Mutex<Store>>,
    /// Feed to the write-behind thread; dropped to initiate shutdown.
    sender: Mutex<Option<Sender<StoreRecord>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<StoreCounters>,
}

impl StoreHandle {
    /// Opens (or recovers) the store under `dir` and starts its
    /// write-behind thread.
    ///
    /// # Errors
    ///
    /// Opening or recovering the store failed.
    pub fn open(dir: &Path) -> io::Result<Arc<StoreHandle>> {
        let store = Arc::new(Mutex::new(Store::open(dir)?));
        let counters = Arc::new(StoreCounters::default());
        let (tx, rx) = std::sync::mpsc::channel::<StoreRecord>();
        let writer = {
            let store = Arc::clone(&store);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("pchls-store-writer".into())
                .spawn(move || write_behind(&rx, &store, &counters))
                .expect("spawn store writer")
        };
        Ok(Arc::new(StoreHandle {
            store,
            sender: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
            counters,
        }))
    }

    /// Whether the on-disk index knows `key` — an index probe only, no
    /// record read, no counter movement. The admission layer uses this
    /// to classify requests into the hit lane.
    #[must_use]
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.store.lock().expect("store lock").contains(key)
    }

    fn lookup(&self, key: &StoreKey) -> Option<StoreRecord> {
        let found = self
            .store
            .lock()
            .expect("store lock")
            .get(key)
            .unwrap_or_default();
        match found {
            Some(record) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn enqueue(&self, record: StoreRecord) {
        let sender = self.sender.lock().expect("sender lock");
        if let Some(tx) = sender.as_ref() {
            // The writer owning the receiver only exits once this
            // sender is dropped, so a send cannot fail while it is
            // held here.
            let _ = tx.send(record);
        }
    }

    /// Counter snapshot of the persistent tier.
    #[must_use]
    pub fn stats(&self) -> StoreTierStats {
        StoreTierStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
        }
    }

    /// Stops the write-behind thread (draining everything queued) and
    /// flushes the store's footer so the next open needs no recovery
    /// scan. Idempotent — safe to call once per sharing tier.
    pub fn shutdown(&self) {
        drop(self.sender.lock().expect("sender lock").take());
        if let Some(writer) = self.writer.lock().expect("writer lock").take() {
            let _ = writer.join();
        }
        let _ = self.store.lock().expect("store lock").flush();
    }
}

/// The two-tier result cache: memory LRU in front, optional persistent
/// store behind, write-behind appends.
#[derive(Debug)]
pub struct ResultTier {
    inner: Mutex<ResultInner>,
    cap: usize,
    store: Option<Arc<StoreHandle>>,
}

impl ResultTier {
    /// A tier holding at most `cap` records in memory (clamped to ≥ 1),
    /// optionally backed by its own store under `store_dir`. Sharded
    /// services share one store across tiers via
    /// [`ResultTier::with_store`] instead.
    ///
    /// # Errors
    ///
    /// Opening or recovering the store failed.
    pub fn open(cap: usize, store_dir: Option<&Path>) -> io::Result<ResultTier> {
        let store = store_dir.map(StoreHandle::open).transpose()?;
        Ok(ResultTier::with_store(cap, store))
    }

    /// A tier over an already-open (possibly shared) store handle.
    #[must_use]
    pub fn with_store(cap: usize, store: Option<Arc<StoreHandle>>) -> ResultTier {
        ResultTier {
            inner: Mutex::new(ResultInner::default()),
            cap: cap.max(1),
            store,
        }
    }

    /// Whether a persistent store backs this tier.
    #[must_use]
    pub fn persistent(&self) -> bool {
        self.store.is_some()
    }

    /// Whether `key` would be answered without synthesis — resident in
    /// memory or present in the store's index. Moves no counters and no
    /// LRU state: this is the admission layer's lane classifier, and a
    /// probe that shifted hit rates would make stats lie.
    #[must_use]
    pub fn contains(&self, key: &StoreKey) -> bool {
        if self
            .inner
            .lock()
            .expect("result cache lock")
            .map
            .contains_key(key)
        {
            return true;
        }
        self.store.as_ref().is_some_and(|s| s.contains(key))
    }

    /// Looks `key` up in memory, then (on miss) in the store. A store
    /// hit is promoted into the memory tier.
    pub fn lookup(&self, key: &StoreKey) -> Option<StoreRecord> {
        {
            let mut inner = self.inner.lock().expect("result cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(key) {
                slot.last_used = tick;
                let record = slot.record.clone();
                inner.hits += 1;
                return Some(record);
            }
            inner.misses += 1;
        }
        let record = self.store.as_ref()?.lookup(key)?;
        self.insert_memory(record.clone());
        Some(record)
    }

    /// Records a completed result in memory and (write-behind) on disk.
    pub fn insert(&self, record: StoreRecord) {
        if let Some(store) = &self.store {
            store.enqueue(record.clone());
        }
        self.insert_memory(record);
    }

    fn insert_memory(&self, record: StoreRecord) {
        let mut inner = self.inner.lock().expect("result cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = record_bytes(&record);
        let slot = ResultSlot {
            record,
            bytes,
            last_used: tick,
        };
        let key = slot.record.key;
        if let Some(old) = inner.map.insert(key, slot) {
            inner.entry_bytes -= old.bytes;
        }
        inner.entry_bytes += bytes;
        if inner.map.len() > self.cap {
            // The fresh insert carries the newest tick and is never the
            // victim (cap ≥ 1 ⇒ at least two entries here).
            let (&victim, age, victim_bytes) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, s)| (k, tick - s.last_used, s.bytes))
                .expect("over-cap map is non-empty");
            inner.map.remove(&victim);
            inner.entry_bytes -= victim_bytes;
            inner.evictions += 1;
            inner.eviction_age_sum += age;
            inner.last_eviction_age = age;
        }
    }

    /// Counter snapshots of both tiers. With a shared store handle the
    /// store counters are service-wide — sum only the memory side
    /// across shards.
    pub fn stats(&self) -> (ResultCacheStats, StoreTierStats) {
        let inner = self.inner.lock().expect("result cache lock");
        let memory = ResultCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            entry_bytes: inner.entry_bytes,
            eviction_age_sum: inner.eviction_age_sum,
            last_eviction_age: inner.last_eviction_age,
        };
        let store = self
            .store
            .as_ref()
            .map_or_else(StoreTierStats::default, |s| s.stats());
        (memory, store)
    }

    /// Stops the write-behind thread (draining everything queued) and
    /// flushes the store's footer so the next open needs no recovery
    /// scan. Idempotent; also run on drop. With a shared handle, the
    /// first tier to shut down stops the writer for all of them — the
    /// service does this only after every worker has been joined.
    pub fn shutdown(&self) {
        if let Some(store) = &self.store {
            store.shutdown();
        }
    }
}

impl Drop for ResultTier {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The write-behind loop: drain whatever is queued, append it as one
/// block, repeat until the channel closes.
fn write_behind(rx: &Receiver<StoreRecord>, store: &Mutex<Store>, counters: &StoreCounters) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        let mut store = store.lock().expect("store lock");
        if store.append(&batch).is_ok() {
            counters
                .appends
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pchls-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> StoreRecord {
        StoreRecord {
            key: StoreKey {
                fingerprint: i,
                latency_bound: 10,
                budget_digest: 1,
            },
            feasible: true,
            power_bound_bits: 0,
            area: i,
            latency: 9,
            peak_power_bits: 0,
            units: 1,
            trace: vec![0; i as usize % 3],
        }
    }

    #[test]
    fn memory_tier_lru_counts_hits_sizes_and_eviction_ages() {
        let tier = ResultTier::open(2, None).unwrap();
        assert!(!tier.persistent());
        tier.insert(record(1));
        tier.insert(record(2));
        assert!(tier.lookup(&record(1).key).is_some());
        tier.insert(record(3)); // evicts record 2 (LRU)
        assert!(tier.lookup(&record(2).key).is_none());
        assert!(tier.lookup(&record(1).key).is_some());
        let (mem, store) = tier.stats();
        assert_eq!((mem.hits, mem.misses, mem.evictions), (2, 1, 1));
        assert_eq!(mem.entries, 2);
        assert!(mem.entry_bytes >= 2 * std::mem::size_of::<StoreRecord>() as u64);
        assert!(mem.last_eviction_age > 0, "victim had aged ticks");
        assert!(mem.mean_eviction_age() > 0.0);
        assert!(mem.hit_rate() > 0.6 && mem.hit_rate() < 0.7);
        assert_eq!(store, StoreTierStats::default());
    }

    #[test]
    fn persistent_tier_answers_after_a_restart() {
        let dir = temp_dir("restart");
        {
            let tier = ResultTier::open(8, Some(&dir)).unwrap();
            for i in 0..5 {
                tier.insert(record(i));
            }
            tier.shutdown();
            let (_, store) = tier.stats();
            assert_eq!(store.appends, 5);
        }
        // A fresh tier (cold memory) finds everything in the store.
        let tier = ResultTier::open(8, Some(&dir)).unwrap();
        for i in 0..5 {
            assert_eq!(tier.lookup(&record(i).key), Some(record(i)), "record {i}");
        }
        assert!(tier.lookup(&record(99).key).is_none());
        let (mem, store) = tier.stats();
        assert_eq!((store.hits, store.misses), (5, 1));
        // Store hits were promoted: looking up again hits memory.
        assert!(tier.lookup(&record(0).key).is_some());
        let (mem2, store2) = tier.stats();
        assert_eq!(mem2.hits, mem.hits + 1);
        assert_eq!(store2.hits, store.hits);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn contains_probes_both_tiers_without_moving_counters() {
        let dir = temp_dir("contains");
        {
            let warm = ResultTier::open(4, Some(&dir)).unwrap();
            warm.insert(record(1));
        } // drop flushes record 1 to disk

        let tier = ResultTier::open(4, Some(&dir)).unwrap();
        tier.insert(record(2));
        assert!(tier.contains(&record(2).key), "memory-resident");
        assert!(tier.contains(&record(1).key), "on disk only");
        assert!(!tier.contains(&record(9).key));
        let (mem, disk) = tier.stats();
        // One insert, zero lookups: contains moved nothing.
        assert_eq!((mem.hits, mem.misses), (0, 0));
        assert_eq!((disk.hits, disk.misses), (0, 0));
        drop(tier);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shards_share_one_store_handle() {
        let dir = temp_dir("shared");
        let handle = StoreHandle::open(&dir).unwrap();
        let shard_a = ResultTier::with_store(4, Some(Arc::clone(&handle)));
        let shard_b = ResultTier::with_store(4, Some(Arc::clone(&handle)));
        shard_a.insert(record(1));
        shard_b.insert(record(2));
        shard_a.shutdown(); // idempotent, drains the shared writer
        shard_b.shutdown();
        assert_eq!(handle.stats().appends, 2, "both shards' writes landed");
        // A fresh tier over the same directory sees both records.
        drop((shard_a, shard_b));
        let fresh = ResultTier::open(4, Some(&dir)).unwrap();
        assert!(fresh.lookup(&record(1).key).is_some());
        assert!(fresh.lookup(&record(2).key).is_some());
        drop(fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
