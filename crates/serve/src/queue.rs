//! A bounded, blocking MPMC job queue (`Mutex` + two `Condvar`s).
//!
//! This is the admission-control point of the service: producers
//! (connection readers) block in [`JobQueue::push`] when `cap` jobs are
//! already waiting — backpressure propagates to the socket instead of
//! growing an unbounded buffer — and workers block in [`JobQueue::pop`]
//! until work or shutdown arrives. [`JobQueue::close`] drains cleanly:
//! pending jobs are still handed out, then every `pop` returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue safe for any number of producers and
/// consumers (see the module-level docs above).
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` waiting jobs (clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.items.len() >= self.cap && !inner.closed {
            inner = self.not_full.wait(inner).expect("queue lock");
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest job, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: blocked producers fail, workers drain the
    /// remaining jobs and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of waiting jobs.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_single_thread() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_a_pop_frees_space() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // Give the producer time to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Arc::new(JobQueue::new(4));
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue rejects new work");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(JobQueue::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
