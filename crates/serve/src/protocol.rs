//! The JSON-lines wire protocol.
//!
//! One JSON object per line in both directions, over stdio or TCP.
//! Requests are [`SubmitRequest`]s whose `op` field selects the verb;
//! every reply is a [`SubmitResponse`]. Responses to `synth` requests
//! may arrive **out of submission order** (the service is concurrent);
//! the echoed `id` correlates them.
//!
//! ```text
//! → {"op":"synth","id":1,"graph":"hal","latency":17,"power":25}
//! ← {"id":1,"ok":true,"error":null,"point":{"benchmark":"hal",...},"stats":null}
//! → {"op":"stats","id":2}
//! ← {"id":2,"ok":true,"error":null,"point":null,"stats":{"requests":1,...}}
//! ```
//!
//! Verbs:
//!
//! * `"synth"` (or empty): synthesize `graph` (a built-in benchmark
//!   name) or `graph_text` (an inline `.dfg` document) under
//!   `(latency, power)`. An optional `budget` object — the
//!   [`PowerBudget`] JSON shape, `{"constant":…}` / `{"steps":[[c,b],…]}`
//!   / `{"per_cycle":[…]}` — replaces the scalar `power` with a
//!   time-varying envelope; requests without it (or with it `null`)
//!   behave exactly as before, keeping the scalar wire format
//!   compatible byte for byte. Optional `deadline_ms` bounds the
//!   wall-clock time from acceptance; an overrun cancels the run
//!   mid-iteration. The reply's `point` is **byte-identical** to what
//!   `pchls batch` / `Session::synthesize` would emit for the same
//!   constraint point — infeasible points answer `ok:true` with a
//!   null-field point, exactly like a sweep does.
//! * `"cancel"`: best-effort cancel of the in-flight request with the
//!   same `id` on this connection. No reply of its own; the cancelled
//!   request replies `ok:false, error:"cancelled"` (unless it already
//!   finished).
//! * `"stats"`: immediate [`ServiceStats`] snapshot (does not queue
//!   behind synthesis jobs).

use pchls_core::{PowerBudget, SweepPoint};
use serde::{Deserialize, Serialize};

use crate::stats::ServiceStats;

/// A client request line. Fields irrelevant to the chosen `op` are
/// ignored; all fields default so clients only write what they mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Verb: `"synth"` (default when empty), `"cancel"` or `"stats"`.
    #[serde(default)]
    pub op: String,
    /// Client-chosen correlation id, echoed on the response. Should be
    /// unique per connection (it also addresses `cancel`).
    #[serde(default)]
    pub id: u64,
    /// Built-in benchmark name (`hal`, `cosine`, …); ignored when
    /// `graph_text` is set.
    #[serde(default)]
    pub graph: String,
    /// Inline graph in the textual `.dfg` format; takes precedence
    /// over `graph`.
    #[serde(default)]
    pub graph_text: String,
    /// Latency bound `T` in cycles (must be ≥ 1).
    #[serde(default)]
    pub latency: u32,
    /// Power bound `P<` (must be ≥ 0 and not NaN). Ignored when
    /// `budget` is set.
    #[serde(default)]
    pub power: f64,
    /// Optional time-varying budget envelope; when set it replaces the
    /// scalar `power` bound. Absent or `null` keeps the historical
    /// scalar behaviour (wire-compatible with pre-envelope clients).
    #[serde(default)]
    pub budget: Option<PowerBudget>,
    /// Wall-clock deadline in milliseconds from acceptance; `0` means
    /// none.
    #[serde(default)]
    pub deadline_ms: u64,
}

impl SubmitRequest {
    /// A `synth` request for a built-in benchmark graph.
    #[must_use]
    pub fn synth(id: u64, graph: &str, latency: u32, power: f64) -> SubmitRequest {
        SubmitRequest {
            op: "synth".to_owned(),
            id,
            graph: graph.to_owned(),
            graph_text: String::new(),
            latency,
            power,
            budget: None,
            deadline_ms: 0,
        }
    }

    /// A `synth` request carrying an inline `.dfg` document.
    #[must_use]
    pub fn synth_text(id: u64, graph_text: &str, latency: u32, power: f64) -> SubmitRequest {
        SubmitRequest {
            graph: String::new(),
            graph_text: graph_text.to_owned(),
            ..SubmitRequest::synth(id, "", latency, power)
        }
    }

    /// A `cancel` request for `id`.
    #[must_use]
    pub fn cancel(id: u64) -> SubmitRequest {
        SubmitRequest {
            op: "cancel".to_owned(),
            ..SubmitRequest::synth(id, "", 0, 0.0)
        }
    }

    /// A `stats` request.
    #[must_use]
    pub fn stats(id: u64) -> SubmitRequest {
        SubmitRequest {
            op: "stats".to_owned(),
            ..SubmitRequest::synth(id, "", 0, 0.0)
        }
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> SubmitRequest {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Replaces the scalar power bound with a budget envelope.
    #[must_use]
    pub fn with_budget(mut self, budget: PowerBudget) -> SubmitRequest {
        self.budget = Some(budget);
        self
    }
}

/// One reply line. Exactly one of `point` / `stats` is set on success;
/// `error` is set when `ok` is false.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitResponse {
    /// The request id this reply answers.
    pub id: u64,
    /// Whether the request was served. Note an *infeasible* constraint
    /// point is still `ok:true` — its `point` carries null fields,
    /// matching direct sweep/batch output byte for byte.
    pub ok: bool,
    /// Why the request failed, when `ok` is false.
    pub error: Option<String>,
    /// The synthesis outcome of a `synth` request.
    pub point: Option<SweepPoint>,
    /// The snapshot answering a `stats` request.
    pub stats: Option<ServiceStats>,
    /// The Prometheus-style text exposition answering a `metrics`
    /// request. Absent on every other reply (old clients that ignore
    /// unknown fields keep working).
    #[serde(default)]
    pub metrics: Option<String>,
}

impl SubmitResponse {
    /// A successful `synth` reply.
    #[must_use]
    pub fn point(id: u64, point: SweepPoint) -> SubmitResponse {
        SubmitResponse {
            id,
            ok: true,
            error: None,
            point: Some(point),
            stats: None,
            metrics: None,
        }
    }

    /// A failure reply.
    #[must_use]
    pub fn error(id: u64, message: impl Into<String>) -> SubmitResponse {
        SubmitResponse {
            id,
            ok: false,
            error: Some(message.into()),
            point: None,
            stats: None,
            metrics: None,
        }
    }

    /// A `stats` reply.
    #[must_use]
    pub fn stats(id: u64, stats: ServiceStats) -> SubmitResponse {
        SubmitResponse {
            id,
            ok: true,
            error: None,
            point: None,
            stats: Some(stats),
            metrics: None,
        }
    }

    /// A `metrics` reply: the text exposition, carried as one JSON
    /// string field.
    #[must_use]
    pub fn metrics(id: u64, text: String) -> SubmitResponse {
        SubmitResponse {
            id,
            ok: true,
            error: None,
            point: None,
            stats: None,
            metrics: Some(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_and_defaults_fill_in() {
        let req = SubmitRequest::synth(7, "hal", 17, 25.0).with_deadline_ms(500);
        let json = serde_json::to_string(&req).unwrap();
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        // A minimal hand-written line: everything else defaults.
        let sparse: SubmitRequest =
            serde_json::from_str(r#"{"id":3,"graph":"hal","latency":17,"power":25}"#).unwrap();
        assert_eq!(sparse.op, "");
        assert_eq!(sparse.deadline_ms, 0);
        assert_eq!(sparse.graph_text, "");
        assert_eq!((sparse.id, sparse.latency, sparse.power), (3, 17, 25.0));
    }

    #[test]
    fn response_round_trips() {
        let resp = SubmitResponse::error(9, "unknown graph `nope`");
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"ok\":false"));
        let back: SubmitResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn budget_field_round_trips_and_defaults_to_none() {
        let req = SubmitRequest::synth(3, "hal", 17, 0.0)
            .with_budget(PowerBudget::steps(vec![(0, 30.0), (8, 12.0)]));
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"steps\""), "{json}");
        let back: SubmitRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        // Pre-envelope wire lines — no `budget` key at all — still
        // parse, with the scalar semantics.
        let sparse: SubmitRequest =
            serde_json::from_str(r#"{"id":3,"graph":"hal","latency":17,"power":25}"#).unwrap();
        assert_eq!(sparse.budget, None);
        // An explicit null is the same as absent.
        let nulled: SubmitRequest =
            serde_json::from_str(r#"{"id":3,"graph":"hal","latency":17,"power":25,"budget":null}"#)
                .unwrap();
        assert_eq!(nulled.budget, None);
    }

    #[test]
    fn invalid_wire_budgets_are_rejected_at_parse_time() {
        for bad in [
            r#"{"id":1,"graph":"hal","latency":17,"budget":{"constant":-2}}"#,
            r#"{"id":1,"graph":"hal","latency":17,"budget":{"per_cycle":[]}}"#,
            r#"{"id":1,"graph":"hal","latency":17,"budget":{"bogus":1}}"#,
        ] {
            assert!(
                serde_json::from_str::<SubmitRequest>(bad).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn constructors_set_the_op() {
        assert_eq!(SubmitRequest::cancel(4).op, "cancel");
        assert_eq!(SubmitRequest::stats(5).op, "stats");
        assert_eq!(SubmitRequest::synth(6, "hal", 1, 1.0).op, "synth");
        assert!(!SubmitRequest::synth_text(7, "graph g {}", 1, 1.0)
            .graph_text
            .is_empty());
    }
}
