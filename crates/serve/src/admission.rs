//! Per-client admission control: token-bucket rate limiting.
//!
//! The reactor front end gives every connection a [`TokenBucket`];
//! each `synth` request takes one token. Tokens refill continuously at
//! the configured rate up to the burst capacity, so short bursts pass
//! while a sustained flood is clipped to the steady rate — the excess
//! answered with a well-formed `rate_limited` error, never a dropped
//! connection.
//!
//! Time is always passed in (`now: Instant`), never read internally, so
//! refill behaviour is testable under a mocked clock.

use std::time::Instant;

/// A continuous-refill token bucket (see module docs).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum tokens the bucket holds — the burst allowance.
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with room for `burst`
    /// tokens (clamped to ≥ 1 so a fresh bucket always admits one
    /// request). Starts full.
    #[must_use]
    pub fn new(rate_per_sec: f64, burst: f64, now: Instant) -> TokenBucket {
        let capacity = burst.max(1.0);
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec: rate_per_sec.max(0.0),
            last: now,
        }
    }

    /// Refills for the time elapsed since the last call, then takes one
    /// token if available. `false` means rate-limited.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics/tests).
    #[must_use]
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_passes_then_flood_is_clipped() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 3.0, t0);
        // The initial burst of 3 is admitted back-to-back…
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        // …and the fourth request at the same instant is clipped.
        assert!(!bucket.try_take(t0));
    }

    #[test]
    fn tokens_refill_under_a_mocked_clock() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(10.0, 1.0, t0);
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "bucket emptied");
        // 50ms at 10/s refills 0.5 tokens — still not enough.
        assert!(!bucket.try_take(t0 + Duration::from_millis(50)));
        // 60ms more crosses 1.0 (0.5 + 0.6 ≥ 1).
        assert!(bucket.try_take(t0 + Duration::from_millis(110)));
        assert!(!bucket.try_take(t0 + Duration::from_millis(110)));
    }

    #[test]
    fn refill_never_exceeds_burst_capacity() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1000.0, 2.0, t0);
        // An hour idle: still only `burst` tokens banked.
        let later = t0 + Duration::from_secs(3600);
        assert!(bucket.try_take(later));
        assert!(bucket.try_take(later));
        assert!(!bucket.try_take(later));
    }

    #[test]
    fn sustained_rate_matches_refill_rate() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(100.0, 1.0, t0);
        // 1000 attempts over one simulated second at 1ms spacing:
        // close to 100 should pass (one initial + ~99 refilled; float
        // accumulation may cost a refill interval one extra tick, so
        // the band is a little loose on the low side).
        let admitted = (0..1000)
            .filter(|i| bucket.try_take(t0 + Duration::from_millis(*i)))
            .count();
        assert!(
            (90..=101).contains(&admitted),
            "admitted {admitted}, want ~100"
        );
    }

    #[test]
    fn zero_rate_admits_only_the_burst_forever() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(0.0, 2.0, t0);
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0 + Duration::from_secs(3600)));
        assert!(bucket.available() < 1.0);
    }

    #[test]
    fn clock_going_backwards_is_harmless() {
        let t0 = Instant::now() + Duration::from_secs(10);
        let mut bucket = TokenBucket::new(10.0, 1.0, t0);
        assert!(bucket.try_take(t0));
        // An earlier `now` must not mint tokens or panic.
        assert!(!bucket.try_take(t0 - Duration::from_secs(5)));
    }
}
