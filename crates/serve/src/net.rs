//! Wire front ends: the JSON-lines protocol over stdio and TCP.
//!
//! # TCP — one reactor thread
//!
//! [`serve_tcp_with`] runs the accept loop *and all connection I/O* on
//! a single [`pchls_net::Reactor`] thread: nonblocking sockets,
//! level-triggered readiness, capped [`LineCodec`] framing per
//! connection, and a timer wheel arming each request's `deadline_ms`.
//! Synthesis happens on the service's sharded worker pools; finished
//! responses come back over a completion channel paired with the
//! reactor's waker, so the I/O thread sleeps in `poll` until there is
//! something to do.
//!
//! The front end is the admission layer:
//!
//! * requests are submitted with [`Service::try_submit`] semantics — a
//!   saturated shard answers `overloaded` immediately instead of
//!   blocking the reactor or dropping the connection;
//! * each connection gets a token bucket (when the service configures a
//!   rate) — excess `synth` requests answer `rate_limited`;
//! * request lines longer than the configured cap answer a structured
//!   error and are discarded without unbounded buffering, and a
//!   connection whose unread output exceeds [`MAX_OUTPUT_BUFFER`] is
//!   dropped (a reader that slow is indistinguishable from hostile).
//!
//! Shutdown is a first-class path: [`ShutdownHandle::request_stop`]
//! flips a flag and wakes the reactor, which closes every connection
//! and returns — no `unreachable!`, no leaked accept loop.
//!
//! # Stdio — one blocking connection
//!
//! [`serve_stdio`] serves stdin/stdout as a single trusted local
//! connection: same framing and line cap, but blocking
//! [`Service::submit`] backpressure instead of shedding, with a
//! dedicated writer thread so out-of-order worker replies interleave
//! safely.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use pchls_net::{Backend, Interest, LineCodec, Reactor, TimerId, Token, Waker, WriteBuffer};

use crate::admission::TokenBucket;
use crate::protocol::{SubmitRequest, SubmitResponse};
use crate::service::{ReplySink, Service, SubmitOutcome};
use crate::stats::render_serve_stats;

/// The reactor token of the TCP listener; connections use `slot + 1`.
const LISTENER_TOKEN: Token = Token(0);

/// Timer payload token of the periodic `--stats-interval` line. Timer
/// tokens are a namespace separate from fd registrations, and request
/// deadline keys count up from zero — the top value can't collide.
const STATS_TIMER_TOKEN: Token = Token(usize::MAX);

/// Hard cap on unread response bytes buffered per connection before the
/// peer is declared dead-or-hostile and dropped.
const MAX_OUTPUT_BUFFER: usize = 4 << 20;

/// Cooperative stop signal for [`serve_tcp_with`].
///
/// Share one handle between the serving thread and whoever decides to
/// stop (a signal handler, a test, a supervisor). `request_stop` flips
/// the flag and wakes the reactor, so the serve loop observes it
/// immediately even while blocked in `poll` with no traffic.
#[derive(Default)]
pub struct ShutdownHandle {
    stop: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl ShutdownHandle {
    /// A handle in the running state.
    #[must_use]
    pub fn new() -> ShutdownHandle {
        ShutdownHandle::default()
    }

    /// Asks the serve loop to stop: closes every connection, returns
    /// `Ok(())` from [`serve_tcp_with`]. Idempotent; safe from any
    /// thread (and from before the loop even starts).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(waker) = &*self.waker.lock().expect("shutdown waker lock") {
            let _ = waker.wake();
        }
    }

    /// Whether a stop has been requested.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn attach(&self, waker: Waker) {
        *self.waker.lock().expect("shutdown waker lock") = Some(waker);
    }

    fn detach(&self) {
        self.waker.lock().expect("shutdown waker lock").take();
    }
}

impl std::fmt::Debug for ShutdownHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShutdownHandle")
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

/// One reactor-managed connection.
struct Conn {
    stream: TcpStream,
    token: Token,
    conn_id: u64,
    codec: LineCodec,
    out: WriteBuffer,
    bucket: Option<TokenBucket>,
    /// In-flight cancellation flags by request id.
    cancels: HashMap<u64, Arc<AtomicBool>>,
    /// Armed `deadline_ms` timers by request id.
    deadline_timers: HashMap<u64, TimerId>,
    /// Responses still owed to this connection (accepted jobs *and*
    /// already-answered refusals riding the completion channel).
    in_flight: usize,
    read_closed: bool,
    interest: Interest,
}

impl Conn {
    /// Serializes `response` onto the connection's output buffer.
    fn queue_response(&mut self, response: &SubmitResponse) {
        if let Ok(line) = serde_json::to_string(response) {
            self.out.queue(line.as_bytes());
            self.out.queue(b"\n");
        }
    }
}

/// The reactor serve loop's state.
struct Server<'a> {
    service: &'a Service,
    reactor: Reactor,
    waker: Waker,
    done_tx: mpsc::Sender<(u64, SubmitResponse)>,
    done_rx: mpsc::Receiver<(u64, SubmitResponse)>,
    conns: Vec<Option<Conn>>,
    /// conn_id → slot (connections are also addressed by the stable id
    /// riding the completion channel, which outlives slot reuse).
    by_id: HashMap<u64, usize>,
    /// Deadline-timer payload key → (conn_id, request id).
    timer_keys: HashMap<usize, (u64, u64)>,
    next_conn_id: u64,
    next_timer_key: usize,
}

impl<'a> Server<'a> {
    fn new(service: &'a Service) -> io::Result<Server<'a>> {
        let reactor = Reactor::new(Backend::Auto)?;
        let waker = reactor.waker();
        let (done_tx, done_rx) = mpsc::channel();
        Ok(Server {
            service,
            reactor,
            waker,
            done_tx,
            done_rx,
            conns: Vec::new(),
            by_id: HashMap::new(),
            timer_keys: HashMap::new(),
            next_conn_id: 0,
            next_timer_key: 0,
        })
    }

    /// Accepts every pending connection (level-triggered: drain until
    /// `WouldBlock`).
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => self.add_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (ECONNABORTED and friends):
                // the listener stays registered, retry on the next
                // readiness.
                Err(_) => break,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return; // connection died before its first byte
        }
        let slot = match self.conns.iter().position(Option::is_none) {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = Token(slot + 1);
        if self
            .reactor
            .register(stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            return;
        }
        let limits = self.service.limits();
        let conn_id = self.next_conn_id;
        self.next_conn_id += 1;
        let bucket = (limits.rate_per_sec > 0.0)
            .then(|| TokenBucket::new(limits.rate_per_sec, limits.burst, Instant::now()));
        self.by_id.insert(conn_id, slot);
        self.conns[slot] = Some(Conn {
            stream,
            token,
            conn_id,
            codec: LineCodec::new(limits.max_line_bytes),
            out: WriteBuffer::new(),
            bucket,
            cancels: HashMap::new(),
            deadline_timers: HashMap::new(),
            in_flight: 0,
            read_closed: false,
            interest: Interest::READABLE,
        });
    }

    /// Handles one readiness event for the connection in `slot`.
    fn conn_event(&mut self, slot: usize, readable: bool, writable: bool, error: bool) {
        let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return; // spurious event for an already-dropped connection
        };
        let mut alive = !error;
        if alive && readable {
            alive = self.read_ready(&mut conn);
        }
        // Writable readiness and freshly queued responses share one
        // flush path.
        if alive && (writable || !conn.out.is_empty()) {
            alive = self.flush_and_update(&mut conn);
        }
        self.settle(slot, conn, alive);
    }

    /// Drains readable bytes into the codec and dispatches every
    /// complete frame. Returns `false` when the connection must drop.
    fn read_ready(&mut self, conn: &mut Conn) -> bool {
        let mut scratch = [0u8; 8192];
        loop {
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.codec.push(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        while let Some(frame) = conn.codec.next_frame() {
            match frame {
                Ok(line) => self.dispatch_line(conn, &line),
                Err(e) => {
                    // The oversized line was discarded by the codec —
                    // answer with a parseable error instead of letting
                    // the buffer grow without bound.
                    conn.queue_response(&SubmitResponse::error(0, e.to_string()));
                }
            }
        }
        true
    }

    /// Parses and executes one request line.
    fn dispatch_line(&mut self, conn: &mut Conn, line: &[u8]) {
        if line.iter().all(u8::is_ascii_whitespace) {
            return;
        }
        let request: SubmitRequest = match serde_json::from_slice(line) {
            Ok(r) => r,
            Err(e) => {
                conn.queue_response(&SubmitResponse::error(0, format!("bad request: {e}")));
                return;
            }
        };
        match request.op.as_str() {
            "" | "synth" => self.dispatch_synth(conn, request),
            "cancel" => {
                // Best effort: unknown or finished ids are a no-op; the
                // cancelled request sends its own reply.
                if let Some(flag) = conn.cancels.get(&request.id) {
                    flag.store(true, Ordering::Relaxed);
                }
            }
            "stats" => {
                // Served inline on the reactor thread — never queued
                // behind synthesis.
                conn.queue_response(&SubmitResponse::stats(request.id, self.service.stats()));
            }
            "metrics" => {
                // Inline and rate-limit exempt, like `stats`: a scraper
                // must see the overload it is diagnosing, not be shed
                // by it.
                conn.queue_response(&SubmitResponse::metrics(
                    request.id,
                    self.service.metrics_text(),
                ));
            }
            other => {
                conn.queue_response(&SubmitResponse::error(
                    request.id,
                    format!("unknown op `{other}`"),
                ));
            }
        }
    }

    fn dispatch_synth(&mut self, conn: &mut Conn, request: SubmitRequest) {
        // Lazily prune flags of finished requests so a long-lived
        // connection's map stays bounded by its in-flight window, not
        // its lifetime request count.
        if conn.cancels.len() >= 64 {
            conn.cancels.retain(|_, flag| Arc::strong_count(flag) > 1);
        }
        if let Some(bucket) = &mut conn.bucket {
            if !bucket.try_take(Instant::now()) {
                self.service.note_rate_limited();
                conn.queue_response(&SubmitResponse::error(request.id, "rate_limited"));
                return;
            }
        }
        let id = request.id;
        let deadline_ms = request.deadline_ms;
        let sink = ReplySink::Conn {
            conn: conn.conn_id,
            tx: self.done_tx.clone(),
            waker: self.waker.clone(),
        };
        // Whatever happens next, exactly one response rides the
        // completion channel (accepted jobs reply from a worker;
        // refusals were answered inside `submit_sink`).
        conn.in_flight += 1;
        if let SubmitOutcome::Accepted(cancel) = self.service.submit_sink(request, sink) {
            conn.cancels.insert(id, Arc::clone(&cancel));
            if deadline_ms > 0 {
                // The service's progress hook enforces the deadline
                // once synthesis runs; this timer additionally covers
                // time spent *queued*.
                let key = self.next_timer_key;
                self.next_timer_key += 1;
                let timer = self.reactor.arm_timer(
                    Instant::now() + Duration::from_millis(deadline_ms),
                    Token(key),
                );
                self.timer_keys.insert(key, (conn.conn_id, id));
                conn.deadline_timers.insert(id, timer);
            }
        }
    }

    /// A deadline timer fired: cancel the request if it is still in
    /// flight.
    fn timer_fired(&mut self, token: Token) {
        let Some((conn_id, request_id)) = self.timer_keys.remove(&token.0) else {
            return;
        };
        let Some(&slot) = self.by_id.get(&conn_id) else {
            return;
        };
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.deadline_timers.remove(&request_id);
            if let Some(flag) = conn.cancels.get(&request_id) {
                flag.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Delivers every finished response waiting on the completion
    /// channel to its connection's output buffer.
    fn deliver_completions(&mut self) {
        while let Ok((conn_id, response)) = self.done_rx.try_recv() {
            let Some(&slot) = self.by_id.get(&conn_id) else {
                continue; // connection dropped before its reply landed
            };
            let Some(mut conn) = self.conns.get_mut(slot).and_then(Option::take) else {
                continue;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            conn.cancels.remove(&response.id);
            if let Some(timer) = conn.deadline_timers.remove(&response.id) {
                if let Some(key) = self.reactor.cancel_timer(timer) {
                    self.timer_keys.remove(&key.0);
                }
            }
            conn.queue_response(&response);
            let alive = self.flush_and_update(&mut conn);
            self.settle(slot, conn, alive);
        }
    }

    /// Flushes the output buffer and reconciles the registered
    /// interest. Returns `false` when the connection must drop (write
    /// failure or a pathologically slow reader).
    fn flush_and_update(&mut self, conn: &mut Conn) -> bool {
        if !conn.out.is_empty() && conn.out.write_to(&mut conn.stream).is_err() {
            return false;
        }
        if conn.out.pending() > MAX_OUTPUT_BUFFER {
            return false;
        }
        let want = Interest {
            readable: !conn.read_closed,
            writable: !conn.out.is_empty(),
        };
        if want != conn.interest {
            if self
                .reactor
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_err()
            {
                return false;
            }
            conn.interest = want;
        }
        true
    }

    /// Puts a live connection back in its slot — or retires it: a
    /// half-closed peer that has been answered everything it asked for
    /// is done.
    fn settle(&mut self, slot: usize, conn: Conn, alive: bool) {
        let finished = conn.read_closed && conn.in_flight == 0 && conn.out.is_empty();
        if alive && !finished {
            self.conns[slot] = Some(conn);
        } else {
            self.retire(conn);
        }
    }

    /// Tears one connection down: abandoned in-flight work is
    /// cancelled, its timers disarmed, the socket deregistered.
    fn retire(&mut self, conn: Conn) {
        for flag in conn.cancels.values() {
            flag.store(true, Ordering::Relaxed);
        }
        for (_, timer) in conn.deadline_timers {
            if let Some(key) = self.reactor.cancel_timer(timer) {
                self.timer_keys.remove(&key.0);
            }
        }
        self.reactor.deregister(conn.stream.as_raw_fd());
        self.by_id.remove(&conn.conn_id);
        // Dropping the stream closes the socket; late completions for
        // this conn_id fall through `deliver_completions` harmlessly.
    }

    fn close_all(&mut self) {
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].take() {
                self.retire(conn);
            }
        }
    }
}

/// Accepts and serves connections on one reactor thread until
/// `shutdown` requests a stop (see the module docs for the admission
/// behaviour). Returns `Ok(())` after a requested stop with every
/// connection closed.
///
/// # Errors
///
/// Setting up the reactor, registering the listener, or a failed
/// `poll` — per-connection errors never end the loop.
pub fn serve_tcp_with(
    service: &Service,
    listener: &TcpListener,
    shutdown: &ShutdownHandle,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut server = Server::new(service)?;
    server
        .reactor
        .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
    shutdown.attach(server.waker.clone());
    // Periodic in-flight stats line, riding the same timer wheel as the
    // request deadlines (an idle server still reports on schedule).
    let stats_every = (service.limits().stats_interval > 0)
        .then(|| Duration::from_secs(service.limits().stats_interval));
    if let Some(every) = stats_every {
        server
            .reactor
            .arm_timer(Instant::now() + every, STATS_TIMER_TOKEN);
    }
    let mut events = Vec::new();
    let mut expired = Vec::new();
    while !shutdown.is_stopped() {
        server
            .reactor
            .poll(&mut events, &mut expired, Instant::now())?;
        if shutdown.is_stopped() {
            break;
        }
        // `poll` appends expired payloads without clearing (callers may
        // accumulate); drain so a token fires exactly once.
        for timer in expired.drain(..) {
            if timer == STATS_TIMER_TOKEN {
                eprintln!("{}", render_serve_stats(&service.stats()));
                if let Some(every) = stats_every {
                    server
                        .reactor
                        .arm_timer(Instant::now() + every, STATS_TIMER_TOKEN);
                }
            } else {
                server.timer_fired(timer);
            }
        }
        server.deliver_completions();
        for &ev in &events {
            if ev.token == LISTENER_TOKEN {
                server.accept_ready(listener);
            } else {
                server.conn_event(ev.token.0 - 1, ev.readable, ev.writable, ev.error);
            }
        }
    }
    shutdown.detach();
    server.reactor.deregister(listener.as_raw_fd());
    server.close_all();
    Ok(())
}

/// [`serve_tcp_with`] with no stop signal: serves until the process
/// exits or the reactor itself fails. The `pchls serve` CLI uses this
/// for its foreground mode.
///
/// # Errors
///
/// As [`serve_tcp_with`].
pub fn serve_tcp(service: &Service, listener: &TcpListener) -> io::Result<()> {
    serve_tcp_with(service, listener, &ShutdownHandle::new())
}

/// Serves one already-connected peer over blocking byte streams:
/// `reader` supplies request lines (framed and length-capped by
/// [`LineCodec`]), `writer` receives response lines. Requests are
/// submitted with blocking backpressure — a trusted local client waits
/// instead of being shed. Returns when the peer closes its half and
/// every accepted job has been answered.
///
/// # Errors
///
/// Propagates read errors from `reader`; write errors end the writer
/// thread (the remaining replies are dropped, like a peer that hung
/// up).
pub fn handle_connection<R, W>(service: &Service, mut reader: R, writer: W) -> io::Result<()>
where
    R: Read,
    W: Write + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<SubmitResponse>();
    let writer_thread = std::thread::Builder::new()
        .name("pchls-serve-writer".to_owned())
        .spawn(move || {
            let mut writer = writer;
            while let Ok(response) = rx.recv() {
                let line = match serde_json::to_string(&response) {
                    Ok(line) => line,
                    Err(_) => continue, // unserializable replies don't exist
                };
                if writeln!(writer, "{line}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // peer hung up; drain and drop the rest
                }
            }
        })
        .expect("spawn connection writer");

    // In-flight cancellation flags of this connection, by request id.
    let mut cancels: HashMap<u64, Arc<AtomicBool>> = HashMap::new();
    let mut codec = LineCodec::new(service.limits().max_line_bytes);
    let mut scratch = [0u8; 8192];
    'read: loop {
        let n = match reader.read(&mut scratch) {
            Ok(0) => break 'read,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        codec.push(&scratch[..n]);
        while let Some(frame) = codec.next_frame() {
            let line = match frame {
                Ok(line) => line,
                Err(e) => {
                    let _ = tx.send(SubmitResponse::error(0, e.to_string()));
                    continue;
                }
            };
            if line.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            let request: SubmitRequest = match serde_json::from_slice(&line) {
                Ok(r) => r,
                Err(e) => {
                    let _ = tx.send(SubmitResponse::error(0, format!("bad request: {e}")));
                    continue;
                }
            };
            match request.op.as_str() {
                "" | "synth" => {
                    let id = request.id;
                    // Lazily prune flags of finished requests (the
                    // worker dropped its clone, leaving ours the only
                    // one) so a long-lived connection's map stays
                    // bounded by its in-flight window.
                    if cancels.len() >= 64 {
                        cancels.retain(|_, flag| Arc::strong_count(flag) > 1);
                    }
                    match service.submit(request, tx.clone()) {
                        Ok(cancel) => {
                            cancels.insert(id, cancel);
                        }
                        Err(_) => {
                            let _ = tx.send(SubmitResponse::error(id, "service is shutting down"));
                        }
                    }
                }
                "cancel" => {
                    // Best effort: unknown or finished ids are a no-op;
                    // the cancelled request sends its own reply.
                    if let Some(flag) = cancels.get(&request.id) {
                        flag.store(true, Ordering::Relaxed);
                    }
                }
                "stats" => {
                    let _ = tx.send(SubmitResponse::stats(request.id, service.stats()));
                }
                "metrics" => {
                    let _ = tx.send(SubmitResponse::metrics(request.id, service.metrics_text()));
                }
                other => {
                    let _ = tx.send(SubmitResponse::error(
                        request.id,
                        format!("unknown op `{other}`"),
                    ));
                }
            }
        }
    }

    // EOF: drop our sender; the writer exits after the last in-flight
    // job (each holds its own clone) delivers its reply.
    drop(tx);
    let _ = writer_thread.join();
    Ok(())
}

/// Serves the process's stdin/stdout as one connection — the `pchls
/// serve --stdio` mode. Returns at stdin EOF, after every accepted job
/// answered.
///
/// # Errors
///
/// As [`handle_connection`].
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    handle_connection(service, io::stdin().lock(), io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use pchls_core::Engine;
    use pchls_fulib::paper_library;
    use std::io::{BufRead, BufReader};

    /// Runs a full scripted connection over in-memory pipes and returns
    /// the parsed response lines.
    fn drive(service: &Service, script: &str) -> Vec<SubmitResponse> {
        let (mut read_half, write_half) = io_pipe();
        handle_connection(service, script.as_bytes(), write_half).unwrap();
        let mut out = String::new();
        read_half.read_to_string(&mut out).unwrap();
        out.lines()
            .map(|l| serde_json::from_str(l).expect("well-formed response line"))
            .collect()
    }

    /// A tiny in-memory pipe: the writer half is `Write + Send`, the
    /// reader half collects everything written.
    fn io_pipe() -> (SharedBuf, SharedBuf) {
        let buf = Arc::new(std::sync::Mutex::new(Vec::new()));
        (SharedBuf(Arc::clone(&buf)), SharedBuf(buf))
    }

    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn read_to_string(&mut self, out: &mut String) -> io::Result<()> {
            out.push_str(std::str::from_utf8(&self.0.lock().unwrap()).unwrap());
            Ok(())
        }
    }

    fn service() -> Service {
        Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn scripted_connection_answers_every_line() {
        let service = service();
        let script = concat!(
            r#"{"op":"synth","id":1,"graph":"hal","latency":17,"power":25}"#,
            "\n",
            "\n", // blank lines are ignored
            r#"{"op":"stats","id":2}"#,
            "\n",
            r#"{"op":"frobnicate","id":3}"#,
            "\n",
            "this is not json\n",
        );
        let mut responses = drive(&service, script);
        assert_eq!(responses.len(), 4);
        // Synthesis replies may arrive out of order; sort by id.
        responses.sort_by_key(|r| r.id);
        let synth = responses.iter().find(|r| r.id == 1).unwrap();
        assert!(synth.ok && synth.point.is_some());
        let stats = responses.iter().find(|r| r.id == 2).unwrap();
        assert!(stats.ok && stats.stats.is_some());
        let unknown = responses.iter().find(|r| r.id == 3).unwrap();
        assert!(!unknown.ok);
        assert!(unknown.error.as_ref().unwrap().contains("frobnicate"));
        let bad = responses.iter().find(|r| r.id == 0).unwrap();
        assert!(!bad.ok);
        assert!(bad.error.as_ref().unwrap().contains("bad request"));
    }

    #[test]
    fn eof_waits_for_in_flight_jobs() {
        let service = service();
        // Three jobs, then immediate EOF: all three must still answer.
        let script = concat!(
            r#"{"id":1,"graph":"hal","latency":17,"power":25}"#,
            "\n",
            r#"{"id":2,"graph":"hal","latency":17,"power":40}"#,
            "\n",
            r#"{"id":3,"graph":"cosine","latency":15,"power":40}"#,
            "\n",
        );
        let responses = drive(&service, script);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(responses.iter().all(|r| r.ok));
    }

    #[test]
    fn oversized_lines_answer_a_structured_error_not_a_hangup() {
        let service = Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 1,
                max_line_bytes: 128,
                ..ServiceConfig::default()
            },
        );
        let flood = "x".repeat(4096);
        let script = format!(
            "{flood}\n{}\n",
            r#"{"op":"synth","id":7,"graph":"hal","latency":17,"power":25}"#
        );
        let responses = drive(&service, &script);
        assert_eq!(responses.len(), 2);
        let err = responses.iter().find(|r| r.id == 0).unwrap();
        assert!(!err.ok);
        assert!(
            err.error.as_ref().unwrap().contains("128"),
            "error names the cap: {:?}",
            err.error
        );
        // The connection survived and the next request still answers.
        let ok = responses.iter().find(|r| r.id == 7).unwrap();
        assert!(ok.ok && ok.point.is_some());
    }

    /// One scripted client over real TCP against the reactor loop.
    fn tcp_exchange(stream: &mut TcpStream, line: &str) -> SubmitResponse {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        serde_json::from_str(&response).expect("well-formed response line")
    }

    #[test]
    fn reactor_tcp_round_trips_and_stops_cleanly() {
        let service = service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownHandle::new();
        std::thread::scope(|scope| {
            let loop_thread = scope.spawn(|| serve_tcp_with(&service, &listener, &shutdown));
            let mut stream = TcpStream::connect(addr).unwrap();
            let synth = tcp_exchange(
                &mut stream,
                r#"{"id":1,"graph":"hal","latency":17,"power":25}"#,
            );
            assert!(synth.ok, "{:?}", synth.error);
            assert!(synth.point.is_some());
            let stats = tcp_exchange(&mut stream, r#"{"op":"stats","id":2}"#);
            assert_eq!(stats.stats.unwrap().completed, 1);
            // A second connection shares the same reactor.
            let mut second = TcpStream::connect(addr).unwrap();
            let warm = tcp_exchange(
                &mut second,
                r#"{"id":3,"graph":"hal","latency":17,"power":25}"#,
            );
            assert!(warm.ok);
            // The fixed shutdown path: request a stop, the loop returns.
            shutdown.request_stop();
            loop_thread.join().unwrap().unwrap();
        });
        // The service survives the front end stopping.
        assert!(service.call(SubmitRequest::synth(9, "hal", 17, 25.0)).ok);
    }

    #[test]
    fn stop_before_any_connection_returns_immediately() {
        let service = service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shutdown = ShutdownHandle::new();
        shutdown.request_stop();
        // Requested before the loop starts: it must still observe it.
        serve_tcp_with(&service, &listener, &shutdown).unwrap();
    }

    #[test]
    fn rate_limited_connections_get_structured_refusals() {
        let service = Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 1,
                rate_per_sec: 0.001, // effectively: the burst, then nothing
                burst: 2.0,
                ..ServiceConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownHandle::new();
        std::thread::scope(|scope| {
            let loop_thread = scope.spawn(|| serve_tcp_with(&service, &listener, &shutdown));
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut limited = 0;
            for id in 0..5 {
                let resp = tcp_exchange(
                    &mut stream,
                    &format!(r#"{{"id":{id},"graph":"hal","latency":17,"power":25}}"#),
                );
                if resp.error.as_deref() == Some("rate_limited") {
                    limited += 1;
                } else {
                    assert!(resp.ok, "{:?}", resp.error);
                }
            }
            assert_eq!(limited, 3, "burst of 2 admitted, the rest clipped");
            // Stats ops are exempt from the synth bucket.
            let stats = tcp_exchange(&mut stream, r#"{"op":"stats","id":99}"#);
            assert_eq!(stats.stats.unwrap().rate_limited, 3);
            shutdown.request_stop();
            loop_thread.join().unwrap().unwrap();
        });
    }
}
