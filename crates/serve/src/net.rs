//! Wire front-ends: the JSON-lines protocol over stdio and TCP.
//!
//! Both front-ends share [`handle_connection`]: a reader loop parses
//! one [`SubmitRequest`] per line and dispatches it, while a dedicated
//! writer thread owns the output half and serializes every
//! [`SubmitResponse`] as one line. Responses flow through a channel, so
//! synthesis replies (which arrive from worker threads, possibly out of
//! order) and immediate replies (stats, errors) interleave safely on
//! one stream.
//!
//! Connection teardown is graceful by construction: when the reader
//! sees EOF it drops its channel sender; each in-flight job holds its
//! own sender clone, so the writer drains until the last reply landed
//! and only then hangs up.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

use crate::protocol::{SubmitRequest, SubmitResponse};
use crate::service::Service;

/// Serves one already-connected peer: `reader` supplies request lines,
/// `writer` receives response lines. Returns when the peer closes its
/// half and every accepted job has been answered.
///
/// # Errors
///
/// Propagates read errors from `reader`; write errors end the writer
/// thread (the remaining replies are dropped, like a peer that hung
/// up).
pub fn handle_connection<R, W>(service: &Service, reader: R, writer: W) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<SubmitResponse>();
    let writer_thread = std::thread::Builder::new()
        .name("pchls-serve-writer".to_owned())
        .spawn(move || {
            let mut writer = writer;
            while let Ok(response) = rx.recv() {
                let line = match serde_json::to_string(&response) {
                    Ok(line) => line,
                    Err(_) => continue, // unserializable replies don't exist
                };
                if writeln!(writer, "{line}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // peer hung up; drain and drop the rest
                }
            }
        })
        .expect("spawn connection writer");

    // In-flight cancellation flags of this connection, by request id.
    let mut cancels: HashMap<u64, Arc<AtomicBool>> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request: SubmitRequest = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                let _ = tx.send(SubmitResponse::error(0, format!("bad request: {e}")));
                continue;
            }
        };
        match request.op.as_str() {
            "" | "synth" => {
                let id = request.id;
                // Lazily prune flags of finished requests (the worker
                // dropped its clone, leaving ours the only one) so a
                // long-lived connection's map stays bounded by its
                // in-flight window, not its lifetime request count.
                if cancels.len() >= 64 {
                    cancels.retain(|_, flag| Arc::strong_count(flag) > 1);
                }
                match service.submit(request, tx.clone()) {
                    Ok(cancel) => {
                        cancels.insert(id, cancel);
                    }
                    Err(_) => {
                        let _ = tx.send(SubmitResponse::error(id, "service is shutting down"));
                    }
                }
            }
            "cancel" => {
                // Best effort: unknown or finished ids are a no-op; the
                // cancelled request sends its own reply.
                if let Some(flag) = cancels.get(&request.id) {
                    flag.store(true, Ordering::Relaxed);
                }
            }
            "stats" => {
                let _ = tx.send(SubmitResponse::stats(request.id, service.stats()));
            }
            other => {
                let _ = tx.send(SubmitResponse::error(
                    request.id,
                    format!("unknown op `{other}`"),
                ));
            }
        }
    }

    // EOF: drop our sender; the writer exits after the last in-flight
    // job (each holds its own clone) delivers its reply.
    drop(tx);
    let _ = writer_thread.join();
    Ok(())
}

/// Serves the process's stdin/stdout as one connection — the `pchls
/// serve --stdio` mode. Returns at stdin EOF, after every accepted job
/// answered.
///
/// # Errors
///
/// As [`handle_connection`].
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    handle_connection(service, io::stdin().lock(), io::stdout())
}

/// Accepts connections forever, one handler thread per peer, all
/// multiplexing onto the same [`Service`] (and therefore sharing its
/// compile cache and worker pool).
///
/// # Errors
///
/// Never returns `Ok`; returns early only if the listener itself
/// fails. Per-connection errors are contained to their handler thread.
pub fn serve_tcp(service: &Service, listener: &TcpListener) -> io::Result<()> {
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let stream = stream?;
            scope.spawn(move || {
                let peer_reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(_) => return, // connection died before first byte
                };
                let _ = handle_connection(service, peer_reader, stream);
            });
        }
        unreachable!("TcpListener::incoming never ends")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use pchls_core::Engine;
    use pchls_fulib::paper_library;

    /// Runs a full scripted connection over in-memory pipes and returns
    /// the parsed response lines.
    fn drive(service: &Service, script: &str) -> Vec<SubmitResponse> {
        let (mut read_half, write_half) = io_pipe();
        handle_connection(service, script.as_bytes(), write_half).unwrap();
        let mut out = String::new();
        read_half.read_to_string(&mut out).unwrap();
        out.lines()
            .map(|l| serde_json::from_str(l).expect("well-formed response line"))
            .collect()
    }

    /// A tiny in-memory pipe: the writer half is `Write + Send`, the
    /// reader half collects everything written.
    fn io_pipe() -> (SharedBuf, SharedBuf) {
        let buf = Arc::new(std::sync::Mutex::new(Vec::new()));
        (SharedBuf(Arc::clone(&buf)), SharedBuf(buf))
    }

    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn read_to_string(&mut self, out: &mut String) -> io::Result<()> {
            out.push_str(std::str::from_utf8(&self.0.lock().unwrap()).unwrap());
            Ok(())
        }
    }

    fn service() -> Service {
        Service::start(
            Engine::new(paper_library()),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn scripted_connection_answers_every_line() {
        let service = service();
        let script = concat!(
            r#"{"op":"synth","id":1,"graph":"hal","latency":17,"power":25}"#,
            "\n",
            "\n", // blank lines are ignored
            r#"{"op":"stats","id":2}"#,
            "\n",
            r#"{"op":"frobnicate","id":3}"#,
            "\n",
            "this is not json\n",
        );
        let mut responses = drive(&service, script);
        assert_eq!(responses.len(), 4);
        // Synthesis replies may arrive out of order; sort by id.
        responses.sort_by_key(|r| r.id);
        let synth = responses.iter().find(|r| r.id == 1).unwrap();
        assert!(synth.ok && synth.point.is_some());
        let stats = responses.iter().find(|r| r.id == 2).unwrap();
        assert!(stats.ok && stats.stats.is_some());
        let unknown = responses.iter().find(|r| r.id == 3).unwrap();
        assert!(!unknown.ok);
        assert!(unknown.error.as_ref().unwrap().contains("frobnicate"));
        let bad = responses.iter().find(|r| r.id == 0).unwrap();
        assert!(!bad.ok);
        assert!(bad.error.as_ref().unwrap().contains("bad request"));
    }

    #[test]
    fn eof_waits_for_in_flight_jobs() {
        let service = service();
        // Three jobs, then immediate EOF: all three must still answer.
        let script = concat!(
            r#"{"id":1,"graph":"hal","latency":17,"power":25}"#,
            "\n",
            r#"{"id":2,"graph":"hal","latency":17,"power":40}"#,
            "\n",
            r#"{"id":3,"graph":"cosine","latency":15,"power":40}"#,
            "\n",
        );
        let responses = drive(&service, script);
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(responses.iter().all(|r| r.ok));
    }
}
