//! `pchls-serve` — the long-running synthesis service over the session
//! engine.
//!
//! The paper's workflow is request-shaped: a client submits a dataflow
//! graph plus a `(latency, power)` constraint point and receives a
//! synthesized design. The session API (`pchls-core`'s
//! [`Engine`](pchls_core::Engine) → `CompiledGraph` → `Session`)
//! already splits state by lifetime exactly the way a server needs;
//! this crate adds the subsystem that accepts many concurrent requests
//! and amortizes compilation *across clients*:
//!
//! * [`CompileCache`] — compiled graphs addressed by **content**
//!   ([`pchls_cdfg::graph_fingerprint`], a stable structural hash),
//!   verified by full equality, bounded LRU, with identical in-flight
//!   compiles coalesced so N clients submitting the same graph trigger
//!   one compile.
//! * [`Service`] — compile cache, result tier and a bounded two-lane
//!   job queue **sharded N ways by fingerprint** (shards never contend
//!   on a lock), each shard fed by its own
//!   [`pchls_par::WorkerPool`] workers plus a dedicated hit-lane
//!   worker, with per-request deadlines and cancellation through the
//!   engine's progress hook (`SynthesisError::Cancelled`). Admission
//!   is explicit: blocking [`Service::submit`] backpressure for
//!   in-process callers, shedding [`Service::try_submit`] (a
//!   well-formed `overloaded` error, never a dropped connection) for
//!   the network.
//! * [`SubmitRequest`]/[`SubmitResponse`] — a JSON-lines protocol
//!   served over stdin/stdout ([`serve_stdio`]) or TCP on a
//!   single-threaded nonblocking reactor ([`serve_tcp_with`], built on
//!   [`pchls_net`]) with per-connection token-bucket rate limits,
//!   capped line framing and a first-class stop signal
//!   ([`ShutdownHandle`]); exposed on the command line as `pchls
//!   serve`.
//! * [`ServiceStats`] — a snapshot of requests, shed/rate-limited
//!   counts, p50/p99/p99.9/max latency (from fixed-bucket
//!   [`LatencyHistogram`]s, one global plus one per priority lane) and
//!   cache hit rates. The same counters and histograms live in a
//!   per-service [`pchls_obs::MetricsRegistry`], scraped live as
//!   Prometheus-style text through the protocol's `metrics` op
//!   ([`Service::metrics_text`]); per-request spans land in the
//!   process trace when `pchls_obs` tracing is enabled.
//!
//! Service responses are **byte-identical** to what a direct
//! [`Session::synthesize`](pchls_core::Session::synthesize) /
//! `Session::batch` emits for the same constraint points — the cache
//! and the scheduler are pure plumbing around the deterministic kernel
//! (enforced by this crate's integration tests and the
//! `service-throughput` benchmark workload).
//!
//! # Example
//!
//! ```
//! use pchls_core::Engine;
//! use pchls_fulib::paper_library;
//! use pchls_serve::{Service, ServiceConfig, SubmitRequest};
//!
//! let service = Service::start(
//!     Engine::new(paper_library()),
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//! );
//!
//! // Same graph, two constraint points: one compile, one cache hit.
//! let a = service.call(SubmitRequest::synth(1, "hal", 17, 25.0));
//! let b = service.call(SubmitRequest::synth(2, "hal", 10, 40.0));
//! assert!(a.ok && b.ok);
//! let stats = service.stats();
//! assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod cache;
mod lanes;
mod net;
mod protocol;
mod queue;
mod results;
mod service;
mod stats;

pub use admission::TokenBucket;
pub use cache::{CacheLookup, CacheStats, CompileCache, CompileOutcome};
pub use lanes::{Lane, LaneQueues, PushRefusal};
pub use net::{handle_connection, serve_stdio, serve_tcp, serve_tcp_with, ShutdownHandle};
pub use protocol::{SubmitRequest, SubmitResponse};
pub use queue::JobQueue;
pub use results::{ResultCacheStats, ResultTier, StoreHandle, StoreTierStats};
pub use service::{Service, ServiceConfig, SubmitOutcome};
pub use stats::{render_serve_stats, LaneSnapshot, LatencyHistogram, ServiceStats};
