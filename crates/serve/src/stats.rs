//! Service metrics: the [`ServiceStats`] snapshot the wire protocol
//! exposes, and its human-readable one-line rendering.
//!
//! The latency histogram that used to live here is now
//! [`pchls_obs::Histogram`] — one wait-free fixed-bucket histogram type
//! shared by the serve tier, the store and the kernel — re-exported
//! under its old name for compatibility.

use serde::{Deserialize, Serialize};

/// The shared fixed-bucket latency histogram (see
/// [`pchls_obs::Histogram`] for the bucket layout and quantile
/// semantics). Historical alias: this crate defined its own before the
/// observability layer absorbed it.
pub use pchls_obs::Histogram as LatencyHistogram;

use pchls_obs::HistogramSummary;

/// Latency summary of one priority lane (or any single histogram).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LaneSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Median latency in seconds, bucketed.
    pub p50_secs: f64,
    /// 99th percentile in seconds, bucketed.
    pub p99_secs: f64,
    /// 99.9th percentile in seconds, bucketed.
    pub p999_secs: f64,
    /// Largest observation in seconds (exact).
    pub max_secs: f64,
}

impl From<HistogramSummary> for LaneSnapshot {
    fn from(s: HistogramSummary) -> LaneSnapshot {
        LaneSnapshot {
            count: s.count,
            p50_secs: s.p50_secs,
            p99_secs: s.p99_secs,
            p999_secs: s.p999_secs,
            max_secs: s.max_secs,
        }
    }
}

impl LaneSnapshot {
    /// The dashboard summary of `h`, in this crate's serializable shape.
    #[must_use]
    pub fn of(h: &LatencyHistogram) -> LaneSnapshot {
        h.summary().into()
    }
}

/// One consistent snapshot of a running service, serializable onto the
/// wire (the protocol's `Stats` message payload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests accepted into the queues since start.
    pub requests: u64,
    /// Requests answered with a synthesis point (feasible or not).
    pub completed: u64,
    /// Requests answered with an error (bad request, unknown graph,
    /// compile failure).
    pub failed: u64,
    /// Requests cancelled by the client or their deadline.
    pub cancelled: u64,
    /// Requests refused with an `overloaded` error because a shard's
    /// lane was past its admission bound.
    pub shed: u64,
    /// Requests refused with a `rate_limited` error by a connection's
    /// token bucket.
    pub rate_limited: u64,
    /// Jobs currently waiting across all shards and lanes.
    pub queue_depth: usize,
    /// Worker threads serving the queues (all shards, both lanes).
    pub workers: usize,
    /// Independent shards (each: compile cache + result tier + lanes +
    /// workers), addressed by `graph_fingerprint`.
    pub shards: usize,
    /// Compiled graphs currently resident in the cache.
    pub cache_entries: usize,
    /// Cache lookups served by a completed compile.
    pub cache_hits: u64,
    /// Cache lookups that inserted (and compiled) a new entry.
    pub cache_misses: u64,
    /// Cache lookups that joined an in-flight compile.
    pub cache_coalesced: u64,
    /// Cache entries dropped by the LRU bound.
    pub cache_evictions: u64,
    /// `cache_hits / (cache_hits + cache_misses + cache_coalesced)`.
    pub cache_hit_rate: f64,
    /// Approximate bytes resident in the compile cache.
    pub cache_entry_bytes: u64,
    /// Mean idle age (LRU ticks) of compile-cache eviction victims;
    /// `0.0` before any eviction.
    pub cache_mean_eviction_age: f64,
    /// Results resident in the in-memory result tier.
    pub result_entries: usize,
    /// Requests answered from the in-memory result tier (tier 1 —
    /// no compile, no synthesis).
    pub result_hits: u64,
    /// Result-tier lookups that missed memory.
    pub result_misses: u64,
    /// Result entries dropped by the LRU bound.
    pub result_evictions: u64,
    /// Approximate bytes resident in the result tier.
    pub result_entry_bytes: u64,
    /// Mean idle age (LRU ticks) of result-tier eviction victims.
    pub result_mean_eviction_age: f64,
    /// `result_hits / (result_hits + result_misses)`.
    pub result_hit_rate: f64,
    /// Requests answered by the persistent store (tier 2 — disk read,
    /// no compile, no synthesis). Zero when no store is configured.
    pub store_hits: u64,
    /// Store lookups that found no record on disk.
    pub store_misses: u64,
    /// Records appended to the store by the write-behind thread.
    pub store_appends: u64,
    /// Recorded cold runs (replay seeds) resident across all shards —
    /// the sibling candidates the near-miss patcher diffs against.
    #[serde(default)]
    pub seed_entries: usize,
    /// Result-tier misses answered by patching a recorded sibling run
    /// (delta compile + incremental replay) instead of cold synthesis.
    #[serde(default)]
    pub patched: u64,
    /// Near-miss probes that found a constraint-matching sibling but
    /// fell back to the cold path (oversized edit cone, degenerate
    /// diff, or replay refusal).
    #[serde(default)]
    pub patch_fallbacks: u64,
    /// Median request latency (accept → response) in seconds, bucketed.
    pub p50_latency_secs: f64,
    /// 99th-percentile request latency in seconds, bucketed.
    pub p99_latency_secs: f64,
    /// 99.9th-percentile request latency in seconds, bucketed.
    pub p999_latency_secs: f64,
    /// Largest request latency in seconds (exact, not bucketed).
    pub max_latency_secs: f64,
    /// Latency of requests that rode the hit lane (classified as
    /// result-tier hits at admission).
    pub hit_lane: LaneSnapshot,
    /// Latency of requests that rode the synth lane.
    pub synth_lane: LaneSnapshot,
}

/// The one-line service summary printed when a serve loop exits (and,
/// with `--stats-interval`, periodically while it runs): request
/// disposition, the global latency tail (p50/p99/p99.9 and the exact
/// max) and both priority lanes.
#[must_use]
pub fn render_serve_stats(stats: &ServiceStats) -> String {
    let ms = |secs: f64| format!("{:.1}ms", secs * 1e3);
    let lane = |snap: &LaneSnapshot| {
        format!(
            "{} @ p50 {} p99.9 {} max {}",
            snap.count,
            ms(snap.p50_secs),
            ms(snap.p999_secs),
            ms(snap.max_secs)
        )
    };
    format!(
        "pchls serve: {} requests ({} ok, {} failed, {} cancelled, {} shed, {} rate-limited) | \
         {} shard(s), {} worker(s) | latency p50 {} p99 {} p99.9 {} max {} | \
         hit lane {} | synth lane {} | compile cache {:.1}% hit | result tier {:.1}% hit | \
         {} patched",
        stats.requests,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.shed,
        stats.rate_limited,
        stats.shards,
        stats.workers,
        ms(stats.p50_latency_secs),
        ms(stats.p99_latency_secs),
        ms(stats.p999_latency_secs),
        ms(stats.max_latency_secs),
        lane(&stats.hit_lane),
        lane(&stats.synth_lane),
        stats.cache_hit_rate * 100.0,
        stats.result_hit_rate * 100.0,
        stats.patched,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn lane_snapshot_mirrors_the_histogram_summary() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(777_777));
        let snap = LaneSnapshot::of(&h);
        assert_eq!(snap.count, 2);
        assert!((snap.max_secs - 0.777_777).abs() < 1e-9);
        assert!(snap.p50_secs <= snap.p99_secs && snap.p99_secs <= snap.p999_secs);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let s = ServiceStats {
            requests: 10,
            completed: 8,
            failed: 1,
            cancelled: 1,
            shed: 3,
            rate_limited: 2,
            queue_depth: 0,
            workers: 4,
            shards: 2,
            cache_entries: 2,
            cache_hits: 7,
            cache_misses: 2,
            cache_coalesced: 1,
            cache_evictions: 0,
            cache_hit_rate: 0.7,
            cache_entry_bytes: 4096,
            cache_mean_eviction_age: 0.0,
            result_entries: 3,
            result_hits: 4,
            result_misses: 6,
            result_evictions: 1,
            result_entry_bytes: 512,
            result_mean_eviction_age: 2.0,
            result_hit_rate: 0.4,
            store_hits: 2,
            store_misses: 4,
            store_appends: 5,
            seed_entries: 1,
            patched: 2,
            patch_fallbacks: 1,
            p50_latency_secs: 0.004,
            p99_latency_secs: 0.125,
            p999_latency_secs: 0.5,
            max_latency_secs: 0.61,
            hit_lane: LaneSnapshot {
                count: 6,
                p50_secs: 0.001,
                p99_secs: 0.002,
                p999_secs: 0.004,
                max_secs: 0.003,
            },
            synth_lane: LaneSnapshot {
                count: 4,
                p50_secs: 0.02,
                p99_secs: 0.125,
                p999_secs: 0.5,
                max_secs: 0.61,
            },
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"hit_lane\""), "{json}");
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn render_covers_disposition_lanes_and_tiers() {
        // All-zero baseline via JSON (the struct has no Default).
        let zero = r#"{"requests":9,"completed":7,"failed":0,"cancelled":0,"shed":2,
            "rate_limited":0,"queue_depth":0,"workers":2,"shards":1,"cache_entries":0,
            "cache_hits":0,"cache_misses":0,"cache_coalesced":0,"cache_evictions":0,
            "cache_hit_rate":0.0,"cache_entry_bytes":0,"cache_mean_eviction_age":0.0,
            "result_entries":0,"result_hits":0,"result_misses":0,"result_evictions":0,
            "result_entry_bytes":0,"result_mean_eviction_age":0.0,"result_hit_rate":0.0,
            "store_hits":0,"store_misses":0,"store_appends":0,"p50_latency_secs":0.001,
            "p99_latency_secs":0.002,"p999_latency_secs":0.004,"max_latency_secs":0.005,
            "hit_lane":{"count":0,"p50_secs":0.0,"p99_secs":0.0,"p999_secs":0.0,"max_secs":0.0},
            "synth_lane":{"count":0,"p50_secs":0.0,"p99_secs":0.0,"p999_secs":0.0,"max_secs":0.0}}"#;
        let s: ServiceStats = serde_json::from_str(zero).unwrap();
        let line = render_serve_stats(&s);
        assert!(line.starts_with("pchls serve: 9 requests"), "{line}");
        assert!(line.contains("2 shed"), "{line}");
        assert!(line.contains("latency p50 1.0ms"), "{line}");
        assert!(line.contains("compile cache 0.0% hit"), "{line}");
        // The snapshot above omits the patch counters: absent fields
        // default to zero and still render.
        assert!(line.contains("0 patched"), "{line}");
    }
}
