//! Service metrics: a lock-free fixed-bucket latency histogram and the
//! [`ServiceStats`] snapshot the wire protocol exposes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Number of histogram buckets: powers of two of microseconds, so the
/// top bucket starts at 2^47 µs (≈ 4.5 years) — effectively +∞.
const BUCKETS: usize = 48;

/// A fixed-bucket, power-of-two latency histogram.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` microseconds
/// (bucket 0 also absorbs sub-microsecond observations; the last bucket
/// absorbs everything larger). Recording is one relaxed atomic
/// increment plus a `fetch_max` for the running maximum — workers never
/// contend on a lock for metrics — and quantiles are read by walking
/// the 48 counters.
///
/// Fixed buckets trade resolution for bounded memory and wait-free
/// writes: a quantile is reported as the **upper bound** of the bucket
/// the rank falls in, i.e. within 2× of the true value, which is ample
/// for p50/p99/p99.9 service dashboards. The maximum is exact (to the
/// microsecond), because tail debugging wants the real worst case, not
/// a bucket bound.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Index of the bucket covering `d`.
    fn bucket_of(d: Duration) -> usize {
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1);
        (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one observation (wait-free).
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        let micros = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The largest observation in seconds (exact, not bucketed); `0.0`
    /// while empty.
    pub fn max_seconds(&self) -> f64 {
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds, reported as the
    /// upper bound of the bucket the rank lands in; `0.0` while empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        // Rank of the requested quantile, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i is 2^(i+1) µs.
                return (1u64 << (i + 1)) as f64 / 1e6;
            }
        }
        unreachable!("rank ≤ total implies some bucket reaches it")
    }

    /// The standard dashboard summary of this histogram.
    #[must_use]
    pub fn snapshot(&self) -> LaneSnapshot {
        LaneSnapshot {
            count: self.count(),
            p50_secs: self.quantile(0.50),
            p99_secs: self.quantile(0.99),
            p999_secs: self.quantile(0.999),
            max_secs: self.max_seconds(),
        }
    }
}

/// Latency summary of one priority lane (or any single histogram).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LaneSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Median latency in seconds, bucketed.
    pub p50_secs: f64,
    /// 99th percentile in seconds, bucketed.
    pub p99_secs: f64,
    /// 99.9th percentile in seconds, bucketed.
    pub p999_secs: f64,
    /// Largest observation in seconds (exact).
    pub max_secs: f64,
}

/// One consistent snapshot of a running service, serializable onto the
/// wire (the protocol's `Stats` message payload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests accepted into the queues since start.
    pub requests: u64,
    /// Requests answered with a synthesis point (feasible or not).
    pub completed: u64,
    /// Requests answered with an error (bad request, unknown graph,
    /// compile failure).
    pub failed: u64,
    /// Requests cancelled by the client or their deadline.
    pub cancelled: u64,
    /// Requests refused with an `overloaded` error because a shard's
    /// lane was past its admission bound.
    pub shed: u64,
    /// Requests refused with a `rate_limited` error by a connection's
    /// token bucket.
    pub rate_limited: u64,
    /// Jobs currently waiting across all shards and lanes.
    pub queue_depth: usize,
    /// Worker threads serving the queues (all shards, both lanes).
    pub workers: usize,
    /// Independent shards (each: compile cache + result tier + lanes +
    /// workers), addressed by `graph_fingerprint`.
    pub shards: usize,
    /// Compiled graphs currently resident in the cache.
    pub cache_entries: usize,
    /// Cache lookups served by a completed compile.
    pub cache_hits: u64,
    /// Cache lookups that inserted (and compiled) a new entry.
    pub cache_misses: u64,
    /// Cache lookups that joined an in-flight compile.
    pub cache_coalesced: u64,
    /// Cache entries dropped by the LRU bound.
    pub cache_evictions: u64,
    /// `cache_hits / (cache_hits + cache_misses + cache_coalesced)`.
    pub cache_hit_rate: f64,
    /// Approximate bytes resident in the compile cache.
    pub cache_entry_bytes: u64,
    /// Mean idle age (LRU ticks) of compile-cache eviction victims;
    /// `0.0` before any eviction.
    pub cache_mean_eviction_age: f64,
    /// Results resident in the in-memory result tier.
    pub result_entries: usize,
    /// Requests answered from the in-memory result tier (tier 1 —
    /// no compile, no synthesis).
    pub result_hits: u64,
    /// Result-tier lookups that missed memory.
    pub result_misses: u64,
    /// Result entries dropped by the LRU bound.
    pub result_evictions: u64,
    /// Approximate bytes resident in the result tier.
    pub result_entry_bytes: u64,
    /// Mean idle age (LRU ticks) of result-tier eviction victims.
    pub result_mean_eviction_age: f64,
    /// `result_hits / (result_hits + result_misses)`.
    pub result_hit_rate: f64,
    /// Requests answered by the persistent store (tier 2 — disk read,
    /// no compile, no synthesis). Zero when no store is configured.
    pub store_hits: u64,
    /// Store lookups that found no record on disk.
    pub store_misses: u64,
    /// Records appended to the store by the write-behind thread.
    pub store_appends: u64,
    /// Median request latency (accept → response) in seconds, bucketed.
    pub p50_latency_secs: f64,
    /// 99th-percentile request latency in seconds, bucketed.
    pub p99_latency_secs: f64,
    /// 99.9th-percentile request latency in seconds, bucketed.
    pub p999_latency_secs: f64,
    /// Largest request latency in seconds (exact, not bucketed).
    pub max_latency_secs: f64,
    /// Latency of requests that rode the hit lane (classified as
    /// result-tier hits at admission).
    pub hit_lane: LaneSnapshot,
    /// Latency of requests that rode the synth lane.
    pub synth_lane: LaneSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
        assert_eq!(h.snapshot(), LaneSnapshot::default());
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = LatencyHistogram::new();
        // 99 fast observations (~100 µs) and one slow (~2 s).
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(2));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p100 = h.quantile(1.0);
        // 100 µs lands in bucket [64, 128) µs → upper bound 128 µs.
        assert!((p50 - 128e-6).abs() < 1e-12, "p50={p50}");
        assert!((p99 - 128e-6).abs() < 1e-12, "p99={p99}");
        // 2 s lands in bucket [2^21, 2^22) µs → upper bound ≈ 4.19 s.
        assert!(p100 > 2.0 && p100 < 8.5, "p100={p100}");
        assert!(p50 <= p99 && p99 <= p100);
    }

    #[test]
    fn p999_separates_a_one_in_a_thousand_tail() {
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_secs(1));
        h.record(Duration::from_secs(1));
        // p99 is blind to a 2/1002 tail; p99.9 is not (its rank, 1001,
        // lands on the first slow observation).
        assert!(h.quantile(0.99) < 1e-3);
        assert!(h.quantile(0.999) > 0.5, "p999={}", h.quantile(0.999));
    }

    #[test]
    fn max_is_exact_not_bucketed() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(777_777));
        // The bucketed p100 rounds up to 2^20 µs ≈ 1.05 s; max is exact.
        assert!((h.max_seconds() - 0.777_777).abs() < 1e-9);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert!((snap.max_secs - 0.777_777).abs() < 1e-9);
        assert!(snap.p50_secs <= snap.p99_secs && snap.p99_secs <= snap.p999_secs);
    }

    #[test]
    fn extreme_durations_stay_in_range() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(60 * 60 * 24 * 365 * 10));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) > 0.0);
        assert!(h.quantile(1.0).is_finite());
        assert!(h.max_seconds().is_finite());
    }

    #[test]
    fn stats_round_trip_through_json() {
        let s = ServiceStats {
            requests: 10,
            completed: 8,
            failed: 1,
            cancelled: 1,
            shed: 3,
            rate_limited: 2,
            queue_depth: 0,
            workers: 4,
            shards: 2,
            cache_entries: 2,
            cache_hits: 7,
            cache_misses: 2,
            cache_coalesced: 1,
            cache_evictions: 0,
            cache_hit_rate: 0.7,
            cache_entry_bytes: 4096,
            cache_mean_eviction_age: 0.0,
            result_entries: 3,
            result_hits: 4,
            result_misses: 6,
            result_evictions: 1,
            result_entry_bytes: 512,
            result_mean_eviction_age: 2.0,
            result_hit_rate: 0.4,
            store_hits: 2,
            store_misses: 4,
            store_appends: 5,
            p50_latency_secs: 0.004,
            p99_latency_secs: 0.125,
            p999_latency_secs: 0.5,
            max_latency_secs: 0.61,
            hit_lane: LaneSnapshot {
                count: 6,
                p50_secs: 0.001,
                p99_secs: 0.002,
                p999_secs: 0.004,
                max_secs: 0.003,
            },
            synth_lane: LaneSnapshot {
                count: 4,
                p50_secs: 0.02,
                p99_secs: 0.125,
                p999_secs: 0.5,
                max_secs: 0.61,
            },
        };
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"hit_lane\""), "{json}");
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
