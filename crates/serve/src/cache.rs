//! The content-addressed compiled-graph cache.
//!
//! Clients of a long-running synthesis service resubmit the same
//! dataflow graphs over and over — the whole point of the session API
//! is that compiling ([`Engine::try_compile`]) is the expensive step
//! worth amortizing. This cache keys compiled graphs by
//! [`graph_fingerprint`] — a stable, structural, insertion-order-
//! insensitive 64-bit hash — so *any* client submitting a structurally
//! identical graph shares one [`Arc<CompiledGraph>`], no matter how the
//! graph reached the service (benchmark name, inline text, different
//! process).
//!
//! Three properties matter for correctness and are enforced here:
//!
//! * **Collision-checked**: a fingerprint match is only a bucket hint;
//!   the cache verifies full [`Cdfg`] equality before sharing an entry.
//!   Two different graphs colliding on the hash simply occupy two slots
//!   of one bucket.
//! * **Coalesced compiles**: when N clients submit the same uncached
//!   graph concurrently, exactly one compile runs; the other N−1 block
//!   on the same [`OnceLock`] cell and share the result ([`CacheLookup::Coalesced`]).
//! * **Bounded**: at most `cap` entries live in the map, evicted least-
//!   recently-used. Evicting an in-flight entry is safe — waiters hold
//!   their own [`Arc`] to the cell and still complete.
//!
//! [`Engine::try_compile`]: pchls_core::Engine::try_compile

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use pchls_cdfg::{graph_fingerprint, Cdfg};
use pchls_core::{CompiledGraph, Engine, SynthesisError};
use serde::{Deserialize, Serialize};

/// What one compile request costs: a shared compiled graph, or the
/// compile-time error (also cached, so repeated bad submissions stay
/// cheap).
pub type CompileOutcome = Result<Arc<CompiledGraph>, SynthesisError>;

/// How a [`CompileCache::get_or_compile`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// The graph was cached and compiled: zero work.
    Hit,
    /// The graph was in the cache but its compile was still in flight:
    /// this call joined the existing compile instead of starting one.
    Coalesced,
    /// The graph was not cached: this call inserted the entry (and
    /// typically runs the compile).
    Miss,
}

/// Counter snapshot of a [`CompileCache`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups satisfied by a completed cached compile.
    pub hits: u64,
    /// Lookups that inserted a new entry.
    pub misses: u64,
    /// Lookups that joined an in-flight compile of the same graph.
    pub coalesced: u64,
    /// Entries removed by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate bytes held by resident entries (graph structure
    /// estimate — compiled artifacts scale with it).
    pub entry_bytes: u64,
    /// Sum over evictions of the victim's idle age in LRU ticks.
    pub eviction_age_sum: u64,
    /// Idle age (ticks) of the most recent eviction victim.
    pub last_eviction_age: u64,
}

impl CacheStats {
    /// Fraction of lookups served without compiling (completed hits
    /// over all lookups); `0.0` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses + self.coalesced;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Mean idle age (ticks) of eviction victims; `0.0` before any
    /// eviction. Together with `entry_bytes` this distinguishes a
    /// too-small cache (young victims) from natural turnover.
    #[must_use]
    pub fn mean_eviction_age(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.eviction_age_sum as f64 / self.evictions as f64
        }
    }

    /// Per-shard snapshots summed into a service-wide one.
    #[must_use]
    pub fn merged(snapshots: impl IntoIterator<Item = CacheStats>) -> CacheStats {
        snapshots.into_iter().fold(
            CacheStats {
                hits: 0,
                misses: 0,
                coalesced: 0,
                evictions: 0,
                entries: 0,
                entry_bytes: 0,
                eviction_age_sum: 0,
                last_eviction_age: 0,
            },
            |a, b| CacheStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                coalesced: a.coalesced + b.coalesced,
                evictions: a.evictions + b.evictions,
                entries: a.entries + b.entries,
                entry_bytes: a.entry_bytes + b.entry_bytes,
                eviction_age_sum: a.eviction_age_sum + b.eviction_age_sum,
                last_eviction_age: a.last_eviction_age.max(b.last_eviction_age),
            },
        )
    }
}

/// Approximate resident footprint of one slot, from the graph structure
/// it keys on (nodes dominate; the compiled artifact is proportional).
fn approx_slot_bytes(graph: &Cdfg) -> u64 {
    (graph.nodes().len() * 96 + graph.edges().len() * 32 + 64) as u64
}

/// One cached (or in-flight) compile.
#[derive(Debug)]
struct Slot {
    /// The exact graph this slot answers for (full-equality verify).
    graph: Cdfg,
    /// The compile result, filled exactly once; waiters block on it.
    cell: Arc<OnceLock<CompileOutcome>>,
    /// LRU tick of the last lookup that touched this slot.
    last_used: u64,
    /// Approximate resident bytes ([`approx_slot_bytes`]).
    bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// fingerprint → slots whose graphs share that fingerprint.
    map: HashMap<u64, Vec<Slot>>,
    /// Total slots across all buckets.
    len: usize,
    /// Monotone lookup clock for LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
    evictions: u64,
    entry_bytes: u64,
    eviction_age_sum: u64,
    last_eviction_age: u64,
}

/// A bounded, thread-safe, content-addressed LRU cache of compiled
/// graphs: collision-checked fingerprint addressing, coalesced
/// in-flight compiles, LRU eviction (see the module-level docs above
/// for the full guarantees).
#[derive(Debug)]
pub struct CompileCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl CompileCache {
    /// A cache holding at most `cap` compiled graphs (clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> CompileCache {
        CompileCache {
            inner: Mutex::new(Inner::default()),
            cap: cap.max(1),
        }
    }

    /// The compiled form of `graph`, from cache when present, compiling
    /// (or joining an in-flight compile) otherwise. The compile itself
    /// runs *outside* the cache lock, so a slow compile never blocks
    /// unrelated lookups.
    pub fn get_or_compile(&self, engine: &Engine, graph: &Cdfg) -> (CompileOutcome, CacheLookup) {
        self.get_or_compile_keyed(engine, graph_fingerprint(graph), graph)
    }

    /// [`get_or_compile`](CompileCache::get_or_compile) with the
    /// fingerprint already in hand — callers that key other tiers on
    /// the same fingerprint avoid hashing the graph twice.
    pub fn get_or_compile_keyed(
        &self,
        engine: &Engine,
        fingerprint: u64,
        graph: &Cdfg,
    ) -> (CompileOutcome, CacheLookup) {
        let (cell, lookup) = {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            let bucket = inner.map.entry(fingerprint).or_default();
            // Fingerprint equality is a hint; the slot's stored graph is
            // the collision check.
            if let Some(slot) = bucket.iter_mut().find(|s| s.graph == *graph) {
                slot.last_used = tick;
                let lookup = if slot.cell.get().is_some() {
                    CacheLookup::Hit
                } else {
                    CacheLookup::Coalesced
                };
                let cell = Arc::clone(&slot.cell);
                match lookup {
                    CacheLookup::Hit => inner.hits += 1,
                    _ => inner.coalesced += 1,
                }
                (cell, lookup)
            } else {
                let cell = Arc::new(OnceLock::new());
                let bytes = approx_slot_bytes(graph);
                bucket.push(Slot {
                    graph: graph.clone(),
                    cell: Arc::clone(&cell),
                    last_used: tick,
                    bytes,
                });
                inner.len += 1;
                inner.misses += 1;
                inner.entry_bytes += bytes;
                if inner.len > self.cap {
                    evict_lru(&mut inner);
                }
                (cell, CacheLookup::Miss)
            }
        };
        // Exactly one caller runs the closure; everyone else blocks
        // here until the result lands, then clones the Arc.
        let outcome = cell
            .get_or_init(|| engine.try_compile(graph).map(Arc::new))
            .clone();
        (outcome, lookup)
    }

    /// Counter snapshot (consistent: taken under the cache lock).
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            coalesced: inner.coalesced,
            evictions: inner.evictions,
            entries: inner.len,
            entry_bytes: inner.entry_bytes,
            eviction_age_sum: inner.eviction_age_sum,
            last_eviction_age: inner.last_eviction_age,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of resident entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Removes the least-recently-used slot. Called right after an insert
/// pushed `len` over `cap`, so at least two slots exist and the fresh
/// insert (carrying the newest tick) is never the victim.
fn evict_lru(inner: &mut Inner) {
    let victim = inner
        .map
        .iter()
        .flat_map(|(&fp, bucket)| bucket.iter().map(move |s| (fp, s.last_used)))
        .min_by_key(|&(_, used)| used);
    if let Some((fp, used)) = victim {
        let bucket = inner.map.get_mut(&fp).expect("victim bucket exists");
        let idx = bucket
            .iter()
            .position(|s| s.last_used == used)
            .expect("victim slot exists");
        let slot = bucket.remove(idx);
        if bucket.is_empty() {
            inner.map.remove(&fp);
        }
        inner.len -= 1;
        inner.evictions += 1;
        inner.entry_bytes -= slot.bytes;
        let age = inner.tick - slot.last_used;
        inner.eviction_age_sum += age;
        inner.last_eviction_age = age;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::paper_library;

    fn engine() -> Engine {
        Engine::new(paper_library())
    }

    #[test]
    fn second_lookup_is_a_hit_sharing_the_same_arc() {
        let engine = engine();
        let cache = CompileCache::new(4);
        let g = benchmarks::hal();
        let (a, first) = cache.get_or_compile(&engine, &g);
        let (b, second) = cache.get_or_compile(&engine, &g);
        assert_eq!(first, CacheLookup::Miss);
        assert_eq!(second, CacheLookup::Hit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()), "hit must share");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn lru_eviction_keeps_the_hot_entry() {
        let engine = engine();
        let cache = CompileCache::new(2);
        let (hal, cosine, ar) = (
            benchmarks::hal(),
            benchmarks::cosine(),
            benchmarks::ar_filter(),
        );
        let _ = cache.get_or_compile(&engine, &hal);
        let _ = cache.get_or_compile(&engine, &cosine);
        // Touch hal so cosine is the LRU victim when ar arrives.
        let _ = cache.get_or_compile(&engine, &hal);
        let _ = cache.get_or_compile(&engine, &ar);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(
            cache.get_or_compile(&engine, &hal).1,
            CacheLookup::Hit,
            "hot entry survived"
        );
        assert_eq!(
            cache.get_or_compile(&engine, &cosine).1,
            CacheLookup::Miss,
            "cold entry was evicted"
        );
    }

    #[test]
    fn concurrent_identical_submissions_compile_once() {
        let engine = engine();
        let cache = CompileCache::new(4);
        let g = benchmarks::elliptic();
        let compiled: Vec<Arc<CompiledGraph>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (engine, cache, g) = (&engine, &cache, &g);
                    s.spawn(move || cache.get_or_compile(engine, g).0.unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for c in &compiled[1..] {
            assert!(
                Arc::ptr_eq(&compiled[0], c),
                "all callers share one compile"
            );
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one insert");
        assert_eq!(s.hits + s.coalesced, 7, "everyone else joined or hit");
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn compile_errors_are_cached_too() {
        use pchls_cdfg::OpKind;
        use pchls_fulib::{ModuleLibrary, ModuleSpec};
        // A library without a multiplier cannot compile hal.
        let lib = ModuleLibrary::new([
            ModuleSpec::new("add", [OpKind::Add], 87, 1, 2.5),
            ModuleSpec::new("sub", [OpKind::Sub], 87, 1, 2.5),
            ModuleSpec::new("comp", [OpKind::Comp], 8, 1, 2.5),
            ModuleSpec::new("input", [OpKind::Input], 16, 1, 0.2),
            ModuleSpec::new("output", [OpKind::Output], 16, 1, 1.7),
        ])
        .unwrap();
        let engine = Engine::new(lib);
        let cache = CompileCache::new(4);
        let g = benchmarks::hal();
        let (first, _) = cache.get_or_compile(&engine, &g);
        let (second, lookup) = cache.get_or_compile(&engine, &g);
        assert!(matches!(first, Err(SynthesisError::Uncovered { .. })));
        assert_eq!(first.err(), second.err());
        assert_eq!(lookup, CacheLookup::Hit, "the error is served from cache");
    }

    #[test]
    fn entry_bytes_and_eviction_ages_are_tracked() {
        let engine = engine();
        let cache = CompileCache::new(1);
        assert_eq!(cache.stats().entry_bytes, 0);
        let _ = cache.get_or_compile(&engine, &benchmarks::hal());
        let one_entry = cache.stats().entry_bytes;
        assert!(one_entry > 0);
        // Cap 1: the second insert evicts hal after one intervening
        // tick, so the victim's idle age is exactly 1.
        let _ = cache.get_or_compile(&engine, &benchmarks::cosine());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1);
        assert!(s.entry_bytes > 0);
        assert_eq!(s.last_eviction_age, 1);
        assert!((s.mean_eviction_age() - 1.0).abs() < 1e-12);
        // Bytes track what is resident, not a running total: cycling
        // hal back in restores exactly its original footprint.
        let _ = cache.get_or_compile(&engine, &benchmarks::hal());
        assert_eq!(cache.stats().entry_bytes, one_entry);
    }

    #[test]
    fn fingerprint_collision_bucket_still_distinguishes_graphs() {
        // Force both graphs through the same bucket path by checking
        // that two different graphs never share an entry even when the
        // cache is big enough for both.
        let engine = engine();
        let cache = CompileCache::new(4);
        let a = cache.get_or_compile(&engine, &benchmarks::hal()).0.unwrap();
        let b = cache
            .get_or_compile(&engine, &benchmarks::cosine())
            .0
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }
}
