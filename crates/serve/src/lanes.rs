//! A bounded, blocking two-lane MPMC job queue — the priority layer of
//! each shard.
//!
//! Every shard runs one [`LaneQueues`] with a **hit lane** (requests
//! classified as answerable from the result tier — cheap, latency-
//! sensitive) and a **synth lane** (everything that may need real
//! synthesis). Consumers pop hit-first, so a rand200-sized synthesis
//! job in front of the queue never delays a cache hit behind it; the
//! dedicated hit worker ([`LaneQueues::pop_hit`]) keeps the hit lane
//! moving even while every synth worker is busy.
//!
//! Admission uses [`LaneQueues::try_push`] — a full lane refuses
//! immediately (the caller sheds with a well-formed `overloaded`
//! error) — while in-process callers keep the blocking
//! [`LaneQueues::push`] backpressure the single-queue service had.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Which priority lane a job rides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Classified as a result-tier hit: answered without synthesis.
    Hit,
    /// May require compilation and synthesis.
    Synth,
}

/// Why [`LaneQueues::try_push`] refused a job; carries the job back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushRefusal<T> {
    /// The lane is at capacity — shed the request.
    Full(T),
    /// The queue is closed — the service is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    hit: VecDeque<T>,
    synth: VecDeque<T>,
    closed: bool,
}

/// The two-lane bounded queue (see module docs).
#[derive(Debug)]
pub struct LaneQueues<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    hit_cap: usize,
    synth_cap: usize,
}

impl<T> LaneQueues<T> {
    /// A queue admitting at most `hit_cap` / `synth_cap` waiting jobs
    /// per lane (each clamped to ≥ 1).
    #[must_use]
    pub fn new(hit_cap: usize, synth_cap: usize) -> LaneQueues<T> {
        LaneQueues {
            inner: Mutex::new(Inner {
                hit: VecDeque::new(),
                synth: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            hit_cap: hit_cap.max(1),
            synth_cap: synth_cap.max(1),
        }
    }

    fn cap(&self, lane: Lane) -> usize {
        match lane {
            Lane::Hit => self.hit_cap,
            Lane::Synth => self.synth_cap,
        }
    }

    /// Enqueues `item` on `lane`, blocking while that lane is full.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is closed.
    pub fn push(&self, lane: Lane, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("lane queue lock");
        while inner.lane(lane).len() >= self.cap(lane) && !inner.closed {
            inner = self.not_full.wait(inner).expect("lane queue lock");
        }
        if inner.closed {
            return Err(item);
        }
        inner.lane(lane).push_back(item);
        drop(inner);
        // Waiters are heterogeneous (any-lane poppers and hit-only
        // poppers); notify_one could wake the wrong kind and lose the
        // signal.
        self.not_empty.notify_all();
        Ok(())
    }

    /// Enqueues without blocking — the admission path. A full lane
    /// refuses instantly so the reactor thread never stalls on a
    /// saturated shard.
    ///
    /// # Errors
    ///
    /// [`PushRefusal::Full`] at capacity, [`PushRefusal::Closed`] after
    /// [`close`](LaneQueues::close); both return the item.
    pub fn try_push(&self, lane: Lane, item: T) -> Result<(), PushRefusal<T>> {
        let mut inner = self.inner.lock().expect("lane queue lock");
        if inner.closed {
            return Err(PushRefusal::Closed(item));
        }
        if inner.lane(lane).len() >= self.cap(lane) {
            return Err(PushRefusal::Full(item));
        }
        inner.lane(lane).push_back(item);
        drop(inner);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Dequeues the next job, hit lane first, blocking while both lanes
    /// are empty. Returns `None` once closed *and* drained.
    pub fn pop(&self) -> Option<(Lane, T)> {
        let mut inner = self.inner.lock().expect("lane queue lock");
        loop {
            if let Some(item) = inner.hit.pop_front() {
                drop(inner);
                self.not_full.notify_all();
                return Some((Lane::Hit, item));
            }
            if let Some(item) = inner.synth.pop_front() {
                drop(inner);
                self.not_full.notify_all();
                return Some((Lane::Synth, item));
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("lane queue lock");
        }
    }

    /// Dequeues from the hit lane only — the dedicated hit worker's
    /// loop, immune to synth backlog by construction. Returns `None`
    /// once closed and the hit lane drained.
    pub fn pop_hit(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("lane queue lock");
        loop {
            if let Some(item) = inner.hit.pop_front() {
                drop(inner);
                self.not_full.notify_all();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("lane queue lock");
        }
    }

    /// Closes the queue: blocked producers fail, consumers drain the
    /// remaining jobs and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("lane queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs waiting in `lane`.
    pub fn depth(&self, lane: Lane) -> usize {
        let inner = self.inner.lock().expect("lane queue lock");
        match lane {
            Lane::Hit => inner.hit.len(),
            Lane::Synth => inner.synth.len(),
        }
    }

    /// Jobs waiting across both lanes.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().expect("lane queue lock");
        inner.hit.len() + inner.synth.len()
    }

    /// Whether both lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Inner<T> {
    fn lane(&mut self, lane: Lane) -> &mut VecDeque<T> {
        match lane {
            Lane::Hit => &mut self.hit,
            Lane::Synth => &mut self.synth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hits_overtake_queued_synth_jobs() {
        let q = LaneQueues::new(8, 8);
        q.push(Lane::Synth, "slow-1").unwrap();
        q.push(Lane::Synth, "slow-2").unwrap();
        q.push(Lane::Hit, "fast").unwrap();
        // The hit entered last but leaves first.
        assert_eq!(q.pop(), Some((Lane::Hit, "fast")));
        assert_eq!(q.pop(), Some((Lane::Synth, "slow-1")));
        assert_eq!(q.pop(), Some((Lane::Synth, "slow-2")));
    }

    #[test]
    fn lanes_are_fifo_internally() {
        let q = LaneQueues::new(8, 8);
        for i in 0..4 {
            q.push(Lane::Hit, i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some((Lane::Hit, i)));
        }
    }

    #[test]
    fn try_push_sheds_at_capacity_per_lane() {
        let q = LaneQueues::new(1, 2);
        q.try_push(Lane::Hit, 10).unwrap();
        assert_eq!(q.try_push(Lane::Hit, 11), Err(PushRefusal::Full(11)));
        // The synth lane has its own capacity.
        q.try_push(Lane::Synth, 20).unwrap();
        q.try_push(Lane::Synth, 21).unwrap();
        assert_eq!(q.try_push(Lane::Synth, 22), Err(PushRefusal::Full(22)));
        assert_eq!(q.depth(Lane::Hit), 1);
        assert_eq!(q.depth(Lane::Synth), 2);
        // Draining reopens admission.
        assert_eq!(q.pop(), Some((Lane::Hit, 10)));
        q.try_push(Lane::Hit, 12).unwrap();
    }

    #[test]
    fn close_fails_producers_and_drains_consumers() {
        let q = LaneQueues::new(4, 4);
        q.push(Lane::Synth, 1).unwrap();
        q.push(Lane::Hit, 2).unwrap();
        q.close();
        assert_eq!(q.push(Lane::Synth, 3), Err(3));
        assert_eq!(q.try_push(Lane::Hit, 4), Err(PushRefusal::Closed(4)));
        assert_eq!(q.pop(), Some((Lane::Hit, 2)));
        assert_eq!(q.pop(), Some((Lane::Synth, 1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_hit(), None);
    }

    #[test]
    fn pop_hit_ignores_synth_backlog_and_wakes_on_hits() {
        let q = Arc::new(LaneQueues::new(8, 8));
        q.push(Lane::Synth, 100).unwrap();
        let hit_worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_hit())
        };
        // The hit worker must sleep through synth pushes…
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(Lane::Synth, 101).unwrap();
        assert!(!hit_worker.is_finished(), "synth work must not wake it");
        // …and wake for a hit.
        q.push(Lane::Hit, 7).unwrap();
        assert_eq!(hit_worker.join().unwrap(), Some(7));
        assert_eq!(q.depth(Lane::Synth), 2, "synth backlog untouched");
    }

    #[test]
    fn blocking_push_resumes_when_space_frees() {
        let q = Arc::new(LaneQueues::new(4, 1));
        q.push(Lane::Synth, 0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(Lane::Synth, 1).is_ok())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some((Lane::Synth, 0)));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some((Lane::Synth, 1)));
    }

    #[test]
    fn contended_lanes_preserve_every_job() {
        let q = Arc::new(LaneQueues::new(4, 4));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let lane = if i % 3 == 0 { Lane::Hit } else { Lane::Synth };
                        q.push(lane, p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some((_, v)) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
