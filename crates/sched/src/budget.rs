//! Time-varying per-cycle power budgets.
//!
//! The paper's constraint is a scalar "maximum power per clock-cycle"
//! `P<`, but the systems it targets are battery-powered: what the cell
//! can actually deliver varies over the schedule — supply sag as state
//! of charge drops, DVS or thermal phase steps, co-scheduled loads. A
//! [`PowerBudget`] generalizes the scalar bound to an *envelope*: one
//! bound per clock cycle, in one of three shapes:
//!
//! * [`PowerBudget::constant`] — the classical scalar `P<` (the paper's
//!   constraint, and the representation every legacy `f64` entry point
//!   maps to).
//! * [`PowerBudget::steps`] — piecewise-constant phases: `(cycle,
//!   bound)` breakpoints, each bound holding from its cycle until the
//!   next breakpoint.
//! * [`PowerBudget::per_cycle`] — an explicit bound for every cycle
//!   (e.g. derived from a battery model's sag curve — see
//!   `pchls_battery::budget_from_model`).
//!
//! A constant budget — whether built by [`PowerBudget::constant`] or as
//! a degenerate steps/per-cycle envelope whose bounds are all equal —
//! is detected by [`PowerLedger::with_budget`](crate::PowerLedger) and
//! takes the original scalar code path, so scalar-constrained synthesis
//! is byte-identical to what it was before envelopes existed.

use serde::{Deserialize, Serialize};

/// A per-cycle power bound envelope: the generalized form of the
/// paper's scalar `P<` constraint.
///
/// Bounds may be `f64::INFINITY` (unconstrained cycles) but never NaN
/// or negative — the constructors panic, and the hand-written
/// [`Deserialize`] impl rejects such values, so a `PowerBudget` in hand
/// is always valid.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerBudget {
    /// The same bound in every cycle (the paper's scalar `P<`).
    Constant(f64),
    /// Piecewise-constant phases: `(start_cycle, bound)` breakpoints in
    /// strictly increasing cycle order. The first breakpoint's bound
    /// also covers any cycles before it; each bound holds until the
    /// next breakpoint.
    Steps(Vec<(u32, f64)>),
    /// One explicit bound per cycle; the last entry persists beyond the
    /// end of the vector (so a short envelope behaves like its final
    /// phase held).
    PerCycle(Vec<f64>),
}

/// A single bound is valid if it is non-negative and not NaN
/// (`+inf` allowed: an unconstrained cycle).
fn valid_bound(b: f64) -> bool {
    !b.is_nan() && b >= 0.0
}

impl PowerBudget {
    /// A constant budget (the classical scalar constraint).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is NaN or negative.
    #[must_use]
    pub fn constant(bound: f64) -> PowerBudget {
        assert!(valid_bound(bound), "power bound must be non-negative");
        PowerBudget::Constant(bound)
    }

    /// A stepwise budget from `(start_cycle, bound)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty, cycles are not strictly increasing,
    /// or any bound is NaN or negative.
    #[must_use]
    pub fn steps(steps: Vec<(u32, f64)>) -> PowerBudget {
        assert!(
            !steps.is_empty(),
            "a stepwise budget needs at least one step"
        );
        for w in steps.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "step cycles must be strictly increasing ({} then {})",
                w[0].0,
                w[1].0
            );
        }
        for &(_, b) in &steps {
            assert!(valid_bound(b), "power bound must be non-negative");
        }
        PowerBudget::Steps(steps)
    }

    /// An explicit per-cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or any entry is NaN or negative.
    #[must_use]
    pub fn per_cycle(bounds: Vec<f64>) -> PowerBudget {
        assert!(
            !bounds.is_empty(),
            "a per-cycle budget needs at least one entry"
        );
        for &b in &bounds {
            assert!(valid_bound(b), "power bound must be non-negative");
        }
        PowerBudget::PerCycle(bounds)
    }

    /// An unconstrained budget (`P< = ∞` in every cycle).
    #[must_use]
    pub fn unbounded() -> PowerBudget {
        PowerBudget::Constant(f64::INFINITY)
    }

    /// The bound in force at `cycle`.
    #[must_use]
    pub fn bound_at(&self, cycle: u32) -> f64 {
        match self {
            PowerBudget::Constant(b) => *b,
            PowerBudget::Steps(steps) => steps
                .iter()
                .rev()
                .find(|&&(c, _)| c <= cycle)
                .map_or(steps[0].1, |&(_, b)| b),
            PowerBudget::PerCycle(bounds) => {
                let i = (cycle as usize).min(bounds.len() - 1);
                bounds[i]
            }
        }
    }

    /// The exact bounds over cycles `0..horizon` (empty for a zero
    /// horizon).
    #[must_use]
    pub fn materialize(&self, horizon: u32) -> Vec<f64> {
        (0..horizon).map(|c| self.bound_at(c)).collect()
    }

    /// The scalar bound, when this budget is structurally constant.
    #[must_use]
    pub fn as_constant(&self) -> Option<f64> {
        match self {
            PowerBudget::Constant(b) => Some(*b),
            _ => None,
        }
    }

    /// The largest bound any cycle can see — the scalar this envelope
    /// relaxes to. Quick-reject tests (`power > peak` can fit nowhere)
    /// and display paths use this; for a constant budget it *is* the
    /// bound.
    #[must_use]
    pub fn peak(&self) -> f64 {
        match self {
            PowerBudget::Constant(b) => *b,
            PowerBudget::Steps(steps) => steps
                .iter()
                .map(|&(_, b)| b)
                .fold(f64::NEG_INFINITY, f64::max),
            PowerBudget::PerCycle(bounds) => {
                bounds.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
        }
    }

    /// The largest bound any cycle **inside `horizon`** can see — the
    /// effective peak a scheduler bounded by `horizon` compares
    /// against. For bounds that extend past the horizon (a long
    /// per-cycle vector, a step at or beyond it) this is tighter than
    /// [`peak`](PowerBudget::peak), and it is the value
    /// [`PowerLedger::with_budget`](crate::PowerLedger::with_budget)
    /// materializes: quick-reject tests must use this form or they
    /// disagree with the ledger about what can ever fit. A zero
    /// horizon reports the opening bound.
    #[must_use]
    pub fn peak_within(&self, horizon: u32) -> f64 {
        if horizon == 0 {
            return self.bound_at(0);
        }
        (0..horizon)
            .map(|c| self.bound_at(c))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The smallest bound any cycle can see (the envelope's tightest
    /// phase).
    #[must_use]
    pub fn floor(&self) -> f64 {
        match self {
            PowerBudget::Constant(b) => *b,
            PowerBudget::Steps(steps) => {
                steps.iter().map(|&(_, b)| b).fold(f64::INFINITY, f64::min)
            }
            PowerBudget::PerCycle(bounds) => bounds.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }

    /// Whether the budget constrains anything (some cycle's bound is
    /// finite).
    #[must_use]
    pub fn is_binding(&self) -> bool {
        self.floor().is_finite()
    }

    /// The budget with every bound multiplied by `factor` — the knob
    /// envelope sweeps range over
    /// ([`SweepSpec::budget_scale`](../pchls_core/enum.SweepSpec.html)).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is NaN or negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> PowerBudget {
        assert!(valid_bound(factor), "scale factor must be non-negative");
        // `0 × ∞` is NaN in IEEE-754 but a zero bound in constraint
        // terms (no headroom stays no headroom; an unbounded phase
        // scaled to nothing is closed): pin both zero cases so a valid
        // budget times a valid factor is always a valid budget.
        let scale = |b: f64| {
            if b == 0.0 || factor == 0.0 {
                0.0
            } else {
                b * factor
            }
        };
        match self {
            PowerBudget::Constant(b) => PowerBudget::Constant(scale(*b)),
            PowerBudget::Steps(steps) => {
                PowerBudget::Steps(steps.iter().map(|&(c, b)| (c, scale(b))).collect())
            }
            PowerBudget::PerCycle(bounds) => {
                PowerBudget::PerCycle(bounds.iter().map(|&b| scale(b)).collect())
            }
        }
    }

    /// The budget with every bound capped at `cap` (element-wise
    /// minimum). Any schedule feasible under the clamped budget is
    /// feasible under the original — this is how the refinement ratchet
    /// tightens an envelope without ever relaxing a phase.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is NaN or negative.
    #[must_use]
    pub fn clamped(&self, cap: f64) -> PowerBudget {
        assert!(valid_bound(cap), "cap must be non-negative");
        match self {
            PowerBudget::Constant(b) => PowerBudget::Constant(b.min(cap)),
            PowerBudget::Steps(steps) => {
                PowerBudget::Steps(steps.iter().map(|&(c, b)| (c, b.min(cap))).collect())
            }
            PowerBudget::PerCycle(bounds) => {
                PowerBudget::PerCycle(bounds.iter().map(|&b| b.min(cap)).collect())
            }
        }
    }

    /// The budget reduced to its simplest spelling over `horizon`
    /// cycles: an envelope whose bounds are bit-identical in every
    /// cycle of the horizon becomes [`PowerBudget::Constant`], anything
    /// else is returned as written. Semantics within the horizon are
    /// unchanged — this exists so long-running consumers (the synthesis
    /// kernel constructs thousands of ledgers per run) can pay the
    /// constant-detection scan once instead of per ledger.
    #[must_use]
    pub fn normalized(&self, horizon: u32) -> PowerBudget {
        if self.as_constant().is_some() {
            return self.clone();
        }
        let first = self.bound_at(0);
        if (1..horizon).all(|c| self.bound_at(c).to_bits() == first.to_bits()) {
            PowerBudget::Constant(first)
        } else {
            self.clone()
        }
    }

    /// The time-reversed envelope over `horizon` cycles: forward cycle
    /// `c` maps to reversed cycle `horizon - 1 - c`. This is what
    /// `palap` runs against — the power-constrained ALAP schedules the
    /// reversed graph, so its ledger must see the mirrored bounds.
    /// Constant budgets reverse to themselves (keeping the scalar fast
    /// path).
    #[must_use]
    pub fn reversed(&self, horizon: u32) -> PowerBudget {
        match self {
            PowerBudget::Constant(b) => PowerBudget::Constant(*b),
            _ => {
                let mut bounds = self.materialize(horizon);
                bounds.reverse();
                if bounds.is_empty() {
                    PowerBudget::Constant(self.bound_at(0))
                } else {
                    PowerBudget::PerCycle(bounds)
                }
            }
        }
    }

    /// Checks that the budget is shaped for a horizon of `latency`
    /// cycles: a per-cycle envelope must cover exactly `latency` cycles
    /// and no step may start at or past the horizon (constant budgets
    /// fit every horizon). This is the one source of truth for the
    /// wrong-horizon rules the CLI's `--budget` validation and the
    /// `pchls-serve` wire layer both enforce.
    ///
    /// # Errors
    ///
    /// A human-readable description of the mismatch.
    pub fn check_horizon(&self, latency: u32) -> Result<(), String> {
        match self {
            PowerBudget::Constant(_) => Ok(()),
            PowerBudget::Steps(steps) => match steps.iter().find(|&&(c, _)| c >= latency) {
                Some(&(c, _)) => Err(format!(
                    "budget step at cycle {c} is at or past the latency bound {latency}"
                )),
                None => Ok(()),
            },
            PowerBudget::PerCycle(bounds) => {
                if bounds.len() == latency as usize {
                    Ok(())
                } else {
                    Err(format!(
                        "per-cycle budget covers {} cycle(s) but the latency bound is {latency}",
                        bounds.len()
                    ))
                }
            }
        }
    }

    /// A stable 64-bit digest of the budget's *semantics* over cycles
    /// `0..horizon`: the exact per-cycle bounds a scheduler bounded by
    /// `horizon` observes, hashed bit-for-bit
    /// ([`pchls_cdfg::StableHasher`], so the value is identical across
    /// runs, platforms and builds and safe to persist on disk).
    ///
    /// Two budgets digest identically exactly when they impose the same
    /// bound in every usable cycle, regardless of spelling —
    /// `constant(25.0)`, `per_cycle(vec![25.0; 17])` and
    /// `steps(vec![(0, 25.0)])` all collapse to one digest at
    /// `horizon = 17`. That is the right key for a result store: such
    /// budgets produce byte-identical designs (the ledger normalizes
    /// them onto one code path), so they must share one cache entry.
    #[must_use]
    pub fn digest(&self, horizon: u32) -> u64 {
        // Domain tag: "pbudget" as ASCII words.
        let mut h = pchls_cdfg::StableHasher::new(0x7062_7564_6765_7431);
        h.write_u64(u64::from(horizon));
        if horizon == 0 {
            h.write_u64(self.bound_at(0).to_bits());
        }
        for c in 0..horizon {
            h.write_u64(self.bound_at(c).to_bits());
        }
        h.finish()
    }

    /// A short human-readable description (`P<25`, `envelope(12..30 over
    /// 3 steps)`, …) for error messages and reports.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            PowerBudget::Constant(b) => format!("P<{b}"),
            PowerBudget::Steps(steps) => format!(
                "envelope({}..{} over {} step(s))",
                self.floor(),
                self.peak(),
                steps.len()
            ),
            PowerBudget::PerCycle(bounds) => format!(
                "envelope({}..{} over {} cycle(s))",
                self.floor(),
                self.peak(),
                bounds.len()
            ),
        }
    }
}

impl From<f64> for PowerBudget {
    /// A scalar bound converts to a constant budget, so every legacy
    /// call site (`SynthesisConstraints::new(17, 25.0)`) keeps working.
    fn from(bound: f64) -> PowerBudget {
        PowerBudget::constant(bound)
    }
}

// The vendored serde derive handles only unit enums, so the tagged
// representation is written by hand:
//
// ```json
// {"constant": 25.0}
// {"steps": [[0, 30.0], [8, 12.0]]}
// {"per_cycle": [30.0, 30.0, 12.0]}
// ```
//
// This doubles as the `--budget` file format and the `pchls-serve` wire
// field. Deserialization re-validates every bound, so budgets arriving
// off the wire hold the same invariants the constructors enforce.
impl Serialize for PowerBudget {
    fn to_value(&self) -> serde::Value {
        let (key, value) = match self {
            PowerBudget::Constant(b) => ("constant", b.to_value()),
            PowerBudget::Steps(steps) => ("steps", steps.to_value()),
            PowerBudget::PerCycle(bounds) => ("per_cycle", bounds.to_value()),
        };
        serde::Value::Object(vec![(key.to_string(), value)])
    }
}

impl Deserialize for PowerBudget {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let Some(fields) = value.as_object() else {
            return Err(serde::Error::custom(
                "expected an object with one of `constant`, `steps`, `per_cycle`",
            ));
        };
        let [(key, inner)] = fields else {
            return Err(serde::Error::custom(format!(
                "expected exactly one of `constant`, `steps`, `per_cycle`, got {} key(s)",
                fields.len()
            )));
        };
        let check = |b: f64| -> Result<f64, serde::Error> {
            if valid_bound(b) {
                Ok(b)
            } else {
                Err(serde::Error::custom(format!(
                    "power bound {b} must be non-negative"
                )))
            }
        };
        match key.as_str() {
            "constant" => Ok(PowerBudget::Constant(check(f64::from_value(inner)?)?)),
            "steps" => {
                let steps = Vec::<(u32, f64)>::from_value(inner)?;
                if steps.is_empty() {
                    return Err(serde::Error::custom("`steps` must not be empty"));
                }
                for w in steps.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(serde::Error::custom(format!(
                            "step cycles must be strictly increasing ({} then {})",
                            w[0].0, w[1].0
                        )));
                    }
                }
                for &(_, b) in &steps {
                    check(b)?;
                }
                Ok(PowerBudget::Steps(steps))
            }
            "per_cycle" => {
                let bounds = Vec::<f64>::from_value(inner)?;
                if bounds.is_empty() {
                    return Err(serde::Error::custom("`per_cycle` must not be empty"));
                }
                for &b in &bounds {
                    check(b)?;
                }
                Ok(PowerBudget::PerCycle(bounds))
            }
            other => Err(serde::Error::custom(format!(
                "unknown budget kind `{other}` (expected `constant`, `steps` or `per_cycle`)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_bound_everywhere() {
        let b = PowerBudget::constant(25.0);
        assert_eq!(b.bound_at(0), 25.0);
        assert_eq!(b.bound_at(1000), 25.0);
        assert_eq!(b.peak(), 25.0);
        assert_eq!(b.floor(), 25.0);
        assert_eq!(b.as_constant(), Some(25.0));
    }

    #[test]
    fn steps_hold_until_the_next_breakpoint() {
        let b = PowerBudget::steps(vec![(0, 30.0), (4, 12.0), (8, 20.0)]);
        assert_eq!(b.bound_at(0), 30.0);
        assert_eq!(b.bound_at(3), 30.0);
        assert_eq!(b.bound_at(4), 12.0);
        assert_eq!(b.bound_at(7), 12.0);
        assert_eq!(b.bound_at(8), 20.0);
        assert_eq!(b.bound_at(100), 20.0);
        assert_eq!(b.peak(), 30.0);
        assert_eq!(b.floor(), 12.0);
        assert_eq!(b.as_constant(), None);
    }

    #[test]
    fn late_first_step_covers_earlier_cycles() {
        let b = PowerBudget::steps(vec![(3, 9.0), (6, 18.0)]);
        assert_eq!(b.bound_at(0), 9.0);
        assert_eq!(b.bound_at(5), 9.0);
        assert_eq!(b.bound_at(6), 18.0);
    }

    #[test]
    fn per_cycle_final_entry_persists() {
        let b = PowerBudget::per_cycle(vec![10.0, 20.0, 5.0]);
        assert_eq!(b.bound_at(1), 20.0);
        assert_eq!(b.bound_at(2), 5.0);
        assert_eq!(b.bound_at(99), 5.0);
        assert_eq!(b.materialize(5), vec![10.0, 20.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn scaling_multiplies_every_bound() {
        let b = PowerBudget::steps(vec![(0, 30.0), (4, 12.0)]).scaled(0.5);
        assert_eq!(b.bound_at(0), 15.0);
        assert_eq!(b.bound_at(4), 6.0);
    }

    #[test]
    fn scaling_zero_against_infinity_stays_a_valid_budget() {
        // IEEE-754 would make these NaN; the constraint semantics pin
        // them to zero, so every scaled budget remains ledger-valid.
        assert_eq!(
            PowerBudget::unbounded().scaled(0.0),
            PowerBudget::constant(0.0)
        );
        assert_eq!(
            PowerBudget::constant(0.0).scaled(f64::INFINITY),
            PowerBudget::constant(0.0)
        );
        let b = PowerBudget::steps(vec![(0, f64::INFINITY), (4, 12.0)]).scaled(0.0);
        assert_eq!(b.bound_at(0), 0.0);
        assert_eq!(b.bound_at(4), 0.0);
        // A scaled budget always builds a ledger without panicking.
        let _ = crate::PowerLedger::with_budget(8, &b);
    }

    #[test]
    fn horizon_check_enforces_shape_rules() {
        assert!(PowerBudget::constant(5.0).check_horizon(1).is_ok());
        assert!(PowerBudget::steps(vec![(0, 5.0), (9, 1.0)])
            .check_horizon(10)
            .is_ok());
        let err = PowerBudget::steps(vec![(0, 5.0), (9, 1.0)])
            .check_horizon(9)
            .unwrap_err();
        assert!(err.contains("cycle 9"), "{err}");
        assert!(PowerBudget::per_cycle(vec![1.0; 4])
            .check_horizon(4)
            .is_ok());
        let err = PowerBudget::per_cycle(vec![1.0; 4])
            .check_horizon(5)
            .unwrap_err();
        assert!(err.contains("4 cycle(s)"), "{err}");
    }

    #[test]
    fn reversal_mirrors_the_time_axis() {
        let b = PowerBudget::steps(vec![(0, 30.0), (4, 12.0)]);
        let r = b.reversed(6);
        for c in 0..6 {
            assert_eq!(r.bound_at(c), b.bound_at(5 - c), "cycle {c}");
        }
        // Constant budgets reverse structurally to themselves.
        let c = PowerBudget::constant(7.0);
        assert_eq!(c.reversed(10), c);
    }

    #[test]
    fn unbounded_is_not_binding() {
        assert!(!PowerBudget::unbounded().is_binding());
        assert!(PowerBudget::constant(5.0).is_binding());
        // An envelope with one finite phase is binding.
        assert!(PowerBudget::steps(vec![(0, f64::INFINITY), (4, 9.0)]).is_binding());
    }

    #[test]
    fn serde_round_trips_all_shapes() {
        for b in [
            PowerBudget::constant(25.0),
            PowerBudget::steps(vec![(0, 30.0), (8, 12.5)]),
            PowerBudget::per_cycle(vec![5.0, 10.0, 2.5]),
        ] {
            let json = serde_json::to_string(&b).unwrap();
            let back: PowerBudget = serde_json::from_str(&json).unwrap();
            assert_eq!(back, b, "{json}");
        }
    }

    #[test]
    fn deserialization_rejects_invalid_bounds() {
        for bad in [
            r#"{"constant": -1.0}"#,
            r#"{"steps": []}"#,
            r#"{"steps": [[4, 9.0], [2, 5.0]]}"#,
            r#"{"per_cycle": []}"#,
            r#"{"per_cycle": [1.0, -2.0]}"#,
            r#"{"nope": 1.0}"#,
            r#"{"constant": 1.0, "per_cycle": [1.0]}"#,
            r#"[1.0]"#,
        ] {
            assert!(
                serde_json::from_str::<PowerBudget>(bad).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn digest_keys_on_semantics_not_spelling() {
        let constant = PowerBudget::constant(25.0);
        let flat_steps = PowerBudget::steps(vec![(0, 25.0)]);
        let flat_cycles = PowerBudget::per_cycle(vec![25.0; 17]);
        let d = constant.digest(17);
        assert_eq!(flat_steps.digest(17), d, "one step, same semantics");
        assert_eq!(flat_cycles.digest(17), d, "explicit cycles, same semantics");
        // A different bound, a different shape inside the horizon, and a
        // different horizon all move the digest.
        assert_ne!(PowerBudget::constant(26.0).digest(17), d);
        assert_ne!(PowerBudget::steps(vec![(0, 25.0), (9, 12.0)]).digest(17), d);
        assert_ne!(constant.digest(18), d);
        // Shape differences *past* the horizon are invisible to a
        // scheduler and therefore to the digest.
        assert_eq!(
            PowerBudget::steps(vec![(0, 30.0), (5, 12.0)]).digest(5),
            PowerBudget::constant(30.0).digest(5),
        );
        // Stable across calls (and across runs by construction).
        assert_eq!(constant.digest(17), d);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_constant_rejected() {
        let _ = PowerBudget::constant(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_steps_rejected() {
        let _ = PowerBudget::steps(vec![(4, 1.0), (4, 2.0)]);
    }
}
