//! Per-cycle power accounting: profiles and incremental ledgers.

use serde::{Deserialize, Serialize};

use crate::budget::PowerBudget;
use crate::schedule::Schedule;
use crate::timing::TimingMap;

use pchls_cdfg::NodeId;

/// Tolerance used when comparing accumulated floating-point power sums to
/// a bound, so that summation order cannot flip a feasibility decision.
pub(crate) const POWER_EPS: f64 = 1e-9;

/// Materializes `budget` over `horizon`, collapsing to `Ok(bound)` when
/// every cycle's bound is **bit-identical** (an empty horizon collapses
/// to the opening bound — with zero leaves the value is never read).
/// This is the one collapse rule shared by [`PowerLedger`] and
/// [`NaivePowerLedger`], so the fast ledger and the differential-test
/// reference can never disagree about which mode a budget selects. The
/// `Err` carries the per-cycle bounds plus their peak.
#[allow(clippy::type_complexity)]
fn materialize_or_constant(budget: &PowerBudget, horizon: u32) -> Result<f64, (Vec<f64>, f64)> {
    // Constant-collapsing budgets are the hot case (every scalar
    // constraint, once per scheduler invocation), so detect them
    // without materializing: no allocation on the fast path.
    if horizon == 0 {
        return Ok(budget.bound_at(0));
    }
    let first = budget.bound_at(0);
    if budget.as_constant().is_some()
        || (1..horizon).all(|c| budget.bound_at(c).to_bits() == first.to_bits())
    {
        return Ok(first);
    }
    let bounds = budget.materialize(horizon);
    let peak = bounds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Err((bounds, peak))
}

/// The power drawn in every clock cycle of a schedule.
///
/// This is the quantity Figure 1 of the paper plots: the per-cycle profile
/// whose spikes shorten battery life.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    per_cycle: Vec<f64>,
}

impl PowerProfile {
    /// Computes the profile of `schedule` under `timing`.
    #[must_use]
    pub fn of(schedule: &Schedule, timing: &TimingMap) -> PowerProfile {
        let mut per_cycle = vec![0.0; schedule.latency(timing) as usize];
        for (i, &s) in schedule.starts().iter().enumerate() {
            let id = NodeId::new(i as u32);
            let t = timing.of(id);
            for c in s..s + t.delay {
                per_cycle[c as usize] += t.power;
            }
        }
        PowerProfile { per_cycle }
    }

    /// Wraps a raw per-cycle vector (e.g. from a datapath simulation).
    #[must_use]
    pub fn from_cycles(per_cycle: Vec<f64>) -> PowerProfile {
        PowerProfile { per_cycle }
    }

    /// Power drawn in each cycle, indexed from cycle 0.
    #[must_use]
    pub fn per_cycle(&self) -> &[f64] {
        &self.per_cycle
    }

    /// Number of cycles covered (the schedule latency).
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.per_cycle.len() as u32
    }

    /// The maximum power drawn in any single cycle.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.per_cycle.iter().copied().fold(0.0, f64::max)
    }

    /// Mean power over the whole schedule (0 for an empty profile).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.per_cycle.is_empty() {
            0.0
        } else {
            self.energy() / self.per_cycle.len() as f64
        }
    }

    /// Total energy: the sum of per-cycle powers.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.per_cycle.iter().sum()
    }

    /// Peak-to-average ratio, the "spikiness" the paper's Figure 1
    /// illustrates. Returns 0 for an empty profile.
    #[must_use]
    pub fn peak_to_average(&self) -> f64 {
        let avg = self.average();
        if avg == 0.0 {
            0.0
        } else {
            self.peak() / avg
        }
    }

    /// The first cycle whose power exceeds `bound` (with tolerance), if
    /// any, together with the power drawn there.
    #[must_use]
    pub fn first_violation(&self, bound: f64) -> Option<(u32, f64)> {
        self.per_cycle
            .iter()
            .enumerate()
            .find(|&(_, &p)| p > bound + POWER_EPS)
            .map(|(c, &p)| (c as u32, p))
    }

    /// The first cycle whose power exceeds the budget's bound *for that
    /// cycle* (with tolerance), if any, together with the power drawn
    /// there. For a constant budget this is exactly
    /// [`first_violation`](PowerProfile::first_violation) at its bound.
    #[must_use]
    pub fn first_violation_budget(&self, budget: &PowerBudget) -> Option<(u32, f64)> {
        self.per_cycle
            .iter()
            .enumerate()
            .find(|&(c, &p)| p > budget.bound_at(c as u32) + POWER_EPS)
            .map(|(c, &p)| (c as u32, p))
    }

    /// Renders the profile as a rows-of-`#` ASCII bar chart, one line per
    /// cycle — handy for eyeballing Figure 1-style comparisons.
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        let peak = self.peak();
        let mut out = String::new();
        for (c, &p) in self.per_cycle.iter().enumerate() {
            let bars = if peak > 0.0 {
                ((p / peak) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!("{c:>4} |{} {p:.1}\n", "#".repeat(bars)));
        }
        out
    }

    /// As [`to_ascii`](PowerProfile::to_ascii), but overlaying the
    /// budget envelope: each line marks the cycle's bound with `|` at
    /// its scaled position (so a stepwise or sagging budget is visible
    /// as a moving wall, not a single scalar peak line), annotates the
    /// bound value, and flags cycles whose draw exceeds their bound with
    /// `!!`. Infinite bounds render without a wall.
    #[must_use]
    pub fn to_ascii_budget(&self, width: usize, budget: &PowerBudget) -> String {
        // One scale for both bars and walls, so their positions compare.
        let finite_peak = (0..self.per_cycle.len() as u32)
            .map(|c| budget.bound_at(c))
            .filter(|b| b.is_finite())
            .fold(self.peak(), f64::max);
        let mut out = String::new();
        for (c, &p) in self.per_cycle.iter().enumerate() {
            let bound = budget.bound_at(c as u32);
            let scale = |v: f64| {
                if finite_peak > 0.0 {
                    ((v / finite_peak) * width as f64).round() as usize
                } else {
                    0
                }
            };
            let bars = scale(p).min(width);
            let mut row = vec![b' '; width + 1];
            for cell in row.iter_mut().take(bars) {
                *cell = b'#';
            }
            if bound.is_finite() {
                row[scale(bound).min(width)] = b'|';
            }
            let row = String::from_utf8(row).expect("ASCII row");
            let violated = p > bound + POWER_EPS;
            let mark = if violated { " !!" } else { "" };
            let bound_txt = if bound.is_finite() {
                format!(" (P<{bound:.1})")
            } else {
                String::new()
            };
            out.push_str(&format!("{c:>4} {row} {p:.1}{bound_txt}{mark}\n"));
        }
        out
    }
}

/// An incremental per-cycle power ledger with a fixed budget envelope,
/// used by the power-constrained schedulers and the synthesis loop to
/// reserve and release execution intervals.
///
/// Two modes share one type, selected by the budget's shape:
///
/// * **Constant mode** — the classical scalar bound. Backed by a
///   **segment tree of per-cycle range maxima** over the exact per-cycle
///   reservation values: leaves hold the same `f64`s the naive
///   cycle-scanning ledger would (mutated in the same order, so
///   bit-exact), while internal nodes cache interval maxima. Since
///   IEEE-754 addition is monotone, `u + power ≤ bound` holds for every
///   cycle of an interval iff it holds for the interval's maximum.
/// * **Envelope mode** — a time-varying [`PowerBudget`]. A usage
///   maximum says nothing against a moving bound, so the tree instead
///   caches **range minima of per-cycle slack** `slack[c] = budget[c] −
///   used[c]`: an operation drawing `power` fits an interval iff
///   `power ≤ slack + ε` holds at the interval's *minimum* slack. Slack
///   leaves are recomputed from `(budget[c], used[c])` whenever a usage
///   leaf changes, so they are a pure function of the usage state and
///   snapshot/restore rollback stays bit-exact for free.
///
/// Either way [`PowerLedger::fits`] answers in O(log horizon) instead
/// of O(delay), and [`PowerLedger::earliest_fit`] skips past each
/// infeasible region in one O(log horizon) descent to its **rightmost**
/// violating cycle (every start whose window covers that cycle is
/// infeasible, so the search resumes just past it — the "max headroom
/// skip" — which works unchanged against the slack minima).
///
/// Horizons up to `SCAN_LIMIT` (64) cycles — the paper's benchmarks —
/// skip the internal nodes entirely and scan the leaves exactly like
/// the naive ledger: at that scale a handful of contiguous loads beats
/// any tree walk, and the asymptotics only matter for the large random
/// graphs of the `scale` workload. Both modes hold identical leaf
/// values, so every answer is the same either way.
///
/// A budget whose materialized bounds are all equal — however it was
/// spelled ([`PowerBudget::Constant`], a one-step envelope, a flat
/// per-cycle vector) — is detected by [`PowerLedger::with_budget`] and
/// runs in constant mode, preserving the original scalar arithmetic
/// bit for bit.
///
/// [`NaivePowerLedger`] retains the cycle-scanning implementation as the
/// differential-testing reference for both modes.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLedger {
    /// Flat binary segment tree of **usage**: `tree[size + c]` is the
    /// exact power reserved in cycle `c`; `tree[i]` for `i < size` is
    /// the max of its two children (maintained only in constant mode,
    /// and never read in leaf-scan mode). Leaves beyond the horizon
    /// stay at `-inf` (the max identity) so padding never influences a
    /// query.
    tree: Vec<f64>,
    /// Envelope mode only: flat binary segment tree of **slack**,
    /// `slack[size + c] = bounds[c] - tree[size + c]`, internal nodes
    /// the min of their children (min identity `+inf` pads beyond the
    /// horizon). Empty in constant mode.
    slack: Vec<f64>,
    /// Envelope mode only: the materialized per-cycle bound. Empty in
    /// constant mode.
    bounds: Vec<f64>,
    /// Number of leaves (horizon rounded up to a power of two).
    size: usize,
    /// The scheduling horizon in cycles (leaves actually in use).
    horizon: usize,
    /// Leaf-scan mode: the horizon is small enough that queries scan
    /// the leaves directly and internal maxima/minima are not
    /// maintained.
    scan: bool,
    /// Constant mode: the scalar bound. Envelope mode: the peak bound
    /// (used for the can-never-fit quick reject).
    max_power: f64,
}

/// Largest power-of-two leaf count for which [`PowerLedger`] stays in
/// leaf-scan mode.
const SCAN_LIMIT: usize = 64;

/// Longest window the tree modes still answer with a direct (unrolled)
/// leaf scan instead of a tree walk. With the 4-wide reductions below, a
/// 32-cycle window is 8 independent max/min steps — still cheaper than
/// descending and re-ascending ~2·log₂(horizon) internal nodes.
const CHUNK_LIMIT: usize = 32;

/// Maximum of `values` with four independent accumulators so the f64
/// `max` chains don't serialize — the compiler keeps the accumulators in
/// separate registers (auto-vectorizing where the target allows).
/// Returns `-inf` for an empty slice. `f64::max` here is commutative and
/// associative over the ledger's leaf values (never NaN, see
/// [`PowerLedger::reserve`]'s fits-first contract), so the reassociated
/// reduction equals the sequential fold bit for bit.
fn unrolled_max(values: &[f64]) -> f64 {
    let mut acc = [f64::NEG_INFINITY; 4];
    let chunks = values.chunks_exact(4);
    let tail = chunks.remainder();
    for c in chunks {
        acc[0] = acc[0].max(c[0]);
        acc[1] = acc[1].max(c[1]);
        acc[2] = acc[2].max(c[2]);
        acc[3] = acc[3].max(c[3]);
    }
    let mut m = (acc[0].max(acc[1])).max(acc[2].max(acc[3]));
    for &v in tail {
        m = m.max(v);
    }
    m
}

/// Minimum of `values`, the 4-wide dual of [`unrolled_max`]. Returns
/// `+inf` for an empty slice.
fn unrolled_min(values: &[f64]) -> f64 {
    let mut acc = [f64::INFINITY; 4];
    let chunks = values.chunks_exact(4);
    let tail = chunks.remainder();
    for c in chunks {
        acc[0] = acc[0].min(c[0]);
        acc[1] = acc[1].min(c[1]);
        acc[2] = acc[2].min(c[2]);
        acc[3] = acc[3].min(c[3]);
    }
    let mut m = (acc[0].min(acc[1])).min(acc[2].min(acc[3]));
    for &v in tail {
        m = m.min(v);
    }
    m
}

impl PowerLedger {
    /// Creates an empty constant-mode ledger over `horizon` cycles with
    /// budget `max_power` per cycle (may be `f64::INFINITY`).
    ///
    /// # Panics
    ///
    /// Panics if `max_power` is NaN or negative.
    #[must_use]
    pub fn new(horizon: u32, max_power: f64) -> PowerLedger {
        assert!(!max_power.is_nan() && max_power >= 0.0, "invalid budget");
        let horizon = horizon as usize;
        let size = horizon.next_power_of_two().max(1);
        let scan = size <= SCAN_LIMIT;
        let mut tree = vec![f64::NEG_INFINITY; 2 * size];
        for leaf in &mut tree[size..size + horizon] {
            *leaf = 0.0;
        }
        if !scan {
            // Cycle-0 maxima for the in-use prefix: pull every internal
            // node.
            for i in (1..size).rev() {
                tree[i] = tree[2 * i].max(tree[2 * i + 1]);
            }
        }
        PowerLedger {
            tree,
            slack: Vec::new(),
            bounds: Vec::new(),
            size,
            horizon,
            scan,
            max_power,
        }
    }

    /// Creates an empty ledger over `horizon` cycles under `budget`.
    ///
    /// A budget whose bounds are equal in every cycle of the horizon
    /// takes the constant-mode fast path ([`PowerLedger::new`]) — same
    /// arithmetic, same answers, bit for bit — so passing
    /// `PowerBudget::constant(p)` here is exactly `new(horizon, p)`.
    #[must_use]
    pub fn with_budget(horizon: u32, budget: &PowerBudget) -> PowerLedger {
        let (bounds, peak) = match materialize_or_constant(budget, horizon) {
            Ok(constant) => return PowerLedger::new(horizon, constant),
            Err(envelope) => envelope,
        };
        let horizon = horizon as usize;
        let size = horizon.next_power_of_two().max(1);
        let scan = size <= SCAN_LIMIT;
        let mut tree = vec![f64::NEG_INFINITY; 2 * size];
        for leaf in &mut tree[size..size + horizon] {
            *leaf = 0.0;
        }
        let mut slack = vec![f64::INFINITY; 2 * size];
        for (c, &b) in bounds.iter().enumerate() {
            // Written as `bound - used` (not just `bound`) so the leaf
            // initialization is the same expression `refresh` maintains.
            slack[size + c] = b - tree[size + c];
        }
        if !scan {
            for i in (1..size).rev() {
                slack[i] = slack[2 * i].min(slack[2 * i + 1]);
            }
        }
        PowerLedger {
            tree,
            slack,
            bounds,
            size,
            horizon,
            scan,
            max_power: peak,
        }
    }

    /// Whether this ledger runs in envelope mode (time-varying bounds).
    #[must_use]
    pub fn is_envelope(&self) -> bool {
        !self.bounds.is_empty()
    }

    /// The per-cycle budget in constant mode; the envelope's **peak**
    /// bound in envelope mode (see [`PowerLedger::bound`] for the
    /// per-cycle value).
    #[must_use]
    pub fn max_power(&self) -> f64 {
        self.max_power
    }

    /// The bound in force at `cycle` (the peak bound beyond the
    /// horizon).
    #[must_use]
    pub fn bound(&self, cycle: u32) -> f64 {
        if self.is_envelope() {
            self.bounds
                .get(cycle as usize)
                .copied()
                .unwrap_or(self.max_power)
        } else {
            self.max_power
        }
    }

    /// The scheduling horizon in cycles.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon as u32
    }

    /// Power already reserved in `cycle` (0 beyond the horizon).
    #[must_use]
    pub fn used(&self, cycle: u32) -> f64 {
        if (cycle as usize) < self.horizon {
            self.tree[self.size + cycle as usize]
        } else {
            0.0
        }
    }

    /// Maximum reserved power over cycles `[l, r)` (`-inf` when empty).
    fn range_max(&self, mut l: usize, mut r: usize) -> f64 {
        let mut m = f64::NEG_INFINITY;
        l += self.size;
        r += self.size;
        while l < r {
            if l & 1 == 1 {
                m = m.max(self.tree[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                m = m.max(self.tree[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        m
    }

    /// Minimum slack over cycles `[l, r)` (`+inf` when empty; envelope
    /// mode only).
    fn range_min_slack(&self, mut l: usize, mut r: usize) -> f64 {
        let mut m = f64::INFINITY;
        l += self.size;
        r += self.size;
        while l < r {
            if l & 1 == 1 {
                m = m.min(self.slack[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                m = m.min(self.slack[r]);
            }
            l >>= 1;
            r >>= 1;
        }
        m
    }

    /// Re-derives every cached quantity over the (non-empty) leaf range
    /// `[l, r)` after its usage leaves were rewritten: the slack leaves
    /// (envelope mode — always, so they stay a pure function of the
    /// usage state even in leaf-scan mode) and the internal
    /// maxima/minima (tree modes only). Per level only the parents
    /// spanning the range are touched, so the total work is
    /// O(r - l + log horizon).
    fn refresh(&mut self, l: usize, r: usize) {
        if self.is_envelope() {
            for c in l..r {
                self.slack[self.size + c] = self.bounds[c] - self.tree[self.size + c];
            }
        }
        if self.scan {
            return;
        }
        let mut lo = l + self.size;
        let mut hi = r + self.size - 1;
        if self.is_envelope() {
            while lo > 1 {
                lo >>= 1;
                hi >>= 1;
                for i in lo..=hi {
                    self.slack[i] = self.slack[2 * i].min(self.slack[2 * i + 1]);
                }
            }
        } else {
            while lo > 1 {
                lo >>= 1;
                hi >>= 1;
                for i in lo..=hi {
                    self.tree[i] = self.tree[2 * i].max(self.tree[2 * i + 1]);
                }
            }
        }
    }

    /// Whether an operation drawing `power` per cycle can execute during
    /// `[start, start + delay)` without the budget overflowing, entirely
    /// within the horizon.
    #[must_use]
    pub fn fits(&self, start: u32, delay: u32, power: f64) -> bool {
        let end = start as usize + delay as usize;
        if end > self.horizon {
            return false;
        }
        if delay == 0 {
            return true;
        }
        if self.is_envelope() {
            // Envelope predicate: enough slack in every covered cycle,
            // answered against the window's minimum slack (IEEE-754
            // addition is monotone, so the min decides for every leaf —
            // the same argument the slack tree rests on).
            if self.scan || delay as usize <= CHUNK_LIMIT {
                let min = unrolled_min(&self.slack[self.size + start as usize..self.size + end]);
                return power <= min + POWER_EPS;
            }
            return power <= self.range_min_slack(start as usize, end) + POWER_EPS;
        }
        // Short intervals (the norm: module delays are 1–2 cycles) are a
        // few contiguous loads reduced 4-wide — faster than any tree
        // walk, and the window's maximum decides exactly like the naive
        // per-cycle check over the same values.
        if self.scan || delay as usize <= CHUNK_LIMIT {
            let max = unrolled_max(&self.tree[self.size + start as usize..self.size + end]);
            return max + power <= self.max_power + POWER_EPS;
        }
        self.range_max(start as usize, end) + power <= self.max_power + POWER_EPS
    }

    /// Reserves `power` in every cycle of `[start, start + delay)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval does not fit (callers must check
    /// [`PowerLedger::fits`] first); reserving blindly would corrupt the
    /// budget accounting.
    pub fn reserve(&mut self, start: u32, delay: u32, power: f64) {
        assert!(
            self.fits(start, delay, power),
            "reserve([{start}, {}), {power}) violates the budget",
            start + delay
        );
        if delay == 0 {
            return;
        }
        let (s, e) = (start as usize, start as usize + delay as usize);
        for leaf in &mut self.tree[self.size + s..self.size + e] {
            *leaf += power;
        }
        self.refresh(s, e);
    }

    /// Releases a previous reservation.
    ///
    /// Floating-point subtraction can leave ~1 ulp of residue; callers
    /// that need bit-exact rollback (the synthesis loop's candidate
    /// attempts) should pair [`PowerLedger::snapshot`] /
    /// [`PowerLedger::restore`] instead.
    pub fn release(&mut self, start: u32, delay: u32, power: f64) {
        if delay == 0 {
            return;
        }
        let (s, e) = (start as usize, start as usize + delay as usize);
        assert!(e <= self.horizon, "release beyond the horizon");
        for leaf in &mut self.tree[self.size + s..self.size + e] {
            *leaf = (*leaf - power).max(0.0);
        }
        self.refresh(s, e);
    }

    /// The exact per-cycle reservations over `[start, start + delay)`
    /// (clipped to the horizon), for later [`PowerLedger::restore`].
    #[must_use]
    pub fn snapshot(&self, start: u32, delay: u32) -> Vec<f64> {
        let end = (start as usize + delay as usize).min(self.horizon);
        let s = (start as usize).min(end);
        self.tree[self.size + s..self.size + end].to_vec()
    }

    /// Writes back a [`PowerLedger::snapshot`], undoing every reservation
    /// and release on those cycles since the snapshot was taken —
    /// bit-exact, unlike arithmetic [`PowerLedger::release`].
    pub fn restore(&mut self, start: u32, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let s = start as usize;
        let e = s + values.len();
        assert!(e <= self.horizon, "restore beyond the horizon");
        self.tree[self.size + s..self.size + e].copy_from_slice(values);
        self.refresh(s, e);
    }

    /// The rightmost cycle in `[l, r)` whose reservation plus `power`
    /// overflows the budget, if any.
    fn last_violation(&self, l: usize, r: usize, power: f64) -> Option<usize> {
        if self.is_envelope() {
            // Envelope predicate on the slack values — the exact
            // negation of the `fits` comparison, so the offset search
            // agrees with the probe bit for bit. The cached aggregate is
            // the interval *minimum*, and since f64 addition is
            // monotone, a node whose minimum slack still admits `power`
            // admits it in every leaf: the same prune/descent shape
            // works with min in place of max.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let violates = move |s: f64| !(power <= s + POWER_EPS);
            if self.scan || r - l <= CHUNK_LIMIT {
                // Clean-range pre-check: the whole window passes iff its
                // minimum slack does (the common case on the offset
                // search's final probe), so the position scan only runs
                // when a violation is known to exist.
                let leaves = &self.slack[self.size + l..self.size + r];
                if !violates(unrolled_min(leaves)) {
                    return None;
                }
                return leaves.iter().rposition(|&s| violates(s)).map(|i| l + i);
            }
            return last_violation_in(&self.slack, self.size, 1, 0, self.size, l, r, &violates);
        }
        // The exact negation of the `fits` comparison: anything that is
        // not `≤ bound` — greater *or* unordered (NaN) — violates, so
        // the negated operator is deliberate (`v + power > bound` would
        // silently pass NaN).
        let bound = self.max_power + POWER_EPS;
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let violates = move |v: f64| !(v + power <= bound);
        // Short windows (the norm: delays are 1–2 cycles) scan their
        // leaves directly; the descent only pays off on long intervals.
        // The 4-wide max pre-check settles the clean case (every final
        // probe of an offset search) without a positional scan — NaN
        // `power` makes `violates` total, so the max still falls through.
        if self.scan || r - l <= CHUNK_LIMIT {
            let leaves = &self.tree[self.size + l..self.size + r];
            if !violates(unrolled_max(leaves)) {
                return None;
            }
            return leaves.iter().rposition(|&u| violates(u)).map(|i| l + i);
        }
        last_violation_in(&self.tree, self.size, 1, 0, self.size, l, r, &violates)
    }

    /// The first covered cycle of `[start, start + delay)` whose own
    /// per-cycle check rejects an additional draw of `power` — the
    /// precise counterpart of a failed [`PowerLedger::fits`], used to
    /// point error diagnostics at the violating cycle (and its own
    /// bound) instead of the interval's start. Cycles at or past the
    /// horizon report as the horizon itself (an out-of-range interval
    /// has no in-budget witness).
    #[must_use]
    pub fn first_unfit_cycle(&self, start: u32, delay: u32, power: f64) -> Option<u32> {
        if self.fits(start, delay, power) {
            return None;
        }
        let end = start.saturating_add(delay);
        if end > self.horizon() {
            return Some(self.horizon());
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        (start..end)
            .find(|&c| {
                if self.is_envelope() {
                    !(power <= self.slack[self.size + c as usize] + POWER_EPS)
                } else {
                    !(self.tree[self.size + c as usize] + power <= self.max_power + POWER_EPS)
                }
            })
            .or(Some(start))
    }

    /// The earliest start `s ≥ min_start` such that `[s, s+delay)` fits,
    /// or `None` if no such start exists within the horizon.
    ///
    /// This is exactly the paper's offset search — "if there is power
    /// available in the execution time interval … schedule, otherwise
    /// increase the offset by one" — but instead of re-scanning cycle by
    /// cycle, each failed probe jumps past its rightmost violating cycle
    /// `v` (every start in `[s, v]` keeps `v` inside its window, so all
    /// of them are infeasible and the returned start is identical to the
    /// naive scan's).
    #[must_use]
    pub fn earliest_fit(&self, min_start: u32, delay: u32, power: f64) -> Option<u32> {
        self.earliest_fit_by(min_start, delay, power, self.horizon())
    }

    /// As [`PowerLedger::earliest_fit`], but only considering starts
    /// whose interval also finishes by `latest_finish` — the bounded
    /// offset search the synthesis kernel runs against each candidate's
    /// deadline, without scanning the rest of the horizon.
    #[must_use]
    pub fn earliest_fit_by(
        &self,
        min_start: u32,
        delay: u32,
        power: f64,
        latest_finish: u32,
    ) -> Option<u32> {
        if power > self.max_power + POWER_EPS {
            return None;
        }
        let bound = latest_finish.min(self.horizon());
        if delay == 0 {
            return (min_start <= bound).then_some(min_start);
        }
        let mut s = min_start;
        while s + delay <= bound {
            match self.last_violation(s as usize, (s + delay) as usize, power) {
                None => return Some(s),
                Some(v) => s = v as u32 + 1,
            }
        }
        None
    }
}

/// Rightmost violating leaf of `[l, r)` under `node` of the segment
/// tree `arr` (usage maxima in constant mode, slack minima in envelope
/// mode), which covers `[node_l, node_r)`. A node whose cached
/// aggregate does not violate is pruned outright (its whole interval,
/// hence the intersection with `[l, r)`, is clean); a violating node
/// may owe its aggregate to leaves outside `[l, r)`, which the
/// right-before-left recursion resolves.
#[allow(clippy::too_many_arguments)]
fn last_violation_in(
    arr: &[f64],
    size: usize,
    node: usize,
    node_l: usize,
    node_r: usize,
    l: usize,
    r: usize,
    violates: &impl Fn(f64) -> bool,
) -> Option<usize> {
    if node_r <= l || r <= node_l || !violates(arr[node]) {
        return None;
    }
    if node >= size {
        return Some(node - size);
    }
    let mid = (node_l + node_r) / 2;
    last_violation_in(arr, size, 2 * node + 1, mid, node_r, l, r, violates)
        .or_else(|| last_violation_in(arr, size, 2 * node, node_l, mid, l, r, violates))
}

/// The original cycle-scanning power ledger, kept verbatim as the
/// reference implementation the segment-tree [`PowerLedger`] is
/// differential-tested against (`crates/sched/tests/properties.rs`).
/// Every operation has the naive complexity the paper's pseudocode
/// implies: O(delay) probes, O(horizon × delay) offset searches.
/// Generalized alongside the fast ledger: under a [`PowerBudget`]
/// envelope it evaluates the same per-cycle slack predicate, computed
/// from scratch on every query.
#[derive(Debug, Clone, PartialEq)]
pub struct NaivePowerLedger {
    used: Vec<f64>,
    /// Envelope mode: the materialized per-cycle bound (`None` for the
    /// classical constant budget).
    bounds: Option<Vec<f64>>,
    max_power: f64,
}

impl NaivePowerLedger {
    /// As [`PowerLedger::new`].
    ///
    /// # Panics
    ///
    /// Panics if `max_power` is NaN or negative.
    #[must_use]
    pub fn new(horizon: u32, max_power: f64) -> NaivePowerLedger {
        assert!(!max_power.is_nan() && max_power >= 0.0, "invalid budget");
        NaivePowerLedger {
            used: vec![0.0; horizon as usize],
            bounds: None,
            max_power,
        }
    }

    /// As [`PowerLedger::with_budget`]: equal-bound budgets collapse to
    /// the constant path, everything else evaluates per-cycle slack.
    #[must_use]
    pub fn with_budget(horizon: u32, budget: &PowerBudget) -> NaivePowerLedger {
        let (bounds, peak) = match materialize_or_constant(budget, horizon) {
            Ok(constant) => return NaivePowerLedger::new(horizon, constant),
            Err(envelope) => envelope,
        };
        NaivePowerLedger {
            used: vec![0.0; horizon as usize],
            bounds: Some(bounds),
            max_power: peak,
        }
    }

    /// As [`PowerLedger::horizon`].
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.used.len() as u32
    }

    /// As [`PowerLedger::used`].
    #[must_use]
    pub fn used(&self, cycle: u32) -> f64 {
        self.used.get(cycle as usize).copied().unwrap_or(0.0)
    }

    /// As [`PowerLedger::fits`], by scanning every cycle.
    #[must_use]
    pub fn fits(&self, start: u32, delay: u32, power: f64) -> bool {
        let end = start as usize + delay as usize;
        if end > self.used.len() {
            return false;
        }
        match &self.bounds {
            Some(bounds) => {
                (start as usize..end).all(|c| power <= (bounds[c] - self.used[c]) + POWER_EPS)
            }
            None => self.used[start as usize..end]
                .iter()
                .all(|&u| u + power <= self.max_power + POWER_EPS),
        }
    }

    /// As [`PowerLedger::reserve`].
    ///
    /// # Panics
    ///
    /// Panics if the interval does not fit.
    pub fn reserve(&mut self, start: u32, delay: u32, power: f64) {
        assert!(
            self.fits(start, delay, power),
            "reserve([{start}, {}), {power}) violates the budget",
            start + delay
        );
        for c in start..start + delay {
            self.used[c as usize] += power;
        }
    }

    /// As [`PowerLedger::release`].
    pub fn release(&mut self, start: u32, delay: u32, power: f64) {
        for c in start..start + delay {
            let u = &mut self.used[c as usize];
            *u = (*u - power).max(0.0);
        }
    }

    /// As [`PowerLedger::snapshot`].
    #[must_use]
    pub fn snapshot(&self, start: u32, delay: u32) -> Vec<f64> {
        let end = (start as usize + delay as usize).min(self.used.len());
        self.used[(start as usize).min(end)..end].to_vec()
    }

    /// As [`PowerLedger::restore`].
    pub fn restore(&mut self, start: u32, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        let s = start as usize;
        self.used[s..s + values.len()].copy_from_slice(values);
    }

    /// As [`PowerLedger::earliest_fit`], by increasing the offset one
    /// cycle at a time.
    #[must_use]
    pub fn earliest_fit(&self, min_start: u32, delay: u32, power: f64) -> Option<u32> {
        if power > self.max_power + POWER_EPS {
            return None;
        }
        let horizon = self.horizon();
        let mut s = min_start;
        while s + delay <= horizon {
            if self.fits(s, delay, power) {
                return Some(s);
            }
            s += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::OpTiming;

    #[test]
    fn unrolled_reductions_match_sequential_folds() {
        // Lengths straddling the 4-wide chunking (0, tails of 1–3, exact
        // multiples) against the plain folds they reassociate.
        for len in 0..=21usize {
            let values: Vec<f64> = (0..len)
                .map(|i| ((i * 37 + 11) % 17) as f64 - 5.0)
                .collect();
            let fold_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let fold_min = values.iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(unrolled_max(&values).to_bits(), fold_max.to_bits(), "{len}");
            assert_eq!(unrolled_min(&values).to_bits(), fold_min.to_bits(), "{len}");
        }
        assert_eq!(unrolled_max(&[]), f64::NEG_INFINITY);
        assert_eq!(unrolled_min(&[]), f64::INFINITY);
    }

    #[test]
    fn ledger_reserve_release_round_trip() {
        let mut l = PowerLedger::new(10, 5.0);
        assert!(l.fits(2, 3, 4.0));
        l.reserve(2, 3, 4.0);
        assert!(!l.fits(3, 1, 2.0));
        assert!(l.fits(3, 1, 1.0));
        l.release(2, 3, 4.0);
        assert!(l.fits(3, 1, 5.0));
    }

    #[test]
    fn earliest_fit_skips_busy_cycles() {
        let mut l = PowerLedger::new(10, 5.0);
        l.reserve(0, 4, 3.0);
        // 3 power/cycle for 2 cycles cannot fit until cycle 4.
        assert_eq!(l.earliest_fit(0, 2, 3.0), Some(4));
        // 2 power/cycle fits immediately.
        assert_eq!(l.earliest_fit(0, 2, 2.0), Some(0));
    }

    #[test]
    fn earliest_fit_rejects_oversized_ops() {
        let l = PowerLedger::new(10, 5.0);
        assert_eq!(l.earliest_fit(0, 1, 6.0), None);
    }

    #[test]
    fn earliest_fit_respects_horizon() {
        let l = PowerLedger::new(4, 5.0);
        assert_eq!(l.earliest_fit(3, 2, 1.0), None);
        assert_eq!(l.earliest_fit(3, 1, 1.0), Some(3));
    }

    #[test]
    fn infinite_budget_always_fits() {
        let l = PowerLedger::new(4, f64::INFINITY);
        assert!(l.fits(0, 4, 1e18));
    }

    #[test]
    fn profile_statistics() {
        let s = Schedule::new(vec![0, 0, 1]);
        let t = TimingMap::from_entries(vec![
            OpTiming {
                delay: 1,
                power: 2.0,
            },
            OpTiming {
                delay: 2,
                power: 3.0,
            },
            OpTiming {
                delay: 1,
                power: 1.0,
            },
        ]);
        let p = PowerProfile::of(&s, &t);
        assert_eq!(p.per_cycle(), &[5.0, 4.0]);
        assert_eq!(p.cycles(), 2);
        assert!((p.peak() - 5.0).abs() < 1e-12);
        assert!((p.energy() - 9.0).abs() < 1e-12);
        assert!((p.average() - 4.5).abs() < 1e-12);
        assert!((p.peak_to_average() - 5.0 / 4.5).abs() < 1e-12);
        assert_eq!(p.first_violation(4.5), Some((0, 5.0)));
        assert_eq!(p.first_violation(5.0), None);
    }

    #[test]
    fn ascii_chart_has_one_line_per_cycle() {
        let p = PowerProfile::from_cycles(vec![1.0, 2.0, 0.5]);
        let chart = p.to_ascii(20);
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "violates the budget")]
    fn blind_reserve_panics() {
        let mut l = PowerLedger::new(4, 1.0);
        l.reserve(0, 1, 2.0);
    }

    #[test]
    fn equal_bound_budgets_collapse_to_constant_mode() {
        // However the constant is spelled, the ledger must land on the
        // scalar fast path — this is what keeps scalar-constrained
        // synthesis byte-identical to the pre-envelope code.
        for budget in [
            PowerBudget::constant(5.0),
            PowerBudget::steps(vec![(0, 5.0)]),
            PowerBudget::per_cycle(vec![5.0; 10]),
        ] {
            let l = PowerLedger::with_budget(10, &budget);
            assert!(!l.is_envelope(), "{budget:?}");
            assert_eq!(l, PowerLedger::new(10, 5.0), "{budget:?}");
        }
        // Infinity is a constant too.
        assert!(!PowerLedger::with_budget(10, &PowerBudget::unbounded()).is_envelope());
    }

    #[test]
    fn envelope_ledger_enforces_each_cycles_own_bound() {
        let budget = PowerBudget::steps(vec![(0, 10.0), (4, 3.0)]);
        let l = PowerLedger::with_budget(8, &budget);
        assert!(l.is_envelope());
        assert_eq!(l.bound(0), 10.0);
        assert_eq!(l.bound(4), 3.0);
        // 5 power/cycle fits the opening phase but not the tail.
        assert!(l.fits(0, 4, 5.0));
        assert!(!l.fits(2, 4, 5.0)); // crosses into the 3.0 phase
        assert!(!l.fits(4, 2, 5.0));
        assert!(l.fits(4, 2, 3.0));
        // The offset search lands inside whichever phase admits the op.
        assert_eq!(l.earliest_fit(0, 2, 5.0), Some(0));
        assert_eq!(l.earliest_fit(3, 2, 5.0), None);
        assert_eq!(l.earliest_fit(0, 2, 3.0), Some(0));
        // Above the peak bound: nothing ever fits.
        assert_eq!(l.earliest_fit(0, 1, 11.0), None);
    }

    #[test]
    fn envelope_reservations_consume_slack() {
        let budget = PowerBudget::per_cycle(vec![10.0, 10.0, 4.0, 4.0]);
        let mut l = PowerLedger::with_budget(4, &budget);
        l.reserve(0, 4, 3.0);
        assert!(l.fits(0, 2, 7.0));
        assert!(!l.fits(0, 3, 2.0)); // cycle 2 has 1.0 slack left
        assert!(l.fits(2, 2, 1.0));
        let snap = l.snapshot(0, 4);
        l.reserve(2, 2, 1.0);
        assert!(!l.fits(2, 1, 0.5));
        l.restore(0, &snap[..]);
        assert!(l.fits(2, 2, 1.0), "restore must refresh slack");
    }

    #[test]
    fn envelope_tree_mode_matches_leaf_scan_answers() {
        // One envelope past the scan limit: same queries through the
        // slack-min tree and through a scan-sized twin of each phase.
        let mut bounds = vec![9.0; 200];
        for b in bounds.iter_mut().skip(100) {
            *b = 4.0;
        }
        let mut l = PowerLedger::with_budget(200, &PowerBudget::per_cycle(bounds));
        l.reserve(50, 100, 2.0);
        assert!(l.fits(0, 50, 8.9));
        assert!(!l.fits(0, 51, 8.0));
        assert!(!l.fits(120, 40, 2.5));
        assert!(l.fits(150, 50, 2.0));
        // Long-window earliest_fit crosses the phase boundary with the
        // headroom skip.
        assert_eq!(l.earliest_fit(0, 60, 6.5), Some(0));
        // 8.0 exceeds the 7.0 slack inside the reservation and the 4.0
        // tail bound, so no 60-cycle window past cycle 0 ever fits.
        assert_eq!(l.earliest_fit(1, 60, 8.0), None);
        // 2.5 exceeds the 2.0 slack of the reserved tail cells
        // [100, 150): the headroom skip must jump the search straight
        // past the whole region.
        assert_eq!(l.earliest_fit(61, 40, 2.5), Some(150));
    }

    #[test]
    fn profile_violations_against_a_budget() {
        let p = PowerProfile::from_cycles(vec![5.0, 5.0, 5.0]);
        let constant = PowerBudget::constant(4.0);
        assert_eq!(p.first_violation_budget(&constant), Some((0, 5.0)));
        let steps = PowerBudget::steps(vec![(0, 6.0), (2, 4.0)]);
        assert_eq!(p.first_violation_budget(&steps), Some((2, 5.0)));
        assert_eq!(
            p.first_violation_budget(&PowerBudget::constant(5.0)),
            p.first_violation(5.0)
        );
    }

    #[test]
    fn budget_ascii_overlay_marks_bounds_and_violations() {
        let p = PowerProfile::from_cycles(vec![2.0, 8.0]);
        let chart = p.to_ascii_budget(20, &PowerBudget::steps(vec![(0, 10.0), (1, 5.0)]));
        assert_eq!(chart.lines().count(), 2);
        assert!(chart.contains("(P<10.0)"));
        assert!(chart.contains("(P<5.0)"));
        assert!(chart.lines().nth(1).unwrap().ends_with("!!"));
        // Unbounded cycles render without a wall or annotation.
        let free = p.to_ascii_budget(20, &PowerBudget::unbounded());
        assert!(!free.contains("(P<"));
    }
}
