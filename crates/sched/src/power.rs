//! Per-cycle power accounting: profiles and incremental ledgers.

use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;
use crate::timing::TimingMap;

use pchls_cdfg::NodeId;

/// Tolerance used when comparing accumulated floating-point power sums to
/// a bound, so that summation order cannot flip a feasibility decision.
pub(crate) const POWER_EPS: f64 = 1e-9;

/// The power drawn in every clock cycle of a schedule.
///
/// This is the quantity Figure 1 of the paper plots: the per-cycle profile
/// whose spikes shorten battery life.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    per_cycle: Vec<f64>,
}

impl PowerProfile {
    /// Computes the profile of `schedule` under `timing`.
    #[must_use]
    pub fn of(schedule: &Schedule, timing: &TimingMap) -> PowerProfile {
        let mut per_cycle = vec![0.0; schedule.latency(timing) as usize];
        for (i, &s) in schedule.starts().iter().enumerate() {
            let id = NodeId::new(i as u32);
            let t = timing.of(id);
            for c in s..s + t.delay {
                per_cycle[c as usize] += t.power;
            }
        }
        PowerProfile { per_cycle }
    }

    /// Wraps a raw per-cycle vector (e.g. from a datapath simulation).
    #[must_use]
    pub fn from_cycles(per_cycle: Vec<f64>) -> PowerProfile {
        PowerProfile { per_cycle }
    }

    /// Power drawn in each cycle, indexed from cycle 0.
    #[must_use]
    pub fn per_cycle(&self) -> &[f64] {
        &self.per_cycle
    }

    /// Number of cycles covered (the schedule latency).
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.per_cycle.len() as u32
    }

    /// The maximum power drawn in any single cycle.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.per_cycle.iter().copied().fold(0.0, f64::max)
    }

    /// Mean power over the whole schedule (0 for an empty profile).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.per_cycle.is_empty() {
            0.0
        } else {
            self.energy() / self.per_cycle.len() as f64
        }
    }

    /// Total energy: the sum of per-cycle powers.
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.per_cycle.iter().sum()
    }

    /// Peak-to-average ratio, the "spikiness" the paper's Figure 1
    /// illustrates. Returns 0 for an empty profile.
    #[must_use]
    pub fn peak_to_average(&self) -> f64 {
        let avg = self.average();
        if avg == 0.0 {
            0.0
        } else {
            self.peak() / avg
        }
    }

    /// The first cycle whose power exceeds `bound` (with tolerance), if
    /// any, together with the power drawn there.
    #[must_use]
    pub fn first_violation(&self, bound: f64) -> Option<(u32, f64)> {
        self.per_cycle
            .iter()
            .enumerate()
            .find(|&(_, &p)| p > bound + POWER_EPS)
            .map(|(c, &p)| (c as u32, p))
    }

    /// Renders the profile as a rows-of-`#` ASCII bar chart, one line per
    /// cycle — handy for eyeballing Figure 1-style comparisons.
    #[must_use]
    pub fn to_ascii(&self, width: usize) -> String {
        let peak = self.peak();
        let mut out = String::new();
        for (c, &p) in self.per_cycle.iter().enumerate() {
            let bars = if peak > 0.0 {
                ((p / peak) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!("{c:>4} |{} {p:.1}\n", "#".repeat(bars)));
        }
        out
    }
}

/// An incremental per-cycle power ledger with a fixed budget, used by the
/// power-constrained schedulers and the synthesis loop to reserve and
/// release execution intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLedger {
    used: Vec<f64>,
    max_power: f64,
}

impl PowerLedger {
    /// Creates an empty ledger over `horizon` cycles with budget
    /// `max_power` per cycle (may be `f64::INFINITY`).
    ///
    /// # Panics
    ///
    /// Panics if `max_power` is NaN or negative.
    #[must_use]
    pub fn new(horizon: u32, max_power: f64) -> PowerLedger {
        assert!(!max_power.is_nan() && max_power >= 0.0, "invalid budget");
        PowerLedger {
            used: vec![0.0; horizon as usize],
            max_power,
        }
    }

    /// The per-cycle budget.
    #[must_use]
    pub fn max_power(&self) -> f64 {
        self.max_power
    }

    /// The scheduling horizon in cycles.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.used.len() as u32
    }

    /// Power already reserved in `cycle` (0 beyond the horizon).
    #[must_use]
    pub fn used(&self, cycle: u32) -> f64 {
        self.used.get(cycle as usize).copied().unwrap_or(0.0)
    }

    /// Whether an operation drawing `power` per cycle can execute during
    /// `[start, start + delay)` without the budget overflowing, entirely
    /// within the horizon.
    #[must_use]
    pub fn fits(&self, start: u32, delay: u32, power: f64) -> bool {
        let end = start as usize + delay as usize;
        if end > self.used.len() {
            return false;
        }
        self.used[start as usize..end]
            .iter()
            .all(|&u| u + power <= self.max_power + POWER_EPS)
    }

    /// Reserves `power` in every cycle of `[start, start + delay)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval does not fit (callers must check
    /// [`PowerLedger::fits`] first); reserving blindly would corrupt the
    /// budget accounting.
    pub fn reserve(&mut self, start: u32, delay: u32, power: f64) {
        assert!(
            self.fits(start, delay, power),
            "reserve([{start}, {}), {power}) violates the budget",
            start + delay
        );
        for c in start..start + delay {
            self.used[c as usize] += power;
        }
    }

    /// Releases a previous reservation.
    ///
    /// Floating-point subtraction can leave ~1 ulp of residue; callers
    /// that need bit-exact rollback (the synthesis loop's candidate
    /// attempts) should pair [`PowerLedger::snapshot`] /
    /// [`PowerLedger::restore`] instead.
    pub fn release(&mut self, start: u32, delay: u32, power: f64) {
        for c in start..start + delay {
            let u = &mut self.used[c as usize];
            *u = (*u - power).max(0.0);
        }
    }

    /// The exact per-cycle reservations over `[start, start + delay)`
    /// (clipped to the horizon), for later [`PowerLedger::restore`].
    #[must_use]
    pub fn snapshot(&self, start: u32, delay: u32) -> Vec<f64> {
        let end = (start as usize + delay as usize).min(self.used.len());
        self.used[(start as usize).min(end)..end].to_vec()
    }

    /// Writes back a [`PowerLedger::snapshot`], undoing every reservation
    /// and release on those cycles since the snapshot was taken —
    /// bit-exact, unlike arithmetic [`PowerLedger::release`].
    pub fn restore(&mut self, start: u32, values: &[f64]) {
        let s = start as usize;
        self.used[s..s + values.len()].copy_from_slice(values);
    }

    /// The earliest start `s ≥ min_start` such that `[s, s+delay)` fits,
    /// or `None` if no such start exists within the horizon.
    ///
    /// This is exactly the paper's offset search: "if there is power
    /// available in the execution time interval … schedule, otherwise
    /// increase the offset by one".
    #[must_use]
    pub fn earliest_fit(&self, min_start: u32, delay: u32, power: f64) -> Option<u32> {
        if power > self.max_power + POWER_EPS {
            return None;
        }
        let horizon = self.horizon();
        let mut s = min_start;
        while s + delay <= horizon {
            if self.fits(s, delay, power) {
                return Some(s);
            }
            s += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::OpTiming;

    #[test]
    fn ledger_reserve_release_round_trip() {
        let mut l = PowerLedger::new(10, 5.0);
        assert!(l.fits(2, 3, 4.0));
        l.reserve(2, 3, 4.0);
        assert!(!l.fits(3, 1, 2.0));
        assert!(l.fits(3, 1, 1.0));
        l.release(2, 3, 4.0);
        assert!(l.fits(3, 1, 5.0));
    }

    #[test]
    fn earliest_fit_skips_busy_cycles() {
        let mut l = PowerLedger::new(10, 5.0);
        l.reserve(0, 4, 3.0);
        // 3 power/cycle for 2 cycles cannot fit until cycle 4.
        assert_eq!(l.earliest_fit(0, 2, 3.0), Some(4));
        // 2 power/cycle fits immediately.
        assert_eq!(l.earliest_fit(0, 2, 2.0), Some(0));
    }

    #[test]
    fn earliest_fit_rejects_oversized_ops() {
        let l = PowerLedger::new(10, 5.0);
        assert_eq!(l.earliest_fit(0, 1, 6.0), None);
    }

    #[test]
    fn earliest_fit_respects_horizon() {
        let l = PowerLedger::new(4, 5.0);
        assert_eq!(l.earliest_fit(3, 2, 1.0), None);
        assert_eq!(l.earliest_fit(3, 1, 1.0), Some(3));
    }

    #[test]
    fn infinite_budget_always_fits() {
        let l = PowerLedger::new(4, f64::INFINITY);
        assert!(l.fits(0, 4, 1e18));
    }

    #[test]
    fn profile_statistics() {
        let s = Schedule::new(vec![0, 0, 1]);
        let t = TimingMap::from_entries(vec![
            OpTiming {
                delay: 1,
                power: 2.0,
            },
            OpTiming {
                delay: 2,
                power: 3.0,
            },
            OpTiming {
                delay: 1,
                power: 1.0,
            },
        ]);
        let p = PowerProfile::of(&s, &t);
        assert_eq!(p.per_cycle(), &[5.0, 4.0]);
        assert_eq!(p.cycles(), 2);
        assert!((p.peak() - 5.0).abs() < 1e-12);
        assert!((p.energy() - 9.0).abs() < 1e-12);
        assert!((p.average() - 4.5).abs() < 1e-12);
        assert!((p.peak_to_average() - 5.0 / 4.5).abs() < 1e-12);
        assert_eq!(p.first_violation(4.5), Some((0, 5.0)));
        assert_eq!(p.first_violation(5.0), None);
    }

    #[test]
    fn ascii_chart_has_one_line_per_cycle() {
        let p = PowerProfile::from_cycles(vec![1.0, 2.0, 0.5]);
        let chart = p.to_ascii(20);
        assert_eq!(chart.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "violates the budget")]
    fn blind_reserve_panics() {
        let mut l = PowerLedger::new(4, 1.0);
        l.reserve(0, 1, 2.0);
    }
}
