//! Mobility (slack window) analysis.

use pchls_cdfg::{Cdfg, NodeId};

use crate::alap::alap;
use crate::asap::asap;
use crate::error::ScheduleError;
use crate::pasap::{palap, pasap};
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Earliest/latest start windows of every operation under a latency bound
/// — classic mobility, or its power-aware variant where the window ends
/// come from [`pasap`]/[`palap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mobility {
    early: Schedule,
    late: Schedule,
}

impl Mobility {
    /// Classical mobility: ASAP/ALAP windows under `latency`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::LatencyExceeded`] if the critical path
    /// does not fit.
    pub fn compute(
        graph: &Cdfg,
        timing: &TimingMap,
        latency: u32,
    ) -> Result<Mobility, ScheduleError> {
        Ok(Mobility {
            early: asap(graph, timing),
            late: alap(graph, timing, latency)?,
        })
    }

    /// Power-aware mobility: `pasap`/`palap` windows. When the reversed
    /// heuristic fails where the forward one succeeds, the window
    /// degrades to zero mobility at the `pasap` position (both heuristics
    /// are greedy; see the `pasap` module docs).
    ///
    /// # Errors
    ///
    /// Propagates `pasap`'s infeasibility.
    pub fn power_aware(
        graph: &Cdfg,
        timing: &TimingMap,
        latency: u32,
        max_power: f64,
    ) -> Result<Mobility, ScheduleError> {
        let early = pasap(graph, timing, max_power, latency)?;
        let late = palap(graph, timing, max_power, latency).unwrap_or_else(|_| early.clone());
        Ok(Mobility { early, late })
    }

    /// [`power_aware`](Mobility::power_aware) under a time-varying
    /// [`PowerBudget`](crate::PowerBudget) envelope; a constant budget
    /// reproduces the scalar variant exactly.
    ///
    /// # Errors
    ///
    /// Propagates `pasap_budget`'s infeasibility.
    pub fn power_aware_budget(
        graph: &Cdfg,
        timing: &TimingMap,
        latency: u32,
        budget: &crate::PowerBudget,
    ) -> Result<Mobility, ScheduleError> {
        let early = crate::pasap_budget(graph, timing, budget, latency)?;
        let late =
            crate::palap_budget(graph, timing, budget, latency).unwrap_or_else(|_| early.clone());
        Ok(Mobility { early, late })
    }

    /// The `[earliest, latest]` start window of `id`. The window can be
    /// inverted (`latest < earliest`) only in the power-aware variant,
    /// where both ends are heuristic; callers should clamp.
    #[must_use]
    pub fn window(&self, id: NodeId) -> (u32, u32) {
        (self.early.start(id), self.late.start(id))
    }

    /// Slack of `id`: how many cycles it can slide (`0` when critical).
    #[must_use]
    pub fn slack(&self, id: NodeId) -> u32 {
        let (e, l) = self.window(id);
        l.saturating_sub(e)
    }

    /// Whether `id` has zero slack.
    #[must_use]
    pub fn is_critical(&self, id: NodeId) -> bool {
        self.slack(id) == 0
    }

    /// All zero-slack operations, in id order.
    #[must_use]
    pub fn critical_ops(&self, graph: &Cdfg) -> Vec<NodeId> {
        graph
            .node_ids()
            .filter(|&id| self.is_critical(id))
            .collect()
    }

    /// The earliest-start schedule backing the windows.
    #[must_use]
    pub fn earliest(&self) -> &Schedule {
        &self.early
    }

    /// The latest-start schedule backing the windows.
    #[must_use]
    pub fn latest(&self) -> &Schedule {
        &self.late
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks::hal;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn setup() -> (Cdfg, TimingMap) {
        let g = hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        (g, t)
    }

    #[test]
    fn critical_path_ops_have_zero_slack_at_tight_bound() {
        let (g, t) = setup();
        let m = Mobility::compute(&g, &t, 8).unwrap(); // critical path = 8
        let critical = m.critical_ops(&g);
        assert!(!critical.is_empty());
        // The u -> t2 -> t3 -> s1 -> u1 -> out chain is critical.
        for &id in &critical {
            assert_eq!(m.slack(id), 0);
        }
    }

    #[test]
    fn slack_grows_with_the_latency_bound() {
        let (g, t) = setup();
        let tight = Mobility::compute(&g, &t, 8).unwrap();
        let loose = Mobility::compute(&g, &t, 14).unwrap();
        for id in g.node_ids() {
            assert_eq!(loose.slack(id), tight.slack(id) + 6, "{id}");
        }
    }

    #[test]
    fn infeasible_bound_is_an_error() {
        let (g, t) = setup();
        assert!(Mobility::compute(&g, &t, 5).is_err());
    }

    #[test]
    fn power_aware_windows_shrink_under_pressure() {
        let (g, t) = setup();
        let free = Mobility::power_aware(&g, &t, 20, f64::INFINITY).unwrap();
        let tight = Mobility::power_aware(&g, &t, 20, 12.0).unwrap();
        let total_free: u32 = g.node_ids().map(|id| free.slack(id)).sum();
        let total_tight: u32 = g.node_ids().map(|id| tight.slack(id)).sum();
        assert!(
            total_tight <= total_free,
            "power pressure must not create slack: {total_tight} > {total_free}"
        );
    }

    #[test]
    fn power_aware_budget_matches_scalar_for_constant_budgets() {
        let (g, t) = setup();
        let scalar = Mobility::power_aware(&g, &t, 20, 12.0).unwrap();
        let budget =
            Mobility::power_aware_budget(&g, &t, 20, &crate::PowerBudget::constant(12.0)).unwrap();
        for id in g.node_ids() {
            assert_eq!(budget.window(id), scalar.window(id), "{id}");
        }
    }

    #[test]
    fn power_aware_budget_windows_respect_the_envelope() {
        let (g, t) = setup();
        let budget = crate::PowerBudget::steps(vec![(0, 40.0), (10, 9.0)]);
        let m = Mobility::power_aware_budget(&g, &t, 20, &budget).unwrap();
        // Both window ends are genuine schedules under the envelope.
        m.earliest().validate_budget(&g, &t, None, &budget).unwrap();
        m.latest()
            .validate_budget(&g, &t, Some(20), &budget)
            .unwrap();
        // An infeasible envelope propagates pasap's error.
        let hopeless = crate::PowerBudget::constant(1.0);
        assert!(Mobility::power_aware_budget(&g, &t, 20, &hopeless).is_err());
    }

    #[test]
    fn windows_expose_backing_schedules() {
        let (g, t) = setup();
        let m = Mobility::compute(&g, &t, 10).unwrap();
        for id in g.node_ids() {
            let (e, l) = m.window(id);
            assert_eq!(e, m.earliest().start(id));
            assert_eq!(l, m.latest().start(id));
            assert!(e <= l);
        }
    }
}
