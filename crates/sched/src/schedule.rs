//! The schedule type and its validation.

use serde::{Deserialize, Serialize};

use pchls_cdfg::{Cdfg, NodeId};

use crate::budget::PowerBudget;
use crate::error::ScheduleError;
use crate::power::PowerProfile;
use crate::timing::TimingMap;

/// A complete schedule: a start cycle for every node of one [`Cdfg`].
///
/// Cycle numbering starts at 0; an operation with start `s` and delay `d`
/// executes during cycles `s, s+1, …, s+d-1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    starts: Vec<u32>,
}

impl Schedule {
    /// Wraps per-node start times (indexed by [`NodeId`]).
    #[must_use]
    pub fn new(starts: Vec<u32>) -> Schedule {
        Schedule { starts }
    }

    /// Number of scheduled nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the schedule covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Start cycle of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn start(&self, id: NodeId) -> u32 {
        self.starts[id.index()]
    }

    /// First cycle after `id` finishes (`start + delay`).
    #[must_use]
    pub fn finish(&self, id: NodeId, timing: &TimingMap) -> u32 {
        self.start(id) + timing.delay(id)
    }

    /// Raw start times indexed by node.
    #[must_use]
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// Total latency: the cycle after the last operation finishes.
    #[must_use]
    pub fn latency(&self, timing: &TimingMap) -> u32 {
        self.starts
            .iter()
            .enumerate()
            .map(|(i, &s)| s + timing.delay(NodeId::new(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Checks that the schedule respects data dependences, an optional
    /// latency bound, and an optional per-cycle power bound.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::PrecedenceViolated`] if a node starts before an
    ///   operand finishes.
    /// * [`ScheduleError::LatencyExceeded`] if `latency_bound` is violated.
    /// * [`ScheduleError::PowerExceeded`] if `power_bound` is violated in
    ///   some cycle.
    pub fn validate(
        &self,
        graph: &Cdfg,
        timing: &TimingMap,
        latency_bound: Option<u32>,
        power_bound: Option<f64>,
    ) -> Result<(), ScheduleError> {
        assert_eq!(self.starts.len(), graph.len(), "schedule/graph mismatch");
        for id in graph.node_ids() {
            for &p in graph.operands(id) {
                if self.start(id) < self.finish(p, timing) {
                    return Err(ScheduleError::PrecedenceViolated {
                        producer: p,
                        consumer: id,
                    });
                }
            }
        }
        let latency = self.latency(timing);
        if let Some(bound) = latency_bound {
            if latency > bound {
                return Err(ScheduleError::LatencyExceeded { latency, bound });
            }
        }
        if let Some(bound) = power_bound {
            let profile = PowerProfile::of(self, timing);
            if let Some((cycle, power)) = profile.first_violation(bound) {
                return Err(ScheduleError::PowerExceeded {
                    cycle,
                    power,
                    bound,
                });
            }
        }
        Ok(())
    }

    /// As [`validate`](Schedule::validate), but checking the per-cycle
    /// power against a [`PowerBudget`] envelope: each cycle's draw must
    /// stay under *that cycle's* bound. For a constant budget this is
    /// exactly `validate(graph, timing, latency_bound, Some(bound))`.
    ///
    /// # Errors
    ///
    /// As [`validate`](Schedule::validate); the reported
    /// [`ScheduleError::PowerExceeded`] bound is the violated cycle's
    /// own bound.
    pub fn validate_budget(
        &self,
        graph: &Cdfg,
        timing: &TimingMap,
        latency_bound: Option<u32>,
        budget: &PowerBudget,
    ) -> Result<(), ScheduleError> {
        self.validate(graph, timing, latency_bound, None)?;
        let profile = PowerProfile::of(self, timing);
        if let Some((cycle, power)) = profile.first_violation_budget(budget) {
            return Err(ScheduleError::PowerExceeded {
                cycle,
                power,
                bound: budget.bound_at(cycle),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::OpTiming;
    use pchls_cdfg::CdfgBuilder;

    fn chain() -> (Cdfg, TimingMap) {
        let mut b = CdfgBuilder::new("c");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.add(x, y);
        b.output("o", a);
        let g = b.finish().unwrap();
        let t = TimingMap::from_entries(vec![
            OpTiming {
                delay: 1,
                power: 0.2
            };
            4
        ]);
        (g, t)
    }

    #[test]
    fn latency_counts_last_finish() {
        let (_, t) = chain();
        let s = Schedule::new(vec![0, 0, 1, 2]);
        assert_eq!(s.latency(&t), 3);
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, t) = chain();
        let s = Schedule::new(vec![0, 0, 1, 2]);
        assert!(s.validate(&g, &t, Some(3), Some(1.0)).is_ok());
    }

    #[test]
    fn precedence_violation_detected() {
        let (g, t) = chain();
        let s = Schedule::new(vec![0, 0, 0, 2]); // add overlaps its inputs
        let err = s.validate(&g, &t, None, None).unwrap_err();
        assert!(matches!(err, ScheduleError::PrecedenceViolated { .. }));
    }

    #[test]
    fn latency_bound_enforced() {
        let (g, t) = chain();
        let s = Schedule::new(vec![0, 0, 1, 2]);
        let err = s.validate(&g, &t, Some(2), None).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::LatencyExceeded {
                latency: 3,
                bound: 2
            }
        ));
    }

    #[test]
    fn power_bound_enforced() {
        let (g, t) = chain();
        // Both inputs in cycle 0: 0.4 > 0.3.
        let s = Schedule::new(vec![0, 0, 1, 2]);
        let err = s.validate(&g, &t, None, Some(0.3)).unwrap_err();
        match err {
            ScheduleError::PowerExceeded { cycle, power, .. } => {
                assert_eq!(cycle, 0);
                assert!((power - 0.4).abs() < 1e-12);
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
