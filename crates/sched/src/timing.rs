//! Per-operation timing/power assignment derived from module selection.

use serde::{Deserialize, Serialize};

use pchls_cdfg::{Cdfg, NodeId};
use pchls_fulib::{ModuleId, ModuleLibrary, SelectionPolicy};

/// The execution characteristics of one operation once a module (or a
/// module estimate) has been chosen for it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpTiming {
    /// Execution delay in clock cycles (≥ 1).
    pub delay: u32,
    /// Power drawn in each executing cycle.
    pub power: f64,
}

/// A total map from the nodes of one [`Cdfg`] to their [`OpTiming`].
///
/// The synthesis loop updates entries as binding decisions fix real
/// modules; scheduling algorithms only ever read it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingMap {
    entries: Vec<OpTiming>,
}

impl TimingMap {
    /// Derives a timing map by selecting, for every node, the library
    /// module preferred under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the library does not cover some operation kind used by
    /// the graph; call
    /// [`ModuleLibrary::check_coverage`] first
    /// if the library is untrusted.
    #[must_use]
    pub fn from_policy(
        graph: &Cdfg,
        library: &ModuleLibrary,
        policy: SelectionPolicy,
    ) -> TimingMap {
        let entries = graph
            .nodes()
            .iter()
            .map(|n| {
                let id = library
                    .select(n.kind(), policy)
                    .unwrap_or_else(|| panic!("library does not cover {}", n.kind()));
                let m = library.module(id);
                OpTiming {
                    delay: m.latency(),
                    power: m.power(),
                }
            })
            .collect();
        TimingMap { entries }
    }

    /// Derives a timing map from an explicit per-node module assignment.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is not exactly one id per node.
    #[must_use]
    pub fn from_modules(graph: &Cdfg, library: &ModuleLibrary, modules: &[ModuleId]) -> TimingMap {
        assert_eq!(modules.len(), graph.len(), "one module per node required");
        let entries = modules
            .iter()
            .map(|&id| {
                let m = library.module(id);
                OpTiming {
                    delay: m.latency(),
                    power: m.power(),
                }
            })
            .collect();
        TimingMap { entries }
    }

    /// Builds a timing map from raw per-node entries (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if any delay is zero.
    #[must_use]
    pub fn from_entries(entries: Vec<OpTiming>) -> TimingMap {
        assert!(
            entries.iter().all(|e| e.delay > 0),
            "every delay must be at least one cycle"
        );
        TimingMap { entries }
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The timing of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn of(&self, id: NodeId) -> OpTiming {
        self.entries[id.index()]
    }

    /// Execution delay of `id` in cycles.
    #[must_use]
    pub fn delay(&self, id: NodeId) -> u32 {
        self.of(id).delay
    }

    /// Per-cycle power of `id`.
    #[must_use]
    pub fn power(&self, id: NodeId) -> f64 {
        self.of(id).power
    }

    /// Overwrites the timing of one node (used when binding fixes the
    /// actual module for an operation).
    pub fn set(&mut self, id: NodeId, timing: OpTiming) {
        assert!(timing.delay > 0, "delay must be at least one cycle");
        self.entries[id.index()] = timing;
    }

    /// The largest per-cycle power of any single operation.
    ///
    /// No schedule can beat this peak, so any `max_power` below it is
    /// trivially infeasible.
    #[must_use]
    pub fn max_single_op_power(&self) -> f64 {
        self.entries.iter().map(|e| e.power).fold(0.0, f64::max)
    }

    /// Sum over all operations of `delay × power`: the total energy of one
    /// execution of the graph, which is schedule-invariant.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.power * f64::from(e.delay))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks::hal;
    use pchls_cdfg::OpKind;
    use pchls_fulib::paper_library;

    #[test]
    fn fastest_policy_gives_parallel_multipliers() {
        let g = hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        for n in g.nodes() {
            match n.kind() {
                OpKind::Mul => {
                    assert_eq!(t.delay(n.id()), 2);
                    assert!((t.power(n.id()) - 8.1).abs() < 1e-12);
                }
                _ => assert_eq!(t.delay(n.id()), 1),
            }
        }
    }

    #[test]
    fn min_area_policy_gives_serial_multipliers() {
        let g = hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::MinArea);
        let mul = g.nodes().iter().find(|n| n.kind() == OpKind::Mul).unwrap();
        assert_eq!(t.delay(mul.id()), 4);
    }

    #[test]
    fn total_energy_is_schedule_invariant_quantity() {
        let g = hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        // 6 muls at 8.1*2 + 4 alu-ops at 2.5 + 1 comp 2.5 + 6 in 0.2 + 4 out 1.7
        let expected = 6.0 * 16.2 + 5.0 * 2.5 + 6.0 * 0.2 + 4.0 * 1.7;
        assert!((t.total_energy() - expected).abs() < 1e-9);
    }

    #[test]
    fn set_overrides_one_entry() {
        let g = hal();
        let mut t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let mul = g.nodes().iter().find(|n| n.kind() == OpKind::Mul).unwrap();
        t.set(
            mul.id(),
            OpTiming {
                delay: 4,
                power: 2.7,
            },
        );
        assert_eq!(t.delay(mul.id()), 4);
    }

    #[test]
    fn max_single_op_power_is_parallel_multiplier() {
        let g = hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        assert!((t.max_single_op_power() - 8.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn zero_delay_entries_rejected() {
        let _ = TimingMap::from_entries(vec![OpTiming {
            delay: 0,
            power: 1.0,
        }]);
    }
}
