//! The two-step schedule-then-flatten baseline.
//!
//! The paper positions itself against two-phase approaches (its refs
//! [1, 2]): first construct a traditional *time-constrained* schedule,
//! then reorder operations to meet the power constraint. This module
//! implements that baseline so the benefit of solving both constraints
//! simultaneously can be measured.

use serde::{Deserialize, Serialize};

use pchls_cdfg::Cdfg;

use crate::asap::asap;
use crate::budget::PowerBudget;
use crate::error::ScheduleError;
use crate::power::PowerProfile;
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Result of the two-step baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoStepOutcome {
    /// The final (always dependence- and latency-valid) schedule.
    pub schedule: Schedule,
    /// Whether the reordering phase managed to meet the power bound.
    /// When `false`, the returned schedule is the best-effort result and
    /// still violates the bound somewhere — the weakness of two-phase
    /// methods the paper exploits.
    pub met_power: bool,
    /// Number of single-cycle operation moves performed in phase two.
    pub moves: usize,
}

/// Runs the two-step baseline: phase 1 builds the ASAP schedule (the
/// traditional time-constrained result); phase 2 repeatedly takes the
/// most power-hungry movable operation out of the worst peak cycle by
/// delaying it one cycle, while never violating dependences or the
/// latency bound.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyExceeded`] if even the ASAP schedule
/// misses `latency` — then no schedule of any kind exists.
pub fn two_step(
    graph: &Cdfg,
    timing: &TimingMap,
    latency: u32,
    max_power: f64,
) -> Result<TwoStepOutcome, ScheduleError> {
    two_step_budget(graph, timing, latency, &PowerBudget::constant(max_power))
}

/// [`two_step`] against a time-varying [`PowerBudget`] envelope: phase 2
/// flattens the first cycle whose draw exceeds *that cycle's* bound, so
/// the baseline is comparable on the same scenarios the combined
/// algorithm now handles. A constant budget reproduces [`two_step`]'s
/// schedule exactly.
///
/// # Errors
///
/// As [`two_step`].
pub fn two_step_budget(
    graph: &Cdfg,
    timing: &TimingMap,
    latency: u32,
    budget: &PowerBudget,
) -> Result<TwoStepOutcome, ScheduleError> {
    // Phase 1: time-constrained schedule.
    let schedule = asap(graph, timing);
    let cp = schedule.latency(timing);
    if cp > latency {
        return Err(ScheduleError::LatencyExceeded {
            latency: cp,
            bound: latency,
        });
    }
    let mut starts: Vec<u32> = schedule.starts().to_vec();

    // Phase 2: peak flattening by cascaded unit moves. Delaying an
    // operation may require delaying its transitive successors too; a
    // move is taken only if the whole cascade still fits in `latency`.
    let max_moves = graph.len() * latency as usize + 1;
    let mut moves = 0;
    while moves < max_moves {
        let profile = PowerProfile::of(&Schedule::new(starts.clone()), timing);
        let Some((peak_cycle, _)) = profile.first_violation_budget(budget) else {
            return Ok(TwoStepOutcome {
                schedule: Schedule::new(starts),
                met_power: true,
                moves,
            });
        };
        let in_peak = |s: u32, d: u32| s <= peak_cycle && peak_cycle < s + d;
        // Candidates: ops executing in the peak cycle whose cascade fits.
        let mut best: Option<(bool, f64, Vec<u32>)> = None;
        for id in graph.node_ids() {
            let s = starts[id.index()];
            let d = timing.delay(id);
            if !in_peak(s, d) {
                continue;
            }
            let Some(pushed) = cascade_push(graph, timing, latency, &starts, id) else {
                continue;
            };
            let exits_peak = !in_peak(pushed[id.index()], d);
            let power = timing.power(id);
            let better = match &best {
                None => true,
                Some((be, bp, _)) => (exits_peak, power) > (*be, *bp),
            };
            if better {
                best = Some((exits_peak, power, pushed));
            }
        }
        match best {
            Some((_, _, pushed)) => {
                starts = pushed;
                moves += 1;
            }
            None => break, // peak is stuck: every contributor is pinned
        }
    }

    let schedule = Schedule::new(starts);
    // Same single-ε predicate as the loop, so the claim is consistent
    // with what a validator would conclude.
    let met_power = PowerProfile::of(&schedule, timing)
        .first_violation_budget(budget)
        .is_none();
    schedule.validate(graph, timing, Some(latency), None)?;
    Ok(TwoStepOutcome {
        schedule,
        met_power,
        moves,
    })
}

/// Delays `id` by one cycle, rippling the delay through its transitive
/// successors as needed. Returns the new start vector, or `None` if the
/// cascade would overrun `latency`.
fn cascade_push(
    graph: &Cdfg,
    timing: &TimingMap,
    latency: u32,
    starts: &[u32],
    id: pchls_cdfg::NodeId,
) -> Option<Vec<u32>> {
    let mut new = starts.to_vec();
    new[id.index()] += 1;
    if new[id.index()] + timing.delay(id) > latency {
        return None;
    }
    let mut queue = vec![id];
    while let Some(v) = queue.pop() {
        let fin = new[v.index()] + timing.delay(v);
        for &q in graph.successors(v) {
            if new[q.index()] < fin {
                new[q.index()] = fin;
                if fin + timing.delay(q) > latency {
                    return None;
                }
                queue.push(q);
            }
        }
    }
    Some(new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn setup(name: &str) -> (Cdfg, TimingMap) {
        let g = benchmarks::all()
            .into_iter()
            .find(|g| g.name() == name)
            .unwrap();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        (g, t)
    }

    #[test]
    fn generous_budget_needs_no_moves() {
        let (g, t) = setup("hal");
        let out = two_step(&g, &t, 20, 1e6).unwrap();
        assert!(out.met_power);
        assert_eq!(out.moves, 0);
        assert_eq!(out.schedule, asap(&g, &t));
    }

    #[test]
    fn flattening_meets_moderate_budgets_with_slack() {
        let (g, t) = setup("hal");
        let peak = PowerProfile::of(&asap(&g, &t), &t).peak();
        let out = two_step(&g, &t, 20, peak * 0.6).unwrap();
        assert!(out.met_power, "moves={}", out.moves);
        assert!(out.moves > 0);
        out.schedule
            .validate(&g, &t, Some(20), Some(peak * 0.6))
            .unwrap();
    }

    #[test]
    fn result_is_always_time_valid_even_when_power_fails() {
        let (g, t) = setup("hal");
        // At the critical path with a hopeless budget, phase 2 gets stuck
        // but must still return a dependence-valid schedule.
        let out = two_step(&g, &t, 8, 9.0).unwrap();
        assert!(!out.met_power);
        out.schedule.validate(&g, &t, Some(8), None).unwrap();
    }

    #[test]
    fn impossible_latency_is_an_error() {
        let (g, t) = setup("hal");
        assert!(matches!(
            two_step(&g, &t, 5, 1e6),
            Err(ScheduleError::LatencyExceeded { .. })
        ));
    }

    #[test]
    fn two_step_works_on_all_benchmarks() {
        let lib = paper_library();
        for g in benchmarks::all() {
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            let cp = asap(&g, &t).latency(&t);
            let peak = PowerProfile::of(&asap(&g, &t), &t).peak();
            let out = two_step(&g, &t, cp + 6, peak * 0.7).unwrap();
            out.schedule.validate(&g, &t, Some(cp + 6), None).unwrap();
        }
    }
}
