//! Classical as-soon-as-possible scheduling.

use pchls_cdfg::Cdfg;

use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Computes the ASAP schedule: every operation starts the cycle all its
/// operands have finished. Resources and power are unconstrained.
///
/// This is the schedule the paper's `pasap` "stretches" to fit the power
/// budget; with an infinite budget the two coincide.
///
/// # Example
///
/// ```
/// use pchls_cdfg::benchmarks::hal;
/// use pchls_fulib::{paper_library, SelectionPolicy};
/// use pchls_sched::{asap, TimingMap};
///
/// let g = hal();
/// let timing = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
/// let s = asap(&g, &timing);
/// assert_eq!(s.latency(&timing), 8); // hal critical path, fastest modules
/// ```
#[must_use]
pub fn asap(graph: &Cdfg, timing: &TimingMap) -> Schedule {
    let mut starts = vec![0u32; graph.len()];
    for &id in graph.topological() {
        starts[id.index()] = graph
            .operands(id)
            .iter()
            .map(|&p| starts[p.index()] + timing.delay(p))
            .max()
            .unwrap_or(0);
    }
    Schedule::new(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    #[test]
    fn asap_is_always_valid() {
        let lib = paper_library();
        for g in benchmarks::all() {
            for policy in [SelectionPolicy::Fastest, SelectionPolicy::MinArea] {
                let t = TimingMap::from_policy(&g, &lib, policy);
                let s = asap(&g, &t);
                s.validate(&g, &t, None, None)
                    .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            }
        }
    }

    #[test]
    fn asap_latency_equals_critical_path() {
        let lib = paper_library();
        for g in benchmarks::all() {
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            let s = asap(&g, &t);
            let cp = pchls_cdfg::CriticalPath::new(&g, |id| t.delay(id));
            assert_eq!(s.latency(&t), cp.length(), "{}", g.name());
        }
    }

    #[test]
    fn inputs_start_at_zero() {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let s = asap(&g, &t);
        for n in g.inputs() {
            assert_eq!(s.start(n.id()), 0);
        }
    }
}
