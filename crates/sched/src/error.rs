//! Scheduling error type.

use std::fmt;

use pchls_cdfg::NodeId;

/// Errors raised by scheduling algorithms and schedule validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No feasible start time exists for `node` within the horizon under
    /// the given power constraint.
    Infeasible {
        /// The operation that could not be placed.
        node: NodeId,
        /// The horizon (in cycles) that was searched.
        horizon: u32,
        /// The per-cycle power bound in force.
        max_power: f64,
    },
    /// A single operation needs more power per cycle than the bound
    /// allows, so no schedule can ever satisfy it.
    OpExceedsBudget {
        /// The operation in question.
        node: NodeId,
        /// Its per-cycle power.
        power: f64,
        /// The bound it exceeds.
        max_power: f64,
    },
    /// A consumer starts before one of its producers finishes.
    PrecedenceViolated {
        /// The producing operation.
        producer: NodeId,
        /// The consuming operation scheduled too early.
        consumer: NodeId,
    },
    /// The schedule's latency exceeds the bound.
    LatencyExceeded {
        /// Actual latency in cycles.
        latency: u32,
        /// The bound that was violated.
        bound: u32,
    },
    /// Some cycle draws more power than the bound.
    PowerExceeded {
        /// The violating cycle.
        cycle: u32,
        /// Power drawn in that cycle.
        power: f64,
        /// The bound that was violated.
        bound: f64,
    },
    /// A resource-constrained algorithm was given no instance of a module
    /// required by some operation.
    MissingResource {
        /// The operation that has no unit to run on.
        node: NodeId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible {
                node,
                horizon,
                max_power,
            } => write!(
                f,
                "no feasible start for {node} within {horizon} cycles under power bound {max_power}"
            ),
            ScheduleError::OpExceedsBudget {
                node,
                power,
                max_power,
            } => write!(
                f,
                "operation {node} draws {power} per cycle, above the bound {max_power}"
            ),
            ScheduleError::PrecedenceViolated { producer, consumer } => write!(
                f,
                "operation {consumer} starts before its operand {producer} finishes"
            ),
            ScheduleError::LatencyExceeded { latency, bound } => {
                write!(f, "latency {latency} exceeds the bound {bound}")
            }
            ScheduleError::PowerExceeded {
                cycle,
                power,
                bound,
            } => write!(f, "cycle {cycle} draws {power}, above the bound {bound}"),
            ScheduleError::MissingResource { node } => {
                write!(f, "no functional unit instance can execute {node}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }

    #[test]
    fn display_names_the_node() {
        let e = ScheduleError::Infeasible {
            node: NodeId::new(4),
            horizon: 10,
            max_power: 5.0,
        };
        assert!(e.to_string().contains("n4"));
    }
}
