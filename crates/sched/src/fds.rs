//! Force-directed scheduling (Paulin & Knight), a classical
//! time-constrained baseline that balances operation concurrency — and
//! hence implicitly both resource count and power — across the schedule.

use pchls_cdfg::{Cdfg, NodeId, Reachability};
use pchls_fulib::{ModuleId, ModuleLibrary};

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Schedules `graph` within `latency` cycles, choosing each operation's
/// start so that the *distribution graphs* (expected concurrency per
/// module type per cycle) stay as flat as possible.
///
/// Operations execute on the modules given by `modules` (one
/// [`ModuleId`] per node). The algorithm iteratively fixes the
/// (operation, start) pair with the least total force — self force plus
/// the force its window-shrinking exerts on direct predecessors and
/// successors — until every operation is fixed.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyExceeded`] if the critical path does
/// not fit in `latency`.
///
/// # Panics
///
/// Panics if `modules` is not one entry per node.
pub fn force_directed(
    graph: &Cdfg,
    library: &ModuleLibrary,
    modules: &[ModuleId],
    latency: u32,
) -> Result<Schedule, ScheduleError> {
    // Transitive closure, computed once per call: every refit below
    // reduces to O(1) bitset membership tests on the fixed operation's
    // cones instead of re-walking the graph. Callers that already hold
    // the closure (e.g. a compile-once session layer) should use
    // [`force_directed_with`] and skip this rebuild.
    let reach = Reachability::new(graph);
    force_directed_with(graph, library, modules, latency, &reach)
}

/// [`force_directed`] with a caller-supplied [`Reachability`], so a
/// layer that compiles a graph once (and already owns its transitive
/// closure) does not pay the closure rebuild on every scheduling call.
///
/// `reach` must be the closure of `graph`; output is identical to
/// [`force_directed`].
///
/// # Errors
///
/// As [`force_directed`].
///
/// # Panics
///
/// Panics if `modules` is not one entry per node.
pub fn force_directed_with(
    graph: &Cdfg,
    library: &ModuleLibrary,
    modules: &[ModuleId],
    latency: u32,
    reach: &Reachability,
) -> Result<Schedule, ScheduleError> {
    assert_eq!(modules.len(), graph.len(), "one module per node required");
    let _span = pchls_obs::span!("fds.schedule", "ops" => graph.len());
    let timing = TimingMap::from_modules(graph, library, modules);
    let n = graph.len();

    let mut fixed: Vec<Option<u32>> = vec![None; n];
    let (mut early, mut late) = windows(graph, &timing, latency, &fixed)?;
    // Distribution graphs per module type under the current windows — a
    // dense arena of one row per library module (`ModuleId`s are small
    // integers), maintained incrementally: fixing one operation only
    // shrinks the windows of its own ancestors/descendants, so each
    // iteration subtracts the old window contribution of exactly those
    // operations and adds the new one, instead of rebuilding every row
    // from scratch.
    let mut dg = distribution(
        graph,
        &timing,
        modules,
        library.len(),
        latency,
        &early,
        &late,
    );

    for _ in 0..n {
        // Candidate with minimal total force.
        let mut best: Option<(f64, NodeId, u32)> = None;
        for id in graph.node_ids() {
            if fixed[id.index()].is_some() {
                continue;
            }
            let m = modules[id.index()];
            let d = timing.delay(id);
            let (e, l) = (early[id.index()], late[id.index()]);
            for s in e..=l {
                let f = self_force(&dg[m.index()], e, l, d, s)
                    + neighbor_force(graph, &timing, modules, latency, &dg, &early, &late, id, s);
                if best.is_none_or(|(bf, _, _)| f < bf - 1e-12) {
                    best = Some((f, id, s));
                }
            }
        }
        let Some((_, id, s)) = best else { break };
        fixed[id.index()] = Some(s);
        refit_windows(
            graph, &timing, reach, latency, &fixed, &mut early, &mut late, modules, &mut dg, id,
        )?;
    }

    let starts = fixed
        .into_iter()
        .map(|s| s.expect("all ops fixed"))
        .collect();
    let schedule = Schedule::new(starts);
    schedule.validate(graph, &timing, Some(latency), None)?;
    Ok(schedule)
}

/// Incrementally updates the scheduling windows and distribution graphs
/// after `fixed_op` was pinned.
///
/// Only the fixed operation's reachability cone can change: its
/// descendants' early starts (forward pass restricted to nodes reachable
/// from it) and its ancestors' late starts (backward pass restricted to
/// nodes reaching it). Both cones come straight from the precomputed
/// [`Reachability`] bitsets — membership is one word test, and the
/// mass-move pass walks the set bits of the cone union — so no per-fix
/// graph traversal remains. Every operation whose window actually moved
/// has its old probability mass subtracted from its module's
/// distribution row and the new mass added — identical (up to float
/// associativity) to the full rebuild the serial implementation
/// performed each iteration.
#[allow(clippy::too_many_arguments)]
fn refit_windows(
    graph: &Cdfg,
    timing: &TimingMap,
    reach: &Reachability,
    latency: u32,
    fixed: &[Option<u32>],
    early: &mut [u32],
    late: &mut [u32],
    modules: &[ModuleId],
    dg: &mut [Vec<f64>],
    fixed_op: NodeId,
) -> Result<(), ScheduleError> {
    let n = graph.len();
    let fo = fixed_op.index();
    // Downward cone (descendants incl. the op itself) and upward cone
    // (ancestors incl. the op itself), as bitset rows.
    let desc = reach.descendant_words(fixed_op);
    let anc = reach.ancestor_words(fixed_op);
    let down = |i: usize| i == fo || Reachability::bit(desc, i);
    let up = |i: usize| i == fo || Reachability::bit(anc, i);

    // First-touch snapshot of each changed op's old window.
    let mut old_window: Vec<Option<(u32, u32)>> = vec![None; n];
    // Forward pass over the downward cone.
    for &id in graph.topological() {
        if !down(id.index()) {
            continue;
        }
        let ready = graph
            .operands(id)
            .iter()
            .map(|&p| early[p.index()] + timing.delay(p))
            .max()
            .unwrap_or(0);
        let new_e = fixed[id.index()].unwrap_or(ready);
        if new_e != early[id.index()] {
            old_window[id.index()].get_or_insert((early[id.index()], late[id.index()]));
            early[id.index()] = new_e;
        }
    }
    // Backward pass over the upward cone.
    for &id in graph.topological().iter().rev() {
        if !up(id.index()) {
            continue;
        }
        let deadline = graph
            .successors(id)
            .iter()
            .map(|&s| late[s.index()])
            .min()
            .unwrap_or(latency);
        let new_l =
            match fixed[id.index()] {
                Some(s) => s,
                None => deadline.checked_sub(timing.delay(id)).ok_or(
                    ScheduleError::LatencyExceeded {
                        latency: early[id.index()] + timing.delay(id),
                        bound: latency,
                    },
                )?,
            };
        if new_l != late[id.index()] {
            old_window[id.index()].get_or_insert((early[id.index()], late[id.index()]));
            late[id.index()] = new_l;
        }
    }
    // One walk over the set bits of the cone union covers both the
    // feasibility check and the probability-mass move (only cone members
    // can have a snapshotted old window).
    let mut cone: Vec<u64> = desc.to_vec();
    for (c, &a) in cone.iter_mut().zip(anc) {
        *c |= a;
    }
    cone[fo / 64] |= 1u64 << (fo % 64);
    for id in Reachability::iter_row(&cone) {
        if early[id.index()] > late[id.index()] {
            return Err(ScheduleError::LatencyExceeded {
                latency: early[id.index()] + timing.delay(id),
                bound: latency,
            });
        }
    }
    for id in Reachability::iter_row(&cone) {
        let Some((old_e, old_l)) = old_window[id.index()] else {
            continue;
        };
        let row = &mut dg[modules[id.index()].index()];
        accumulate(row, old_e, old_l, timing.delay(id), -1.0);
        accumulate(
            row,
            early[id.index()],
            late[id.index()],
            timing.delay(id),
            1.0,
        );
    }
    Ok(())
}

/// Constrained ASAP/ALAP windows with some operations pinned.
fn windows(
    graph: &Cdfg,
    timing: &TimingMap,
    latency: u32,
    fixed: &[Option<u32>],
) -> Result<(Vec<u32>, Vec<u32>), ScheduleError> {
    let n = graph.len();
    let mut early = vec![0u32; n];
    for &id in graph.topological() {
        let ready = graph
            .operands(id)
            .iter()
            .map(|&p| early[p.index()] + timing.delay(p))
            .max()
            .unwrap_or(0);
        early[id.index()] = match fixed[id.index()] {
            Some(s) => s, // trusted: set from a feasible window
            None => ready,
        };
    }
    let mut late = vec![0u32; n];
    for &id in graph.topological().iter().rev() {
        let deadline = graph
            .successors(id)
            .iter()
            .map(|&s| late[s.index()])
            .min()
            .unwrap_or(latency);
        let slot =
            match fixed[id.index()] {
                Some(s) => s,
                None => deadline.checked_sub(timing.delay(id)).ok_or(
                    ScheduleError::LatencyExceeded {
                        latency: early[id.index()] + timing.delay(id),
                        bound: latency,
                    },
                )?,
            };
        late[id.index()] = slot;
    }
    for id in graph.node_ids() {
        if early[id.index()] > late[id.index()] {
            return Err(ScheduleError::LatencyExceeded {
                latency: early[id.index()] + timing.delay(id),
                bound: latency,
            });
        }
    }
    Ok((early, late))
}

/// Distribution graph per module type: expected number of concurrently
/// executing operations of that type in each cycle. Dense arena — row
/// `m` of the result is the distribution of library module `m`, zero
/// for modules no operation uses.
fn distribution(
    graph: &Cdfg,
    timing: &TimingMap,
    modules: &[ModuleId],
    library_len: usize,
    latency: u32,
    early: &[u32],
    late: &[u32],
) -> Vec<Vec<f64>> {
    let mut dg = vec![vec![0.0; latency as usize]; library_len];
    for id in graph.node_ids() {
        let row = &mut dg[modules[id.index()].index()];
        accumulate(
            row,
            early[id.index()],
            late[id.index()],
            timing.delay(id),
            1.0,
        );
    }
    dg
}

/// Adds `weight / (l-e+1)` to every cycle covered by each candidate start
/// in `[e, l]` for an op of delay `d`.
fn accumulate(row: &mut [f64], e: u32, l: u32, d: u32, weight: f64) {
    let p = weight / f64::from(l - e + 1);
    for s in e..=l {
        for c in s..s + d {
            if let Some(cell) = row.get_mut(c as usize) {
                *cell += p;
            }
        }
    }
}

/// Classic self force of assigning start `s` to an op with window
/// `[e, l]` and delay `d` under distribution `dg`.
fn self_force(dg: &[f64], e: u32, l: u32, d: u32, s: u32) -> f64 {
    let p = 1.0 / f64::from(l - e + 1);
    let mut force = 0.0;
    for c in s..s + d {
        if let Some(&v) = dg.get(c as usize) {
            force += v;
        }
    }
    for cand in e..=l {
        for c in cand..cand + d {
            if let Some(&v) = dg.get(c as usize) {
                force -= p * v;
            }
        }
    }
    force
}

/// Force exerted on direct predecessors/successors by the window
/// shrinkage implied by fixing `id` at `s`.
#[allow(clippy::too_many_arguments)]
fn neighbor_force(
    graph: &Cdfg,
    timing: &TimingMap,
    modules: &[ModuleId],
    _latency: u32,
    dg: &[Vec<f64>],
    early: &[u32],
    late: &[u32],
    id: NodeId,
    s: u32,
) -> f64 {
    let mut force = 0.0;
    // Predecessors must finish by `s`: their late start caps at s - d_p.
    for &p in graph.operands(id) {
        let (e, l) = (early[p.index()], late[p.index()]);
        let dp = timing.delay(p);
        let new_l = l.min(s.saturating_sub(dp));
        if new_l != l && new_l >= e {
            force += window_shrink_force(&dg[modules[p.index()].index()], e, l, e, new_l, dp);
        }
    }
    // Successors cannot start before `s + d`.
    let fin = s + timing.delay(id);
    for &q in graph.successors(id) {
        let (e, l) = (early[q.index()], late[q.index()]);
        let new_e = e.max(fin);
        if new_e != e && new_e <= l {
            force += window_shrink_force(
                &dg[modules[q.index()].index()],
                e,
                l,
                new_e,
                l,
                timing.delay(q),
            );
        }
    }
    force
}

/// Change in Σ prob·DG when a window shrinks from `[e0,l0]` to `[e1,l1]`.
fn window_shrink_force(dg: &[f64], e0: u32, l0: u32, e1: u32, l1: u32, d: u32) -> f64 {
    let weighted = |e: u32, l: u32| -> f64 {
        let p = 1.0 / f64::from(l - e + 1);
        let mut sum = 0.0;
        for s in e..=l {
            for c in s..s + d {
                if let Some(&v) = dg.get(c as usize) {
                    sum += p * v;
                }
            }
        }
        sum
    };
    weighted(e1, l1) - weighted(e0, l0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap;
    use pchls_cdfg::benchmarks;
    use pchls_cdfg::OpKind;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn assignment(g: &Cdfg, lib: &ModuleLibrary) -> Vec<ModuleId> {
        g.nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect()
    }

    /// Max number of simultaneously executing ops of a kind.
    fn max_concurrency(g: &Cdfg, t: &TimingMap, s: &Schedule, kind: OpKind) -> usize {
        let latency = s.latency(t);
        (0..latency)
            .map(|c| {
                g.nodes()
                    .iter()
                    .filter(|n| n.kind() == kind && s.start(n.id()) <= c && c < s.finish(n.id(), t))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn fds_is_valid_on_all_benchmarks() {
        let lib = paper_library();
        for g in benchmarks::all() {
            let ms = assignment(&g, &lib);
            let t = TimingMap::from_modules(&g, &lib, &ms);
            let cp = asap(&g, &t).latency(&t);
            for slack in [0, 4] {
                let s = force_directed(&g, &lib, &ms, cp + slack).unwrap();
                s.validate(&g, &t, Some(cp + slack), None)
                    .unwrap_or_else(|e| panic!("{} (+{slack}): {e}", g.name()));
            }
        }
    }

    #[test]
    fn fds_balances_hal_multipliers() {
        // With 2 cycles of slack, FDS should need fewer concurrent
        // multipliers than ASAP (the textbook result on hal/diffeq).
        let lib = paper_library();
        let g = benchmarks::hal();
        let ms = assignment(&g, &lib);
        let t = TimingMap::from_modules(&g, &lib, &ms);
        let cp = asap(&g, &t).latency(&t);
        let greedy = max_concurrency(&g, &t, &asap(&g, &t), OpKind::Mul);
        let s = force_directed(&g, &lib, &ms, cp + 2).unwrap();
        let balanced = max_concurrency(&g, &t, &s, OpKind::Mul);
        assert!(
            balanced <= greedy,
            "FDS used {balanced} multipliers, ASAP {greedy}"
        );
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let ms = assignment(&g, &lib);
        let err = force_directed(&g, &lib, &ms, 4).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyExceeded { .. }));
    }
}
