//! Classical as-late-as-possible scheduling.

use pchls_cdfg::Cdfg;

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Computes the ALAP schedule for a latency bound of `latency` cycles:
/// every operation starts as late as data dependences allow while the
/// whole graph still finishes by `latency`.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyExceeded`] if the critical path is
/// longer than `latency`, in which case no schedule can meet the bound.
///
/// # Example
///
/// ```
/// use pchls_cdfg::benchmarks::hal;
/// use pchls_fulib::{paper_library, SelectionPolicy};
/// use pchls_sched::{alap, asap, TimingMap};
///
/// # fn main() -> Result<(), pchls_sched::ScheduleError> {
/// let g = hal();
/// let timing = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
/// let late = alap(&g, &timing, 10)?;
/// let early = asap(&g, &timing);
/// for id in g.node_ids() {
///     assert!(early.start(id) <= late.start(id)); // mobility is non-negative
/// }
/// # Ok(())
/// # }
/// ```
pub fn alap(graph: &Cdfg, timing: &TimingMap, latency: u32) -> Result<Schedule, ScheduleError> {
    let mut starts = vec![0u32; graph.len()];
    for &id in graph.topological().iter().rev() {
        let delay = timing.delay(id);
        let latest_finish = graph
            .successors(id)
            .iter()
            .map(|&s| starts[s.index()])
            .min()
            .unwrap_or(latency);
        let start = latest_finish.checked_sub(delay).ok_or_else(|| {
            let cp = pchls_cdfg::CriticalPath::new(graph, |n| timing.delay(n));
            ScheduleError::LatencyExceeded {
                latency: cp.length(),
                bound: latency,
            }
        })?;
        starts[id.index()] = start;
    }
    Ok(Schedule::new(starts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    #[test]
    fn alap_is_valid_and_meets_latency() {
        let lib = paper_library();
        for g in benchmarks::all() {
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            let cp = asap(&g, &t).latency(&t);
            for slack in [0, 3, 10] {
                let s = alap(&g, &t, cp + slack).unwrap();
                s.validate(&g, &t, Some(cp + slack), None)
                    .unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            }
        }
    }

    #[test]
    fn alap_at_critical_path_pins_critical_ops_to_asap() {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let early = asap(&g, &t);
        let cp = early.latency(&t);
        let late = alap(&g, &t, cp).unwrap();
        // At the tight bound, at least one op has zero mobility.
        assert!(g.node_ids().any(|id| early.start(id) == late.start(id)));
        // And mobility is never negative.
        for id in g.node_ids() {
            assert!(early.start(id) <= late.start(id));
        }
    }

    #[test]
    fn infeasible_latency_is_an_error() {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let err = alap(&g, &t, 3).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::LatencyExceeded {
                latency: 8,
                bound: 3
            }
        ));
    }

    #[test]
    fn sinks_finish_exactly_at_the_bound() {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let s = alap(&g, &t, 12).unwrap();
        for n in g.outputs() {
            assert_eq!(s.finish(n.id(), &t), 12);
        }
    }
}
