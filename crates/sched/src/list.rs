//! Resource-constrained list scheduling (baseline).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pchls_cdfg::{Cdfg, CriticalPath, NodeId};
use pchls_fulib::{ModuleId, ModuleLibrary};

use crate::budget::PowerBudget;
use crate::error::ScheduleError;
use crate::power::{PowerLedger, POWER_EPS};
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// How many instances of each module type a design may use.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Allocation {
    counts: BTreeMap<ModuleId, usize>,
}

impl Allocation {
    /// An empty allocation (no instances at all).
    #[must_use]
    pub fn new() -> Allocation {
        Allocation::default()
    }

    /// Builds an allocation from `(module, count)` pairs.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ModuleId, usize)>) -> Allocation {
        Allocation {
            counts: pairs.into_iter().collect(),
        }
    }

    /// Sets the instance count of one module type.
    pub fn set(&mut self, module: ModuleId, count: usize) {
        self.counts.insert(module, count);
    }

    /// Instance count of `module` (0 if absent).
    #[must_use]
    pub fn count(&self, module: ModuleId) -> usize {
        self.counts.get(&module).copied().unwrap_or(0)
    }

    /// Iterates `(module, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, usize)> + '_ {
        self.counts.iter().map(|(&m, &c)| (m, c))
    }

    /// Total silicon area of the allocation.
    #[must_use]
    pub fn area(&self, library: &ModuleLibrary) -> u64 {
        self.iter()
            .map(|(m, c)| u64::from(library.module(m).area()) * c as u64)
            .sum()
    }
}

/// Priority-list scheduling under a module assignment, an instance
/// allocation and (optionally) a per-cycle power budget.
///
/// Every node executes on the module given by `modules[node]`; at most
/// `allocation.count(m)` operations bound to module type `m` may overlap,
/// and — when `max_power` is finite — the per-cycle power sum never
/// exceeds the budget. Ready operations are prioritized by longest path
/// to a sink (critical-path list scheduling).
///
/// # Errors
///
/// * [`ScheduleError::MissingResource`] if some node's module has a zero
///   instance count.
/// * [`ScheduleError::OpExceedsBudget`] if one operation alone exceeds
///   `max_power`.
///
/// # Panics
///
/// Panics if `modules` is not one entry per node or assigns a module that
/// cannot execute the node's kind.
pub fn list_schedule(
    graph: &Cdfg,
    library: &ModuleLibrary,
    modules: &[ModuleId],
    allocation: &Allocation,
    max_power: f64,
) -> Result<Schedule, ScheduleError> {
    list_schedule_budget(
        graph,
        library,
        modules,
        allocation,
        &PowerBudget::constant(max_power),
    )
}

/// [`list_schedule`] under a time-varying [`PowerBudget`] envelope: the
/// per-cycle sum is checked against each cycle's own bound. A constant
/// budget reproduces [`list_schedule`] bit for bit.
///
/// # Errors
///
/// As [`list_schedule`]; `OpExceedsBudget` fires only when an
/// operation's power exceeds the envelope's **peak** bound.
///
/// # Panics
///
/// As [`list_schedule`].
pub fn list_schedule_budget(
    graph: &Cdfg,
    library: &ModuleLibrary,
    modules: &[ModuleId],
    allocation: &Allocation,
    budget: &PowerBudget,
) -> Result<Schedule, ScheduleError> {
    assert_eq!(modules.len(), graph.len(), "one module per node required");
    for id in graph.node_ids() {
        let m = library.module(modules[id.index()]);
        assert!(
            m.implements(graph.node(id).kind()),
            "{id} assigned to {} which cannot execute {}",
            m.name(),
            graph.node(id).kind()
        );
        if allocation.count(modules[id.index()]) == 0 {
            return Err(ScheduleError::MissingResource { node: id });
        }
    }
    let timing = TimingMap::from_modules(graph, library, modules);

    // Priority: longest delay-weighted path from the node to any sink.
    let mut priority = vec![0u64; graph.len()];
    for &id in graph.topological().iter().rev() {
        let down = graph
            .successors(id)
            .iter()
            .map(|&s| priority[s.index()])
            .max()
            .unwrap_or(0);
        priority[id.index()] = down + u64::from(timing.delay(id));
    }

    // Worst-case horizon: everything serialized.
    let horizon: u32 = graph
        .node_ids()
        .map(|id| timing.delay(id))
        .sum::<u32>()
        .max(1);
    let mut ledger = PowerLedger::with_budget(horizon, budget);
    // The can-never-fit pre-check compares against the peak *within the
    // reachable horizon* (the value the ledger materialized) — a loose
    // phase past every schedulable cycle must not mask the error.
    let max_power = ledger.max_power();
    for id in graph.node_ids() {
        if timing.power(id) > max_power + POWER_EPS {
            return Err(ScheduleError::OpExceedsBudget {
                node: id,
                power: timing.power(id),
                max_power,
            });
        }
    }

    let mut remaining_preds: Vec<usize> = graph
        .node_ids()
        .map(|id| graph.operands(id).len())
        .collect();
    let mut ready_at: Vec<u32> = vec![0; graph.len()];
    let mut starts = vec![0u32; graph.len()];
    let mut unscheduled = graph.len();
    let mut busy_until: BTreeMap<ModuleId, Vec<u32>> =
        allocation.iter().map(|(m, c)| (m, vec![0u32; c])).collect();
    let mut scheduled = vec![false; graph.len()];

    let mut cycle: u32 = 0;
    while unscheduled > 0 {
        // Ops whose operands are done and whose data-ready time has come.
        let mut ready: Vec<NodeId> = graph
            .node_ids()
            .filter(|&id| {
                !scheduled[id.index()]
                    && remaining_preds[id.index()] == 0
                    && ready_at[id.index()] <= cycle
            })
            .collect();
        ready.sort_by_key(|&id| std::cmp::Reverse(priority[id.index()]));

        for id in ready {
            let m = modules[id.index()];
            let t = timing.of(id);
            let units = busy_until.get_mut(&m).expect("allocation checked");
            let Some(unit) = units.iter_mut().find(|u| **u <= cycle) else {
                continue; // all instances busy this cycle
            };
            if !ledger.fits(cycle, t.delay, t.power) {
                continue; // would blow the power budget this cycle
            }
            *unit = cycle + t.delay;
            ledger.reserve(cycle, t.delay, t.power);
            starts[id.index()] = cycle;
            scheduled[id.index()] = true;
            unscheduled -= 1;
            for &s in graph.successors(id) {
                remaining_preds[s.index()] -= 1;
                ready_at[s.index()] = ready_at[s.index()].max(cycle + t.delay);
            }
        }
        cycle += 1;
        if cycle > horizon {
            // Cannot happen with a correct allocation, but guard anyway.
            let stuck = graph
                .node_ids()
                .find(|&id| !scheduled[id.index()])
                .expect("unscheduled > 0");
            return Err(ScheduleError::Infeasible {
                node: stuck,
                horizon,
                max_power,
            });
        }
    }
    Ok(Schedule::new(starts))
}

/// A lower bound on the latency achievable with `allocation`: the maximum
/// of the critical path and each module type's total-work bound
/// (`ceil(total busy cycles / instances)`).
#[must_use]
pub fn latency_lower_bound(
    graph: &Cdfg,
    library: &ModuleLibrary,
    modules: &[ModuleId],
    allocation: &Allocation,
) -> u32 {
    let timing = TimingMap::from_modules(graph, library, modules);
    let cp = CriticalPath::new(graph, |id| timing.delay(id)).length();
    let mut work: BTreeMap<ModuleId, u64> = BTreeMap::new();
    for id in graph.node_ids() {
        *work.entry(modules[id.index()]).or_insert(0) += u64::from(timing.delay(id));
    }
    let resource_bound = work
        .into_iter()
        .map(|(m, w)| {
            let c = allocation.count(m).max(1) as u64;
            w.div_ceil(c) as u32
        })
        .max()
        .unwrap_or(0);
    cp.max(resource_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn assignment(g: &Cdfg, lib: &ModuleLibrary, policy: SelectionPolicy) -> Vec<ModuleId> {
        g.nodes()
            .iter()
            .map(|n| lib.select(n.kind(), policy).unwrap())
            .collect()
    }

    fn full_allocation(lib: &ModuleLibrary, count: usize) -> Allocation {
        Allocation::from_pairs(lib.ids().map(|m| (m, count)))
    }

    #[test]
    fn abundant_resources_reach_critical_path() {
        let lib = paper_library();
        for g in benchmarks::all() {
            let ms = assignment(&g, &lib, SelectionPolicy::Fastest);
            let alloc = full_allocation(&lib, 64);
            let s = list_schedule(&g, &lib, &ms, &alloc, f64::INFINITY).unwrap();
            let t = TimingMap::from_modules(&g, &lib, &ms);
            let cp = CriticalPath::new(&g, |id| t.delay(id)).length();
            assert_eq!(s.latency(&t), cp, "{}", g.name());
            s.validate(&g, &t, Some(cp), None).unwrap();
        }
    }

    #[test]
    fn single_units_serialize_operations() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let ms = assignment(&g, &lib, SelectionPolicy::Fastest);
        let alloc = full_allocation(&lib, 1);
        let s = list_schedule(&g, &lib, &ms, &alloc, f64::INFINITY).unwrap();
        let t = TimingMap::from_modules(&g, &lib, &ms);
        s.validate(&g, &t, None, None).unwrap();
        // 6 multiplications on one 2-cycle multiplier = at least 12 cycles.
        assert!(s.latency(&t) >= 12);
        // No two multiplications may overlap.
        let muls: Vec<NodeId> = g
            .nodes()
            .iter()
            .filter(|n| n.kind() == pchls_cdfg::OpKind::Mul)
            .map(|n| n.id())
            .collect();
        for (i, &a) in muls.iter().enumerate() {
            for &b in &muls[i + 1..] {
                let (sa, fa) = (s.start(a), s.finish(a, &t));
                let (sb, fb) = (s.start(b), s.finish(b, &t));
                assert!(fa <= sb || fb <= sa, "{a} and {b} overlap");
            }
        }
    }

    #[test]
    fn power_budget_is_respected() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let ms = assignment(&g, &lib, SelectionPolicy::Fastest);
        let alloc = full_allocation(&lib, 8);
        let s = list_schedule(&g, &lib, &ms, &alloc, 10.0).unwrap();
        let t = TimingMap::from_modules(&g, &lib, &ms);
        s.validate(&g, &t, None, Some(10.0)).unwrap();
    }

    #[test]
    fn zero_allocation_is_missing_resource() {
        let lib = paper_library();
        let g = benchmarks::hal();
        let ms = assignment(&g, &lib, SelectionPolicy::Fastest);
        let mut alloc = full_allocation(&lib, 4);
        alloc.set(lib.by_name("mult_par").unwrap(), 0);
        let err = list_schedule(&g, &lib, &ms, &alloc, f64::INFINITY).unwrap_err();
        assert!(matches!(err, ScheduleError::MissingResource { .. }));
    }

    #[test]
    fn latency_bound_is_a_true_lower_bound() {
        let lib = paper_library();
        for g in benchmarks::paper_set() {
            let ms = assignment(&g, &lib, SelectionPolicy::Fastest);
            for count in [1, 2, 4] {
                let alloc = full_allocation(&lib, count);
                let bound = latency_lower_bound(&g, &lib, &ms, &alloc);
                let s = list_schedule(&g, &lib, &ms, &alloc, f64::INFINITY).unwrap();
                let t = TimingMap::from_modules(&g, &lib, &ms);
                assert!(
                    s.latency(&t) >= bound,
                    "{}: latency {} < bound {bound}",
                    g.name(),
                    s.latency(&t)
                );
            }
        }
    }

    #[test]
    fn allocation_area_sums_instances() {
        let lib = paper_library();
        let mut a = Allocation::new();
        a.set(lib.by_name("add").unwrap(), 2);
        a.set(lib.by_name("mult_par").unwrap(), 1);
        assert_eq!(a.area(&lib), 2 * 87 + 339);
    }
}
