//! The paper's power-constrained ASAP/ALAP schedulers (`pasap`, `palap`).
//!
//! `pasap` heuristically "stretches" the classical ASAP schedule to fit a
//! per-cycle power budget: processing operations in dependence order,
//! each is placed at its data-ready time plus the smallest offset whose
//! whole execution interval has power available (§2 of the paper, steps
//! 1–4). `palap` is the time-reversed dual, giving the latest
//! power-feasible start times under a latency bound.
//!
//! Both support *locked* operations — start times already committed by
//! the synthesis loop — which participate in power accounting and
//! precedence but are never moved. This is the mechanism behind the
//! paper's backtracking rule: on infeasibility, the synthesizer locks all
//! unscheduled operations to the last valid `pasap` schedule and
//! continues.

use pchls_cdfg::{Cdfg, NodeId};

use crate::budget::PowerBudget;
use crate::error::ScheduleError;
use crate::power::PowerLedger;
use crate::schedule::Schedule;
use crate::timing::TimingMap;

/// Start times fixed in advance for a subset of operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LockedStarts {
    starts: Vec<Option<u32>>,
}

impl LockedStarts {
    /// No locks over a graph of `len` nodes.
    #[must_use]
    pub fn none(len: usize) -> LockedStarts {
        LockedStarts {
            starts: vec![None; len],
        }
    }

    /// Locks `id` to start at `start`, replacing any previous lock.
    pub fn lock(&mut self, id: NodeId, start: u32) {
        self.starts[id.index()] = Some(start);
    }

    /// Removes the lock on `id`, if any.
    pub fn unlock(&mut self, id: NodeId) {
        self.starts[id.index()] = None;
    }

    /// The locked start of `id`, if locked.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<u32> {
        self.starts[id.index()]
    }

    /// Whether `id` is locked.
    #[must_use]
    pub fn is_locked(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Number of locked operations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.starts.iter().filter(|s| s.is_some()).count()
    }

    /// Number of nodes covered (locked or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the map covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

/// Power-constrained ASAP without any locked operations.
///
/// Operations are considered in dependence order and placed at the
/// earliest start `≥` their data-ready time whose execution interval fits
/// under `max_power` in every cycle, searching up to `horizon`.
///
/// # Errors
///
/// * [`ScheduleError::OpExceedsBudget`] if one operation alone exceeds
///   `max_power` (no schedule can exist).
/// * [`ScheduleError::Infeasible`] if some operation cannot be placed
///   within `horizon`.
pub fn pasap(
    graph: &Cdfg,
    timing: &TimingMap,
    max_power: f64,
    horizon: u32,
) -> Result<Schedule, ScheduleError> {
    pasap_locked(
        graph,
        timing,
        max_power,
        horizon,
        &LockedStarts::none(graph.len()),
    )
}

/// [`pasap`] under a time-varying [`PowerBudget`] envelope: each cycle
/// of an operation's execution interval must fit under *that cycle's*
/// bound. A constant budget reproduces [`pasap`] bit for bit.
///
/// # Errors
///
/// As [`pasap`]; `OpExceedsBudget` fires only when an operation's power
/// exceeds the envelope's **peak** bound (it could fit in no cycle at
/// all).
pub fn pasap_budget(
    graph: &Cdfg,
    timing: &TimingMap,
    budget: &PowerBudget,
    horizon: u32,
) -> Result<Schedule, ScheduleError> {
    pasap_locked_budget(
        graph,
        timing,
        budget,
        horizon,
        &LockedStarts::none(graph.len()),
    )
}

/// Power-constrained ASAP honouring locked start times.
///
/// Locked operations reserve their power up front and are never moved;
/// unlocked operations are placed at their earliest power-feasible start.
/// The returned schedule is fully validated against precedence, so a lock
/// combination that forces a violation (e.g. a locked consumer whose
/// producer cannot finish in time) is reported as an error — this is the
/// infeasibility signal that triggers the synthesizer's backtracking.
///
/// # Errors
///
/// As [`pasap`], plus [`ScheduleError::PrecedenceViolated`] when locked
/// starts are inconsistent with the dependences, and
/// [`ScheduleError::PowerExceeded`] when the locked operations alone
/// overflow the budget.
pub fn pasap_locked(
    graph: &Cdfg,
    timing: &TimingMap,
    max_power: f64,
    horizon: u32,
    locked: &LockedStarts,
) -> Result<Schedule, ScheduleError> {
    pasap_locked_budget(
        graph,
        timing,
        &PowerBudget::constant(max_power),
        horizon,
        locked,
    )
}

/// [`pasap_locked`] under a [`PowerBudget`] envelope.
///
/// # Errors
///
/// As [`pasap_locked`].
pub fn pasap_locked_budget(
    graph: &Cdfg,
    timing: &TimingMap,
    budget: &PowerBudget,
    horizon: u32,
    locked: &LockedStarts,
) -> Result<Schedule, ScheduleError> {
    let starts = schedule_directed(
        |id| graph.operands(id),
        |id| graph.successors(id),
        graph.topological().iter().copied(),
        graph.len(),
        timing,
        budget,
        horizon,
        |id| locked.get(id),
    )?;
    let schedule = Schedule::new(starts);
    schedule.validate(graph, timing, None, None)?;
    Ok(schedule)
}

/// Power-constrained ALAP without locked operations: the latest
/// power-feasible start times such that the graph finishes by `latency`.
///
/// # Errors
///
/// As [`pasap`]; infeasibility means no power-feasible schedule fits in
/// `latency` cycles under this (reversed-greedy) heuristic.
pub fn palap(
    graph: &Cdfg,
    timing: &TimingMap,
    max_power: f64,
    latency: u32,
) -> Result<Schedule, ScheduleError> {
    palap_locked(
        graph,
        timing,
        max_power,
        latency,
        &LockedStarts::none(graph.len()),
    )
}

/// [`palap`] under a [`PowerBudget`] envelope. A constant budget
/// reproduces [`palap`] bit for bit.
///
/// # Errors
///
/// As [`palap`].
pub fn palap_budget(
    graph: &Cdfg,
    timing: &TimingMap,
    budget: &PowerBudget,
    latency: u32,
) -> Result<Schedule, ScheduleError> {
    palap_locked_budget(
        graph,
        timing,
        budget,
        latency,
        &LockedStarts::none(graph.len()),
    )
}

/// Power-constrained ALAP honouring locked start times.
///
/// Implemented by running the `pasap` placement on the time-reversed
/// graph: a forward interval `[s, s+d)` corresponds to the reversed
/// interval `[latency-s-d, latency-s)`, so locks and power reservations
/// mirror exactly.
///
/// # Errors
///
/// As [`pasap_locked`].
pub fn palap_locked(
    graph: &Cdfg,
    timing: &TimingMap,
    max_power: f64,
    latency: u32,
    locked: &LockedStarts,
) -> Result<Schedule, ScheduleError> {
    palap_locked_budget(
        graph,
        timing,
        &PowerBudget::constant(max_power),
        latency,
        locked,
    )
}

/// [`palap_locked`] under a [`PowerBudget`] envelope: the reversed
/// placement runs against the **time-mirrored** envelope
/// ([`PowerBudget::reversed`]), so a forward cycle's bound constrains
/// exactly the reversed cycle it maps to.
///
/// # Errors
///
/// As [`pasap_locked`].
pub fn palap_locked_budget(
    graph: &Cdfg,
    timing: &TimingMap,
    budget: &PowerBudget,
    latency: u32,
    locked: &LockedStarts,
) -> Result<Schedule, ScheduleError> {
    // A forward start `s` with delay `d` maps to the reversed start
    // `latency - s - d`; a lock outside `[0, latency - d]` can never fit.
    for i in 0..graph.len() {
        let id = NodeId::new(i as u32);
        if let Some(s) = locked.get(id) {
            if s + timing.delay(id) > latency {
                return Err(ScheduleError::Infeasible {
                    node: id,
                    horizon: latency,
                    max_power: budget.peak_within(latency),
                });
            }
        }
    }
    let rev = graph.reversed();
    let rev_budget = budget.reversed(latency);
    let flip = |start: u32, delay: u32| -> Option<u32> { (latency - start).checked_sub(delay) };
    let rev_starts = schedule_directed(
        |id| rev.preds(id),
        |id| rev.succs(id),
        rev.topological(),
        graph.len(),
        timing,
        &rev_budget,
        latency,
        |id| {
            locked
                .get(id)
                .map(|s| flip(s, timing.delay(id)).expect("lock range checked above"))
        },
    )?;
    let starts: Vec<u32> = rev_starts
        .iter()
        .enumerate()
        .map(|(i, &rs)| {
            let id = NodeId::new(i as u32);
            flip(rs, timing.delay(id)).ok_or(ScheduleError::Infeasible {
                node: id,
                horizon: latency,
                max_power: budget.peak_within(latency),
            })
        })
        .collect::<Result<_, _>>()?;
    let schedule = Schedule::new(starts);
    schedule.validate(graph, timing, Some(latency), None)?;
    Ok(schedule)
}

/// Shared placement loop over an arbitrary orientation of the graph.
///
/// `preds`, `succs` and `order` describe the DAG being scheduled (forward
/// for `pasap`, reversed for `palap`); `locked` yields fixed starts in
/// the *oriented* time axis.
///
/// The paper's step 1 ("pick an unscheduled operator") leaves the pick
/// order open; we pick, among data-ready operations, the one with the
/// longest delay-weighted path to a sink. Critical chains therefore claim
/// power slots first and non-critical operations absorb the stretching,
/// which is both the sensible reading and necessary for tight latency
/// bounds to remain feasible.
#[allow(clippy::too_many_arguments)]
fn schedule_directed<'a>(
    preds: impl Fn(NodeId) -> &'a [NodeId],
    succs: impl Fn(NodeId) -> &'a [NodeId],
    order: impl Iterator<Item = NodeId>,
    len: usize,
    timing: &TimingMap,
    budget: &PowerBudget,
    horizon: u32,
    locked: impl Fn(NodeId) -> Option<u32>,
) -> Result<Vec<u32>, ScheduleError> {
    let mut ledger = PowerLedger::with_budget(horizon, budget);
    // The scalar every error message (and the can-never-fit test)
    // compares against: the bound itself in constant mode, the
    // envelope's peak otherwise.
    let max_power = ledger.max_power();
    let mut starts = vec![0u32; len];
    let order: Vec<NodeId> = order.collect();

    // Locked operations reserve power first, whatever their order.
    for i in 0..len {
        let id = NodeId::new(i as u32);
        if let Some(s) = locked(id) {
            let t = timing.of(id);
            if s + t.delay > horizon {
                return Err(ScheduleError::Infeasible {
                    node: id,
                    horizon,
                    max_power,
                });
            }
            if !ledger.fits(s, t.delay, t.power) {
                // Point at the cycle that actually rejects the lock —
                // under an envelope that can be deep inside the
                // interval, with a tighter bound than the start's.
                let v = ledger
                    .first_unfit_cycle(s, t.delay, t.power)
                    .expect("fits just failed");
                return Err(ScheduleError::PowerExceeded {
                    cycle: v,
                    power: ledger.used(v) + t.power,
                    bound: ledger.bound(v),
                });
            }
            ledger.reserve(s, t.delay, t.power);
            starts[id.index()] = s;
        }
    }

    // Criticality: longest delay-weighted path to a sink (in this
    // orientation), computed over the reverse topological order.
    let mut priority = vec![0u64; len];
    for &id in order.iter().rev() {
        let down = succs(id)
            .iter()
            .map(|&s| priority[s.index()])
            .max()
            .unwrap_or(0);
        priority[id.index()] = down + u64::from(timing.delay(id));
    }

    // Ready queue: (priority, id) max-heap; ids break ties low-first for
    // determinism.
    let mut remaining: Vec<usize> = (0..len)
        .map(|i| preds(NodeId::new(i as u32)).len())
        .collect();
    let mut heap: std::collections::BinaryHeap<(u64, std::cmp::Reverse<NodeId>)> = (0..len)
        .map(|i| NodeId::new(i as u32))
        .filter(|id| remaining[id.index()] == 0)
        .map(|id| (priority[id.index()], std::cmp::Reverse(id)))
        .collect();

    let mut scheduled = 0usize;
    while let Some((_, std::cmp::Reverse(id))) = heap.pop() {
        scheduled += 1;
        if locked(id).is_none() {
            let t = timing.of(id);
            if t.power > max_power + crate::power::POWER_EPS {
                return Err(ScheduleError::OpExceedsBudget {
                    node: id,
                    power: t.power,
                    max_power,
                });
            }
            // Data-ready time: all predecessors (in this orientation) done.
            let ready = preds(id)
                .iter()
                .map(|&p| starts[p.index()] + timing.delay(p))
                .max()
                .unwrap_or(0);
            let start =
                ledger
                    .earliest_fit(ready, t.delay, t.power)
                    .ok_or(ScheduleError::Infeasible {
                        node: id,
                        horizon,
                        max_power,
                    })?;
            ledger.reserve(start, t.delay, t.power);
            starts[id.index()] = start;
        }
        for &s in succs(id) {
            remaining[s.index()] -= 1;
            if remaining[s.index()] == 0 {
                heap.push((priority[s.index()], std::cmp::Reverse(s)));
            }
        }
    }
    debug_assert_eq!(scheduled, len, "every op is scheduled exactly once");
    Ok(starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap;
    use crate::power::PowerProfile;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn hal_timing() -> (Cdfg, TimingMap) {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        (g, t)
    }

    #[test]
    fn infinite_budget_reproduces_asap() {
        for g in benchmarks::all() {
            let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
            let baseline = asap(&g, &t);
            let p = pasap(&g, &t, f64::INFINITY, 1000).unwrap();
            assert_eq!(p, baseline, "{}", g.name());
        }
    }

    #[test]
    fn pasap_meets_the_power_bound() {
        let (g, t) = hal_timing();
        let unbounded_peak = PowerProfile::of(&asap(&g, &t), &t).peak();
        for frac in [0.9, 0.6, 0.4] {
            let bound = unbounded_peak * frac;
            if bound < t.max_single_op_power() {
                continue;
            }
            let s = pasap(&g, &t, bound, 500).unwrap();
            s.validate(&g, &t, None, Some(bound)).unwrap();
        }
    }

    #[test]
    fn tighter_power_never_shortens_latency() {
        let (g, t) = hal_timing();
        let mut last = 0;
        for bound in [100.0, 40.0, 20.0, 12.0, 9.0] {
            let s = pasap(&g, &t, bound, 500).unwrap();
            let lat = s.latency(&t);
            assert!(lat >= last, "bound {bound}: latency {lat} < {last}");
            last = lat;
        }
    }

    #[test]
    fn sub_single_op_budget_is_hopeless() {
        let (g, t) = hal_timing();
        let err = pasap(&g, &t, 5.0, 500).unwrap_err(); // mult_par needs 8.1
        assert!(matches!(err, ScheduleError::OpExceedsBudget { .. }));
    }

    #[test]
    fn tiny_horizon_is_infeasible() {
        let (g, t) = hal_timing();
        let err = pasap(&g, &t, 9.0, 6).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn palap_respects_latency_and_power() {
        let (g, t) = hal_timing();
        for (bound, latency) in [(f64::INFINITY, 8), (12.0, 16), (9.0, 20)] {
            let s = palap(&g, &t, bound, latency).unwrap();
            s.validate(&g, &t, Some(latency), Some(bound)).unwrap();
        }
    }

    #[test]
    fn window_is_well_formed_with_infinite_power() {
        // With no power bound, pasap = asap and palap = alap, so every
        // op's window [pasap, palap] is non-empty. Under a *finite* bound
        // both ends are independent greedy heuristics and the window can
        // invert for individual ops (the synthesis loop treats the palap
        // end as soft for exactly this reason).
        let (g, t) = hal_timing();
        let latency = 16;
        let early = pasap(&g, &t, f64::INFINITY, latency).unwrap();
        let late = palap(&g, &t, f64::INFINITY, latency).unwrap();
        for id in g.node_ids() {
            assert!(
                early.start(id) <= late.start(id),
                "{id}: pasap {} > palap {}",
                early.start(id),
                late.start(id)
            );
        }
    }

    #[test]
    fn palap_with_infinite_power_matches_alap() {
        let (g, t) = hal_timing();
        let latency = 12;
        let p = palap(&g, &t, f64::INFINITY, latency).unwrap();
        let a = crate::alap::alap(&g, &t, latency).unwrap();
        assert_eq!(p, a);
    }

    #[test]
    fn locked_ops_stay_put() {
        let (g, t) = hal_timing();
        let victim = g.topological()[5];
        let base = pasap(&g, &t, 12.0, 100).unwrap();
        let shifted = base.start(victim) + 3;
        let mut locked = LockedStarts::none(g.len());
        locked.lock(victim, shifted);
        let s = pasap_locked(&g, &t, 12.0, 100, &locked).unwrap();
        assert_eq!(s.start(victim), shifted);
        s.validate(&g, &t, None, Some(12.0)).unwrap();
    }

    #[test]
    fn impossible_lock_reports_precedence_violation() {
        let (g, t) = hal_timing();
        // Lock an output to cycle 0: its producers cannot finish by then.
        let out = g.outputs().next().unwrap().id();
        let mut locked = LockedStarts::none(g.len());
        locked.lock(out, 0);
        let err = pasap_locked(&g, &t, f64::INFINITY, 100, &locked).unwrap_err();
        assert!(matches!(err, ScheduleError::PrecedenceViolated { .. }));
    }

    #[test]
    fn conflicting_locks_overflow_the_budget() {
        let (g, t) = hal_timing();
        // Lock two parallel multipliers (8.1 each) into the same cycles
        // under a 10.0 budget.
        let muls: Vec<NodeId> = g
            .nodes()
            .iter()
            .filter(|n| n.kind() == pchls_cdfg::OpKind::Mul)
            .map(|n| n.id())
            .collect();
        // Two independent first-level multiplications.
        let mut locked = LockedStarts::none(g.len());
        locked.lock(muls[0], 1);
        locked.lock(muls[1], 1);
        let err = pasap_locked(&g, &t, 10.0, 100, &locked).unwrap_err();
        assert!(matches!(err, ScheduleError::PowerExceeded { .. }));
    }

    #[test]
    fn locked_starts_bookkeeping() {
        let mut l = LockedStarts::none(4);
        assert_eq!(l.count(), 0);
        assert_eq!(l.len(), 4);
        l.lock(NodeId::new(2), 7);
        assert!(l.is_locked(NodeId::new(2)));
        assert_eq!(l.get(NodeId::new(2)), Some(7));
        assert_eq!(l.count(), 1);
        l.unlock(NodeId::new(2));
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn palap_locked_identity_lock_is_preserved() {
        let (g, t) = hal_timing();
        let latency = 16;
        let base = palap(&g, &t, 12.0, latency).unwrap();
        let victim = g.topological()[4];
        let mut locked = LockedStarts::none(g.len());
        locked.lock(victim, base.start(victim));
        let s = palap_locked(&g, &t, 12.0, latency, &locked).unwrap();
        assert_eq!(s.start(victim), base.start(victim));
        s.validate(&g, &t, Some(latency), Some(12.0)).unwrap();
    }

    #[test]
    fn palap_locked_accepts_earlier_slot_with_infinite_power() {
        let (g, t) = hal_timing();
        let latency = 12; // critical path is 8, so inputs have mobility
        let victim = g.inputs().next().unwrap().id();
        let base = palap(&g, &t, f64::INFINITY, latency).unwrap();
        assert!(base.start(victim) >= 1, "victim has mobility");
        let target = base.start(victim) - 1;
        let mut locked = LockedStarts::none(g.len());
        locked.lock(victim, target);
        let s = palap_locked(&g, &t, f64::INFINITY, latency, &locked).unwrap();
        assert_eq!(s.start(victim), target);
        s.validate(&g, &t, Some(latency), None).unwrap();
    }

    #[test]
    fn palap_locked_rejects_lock_past_the_deadline() {
        let (g, t) = hal_timing();
        let victim = g.outputs().next().unwrap().id();
        let mut locked = LockedStarts::none(g.len());
        locked.lock(victim, 100);
        let err = palap_locked(&g, &t, f64::INFINITY, 12, &locked).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn budget_variants_reproduce_the_scalar_path_for_constant_budgets() {
        let (g, t) = hal_timing();
        let budget = PowerBudget::constant(12.0);
        assert_eq!(
            pasap_budget(&g, &t, &budget, 100).unwrap(),
            pasap(&g, &t, 12.0, 100).unwrap()
        );
        assert_eq!(
            palap_budget(&g, &t, &budget, 16).unwrap(),
            palap(&g, &t, 12.0, 16).unwrap()
        );
    }

    #[test]
    fn pasap_budget_stretches_into_the_loose_phase() {
        let (g, t) = hal_timing();
        // Nearly closed opening phase (only single cheap ops fit), wide
        // open afterwards: the schedule must shift its heavy cycles past
        // the breakpoint, unlike the scalar run at the loose bound.
        let budget = PowerBudget::steps(vec![(0, 9.0), (6, 100.0)]);
        let s = pasap_budget(&g, &t, &budget, 200).unwrap();
        s.validate_budget(&g, &t, None, &budget).unwrap();
        let loose = pasap(&g, &t, 100.0, 200).unwrap();
        assert_ne!(
            s, loose,
            "the tight opening phase must reshape the schedule"
        );
        let profile = PowerProfile::of(&s, &t);
        for c in 0..6u32.min(profile.cycles()) {
            assert!(profile.per_cycle()[c as usize] <= 9.0 + 1e-9, "cycle {c}");
        }
    }

    #[test]
    fn locked_envelope_violations_name_the_violating_cycle() {
        use pchls_cdfg::CdfgBuilder;
        // A 6-cycle op locked at 0 under [(0,40),(5,15)]: the rejection
        // happens at cycle 5 (bound 15), and the diagnostic must say
        // so rather than reporting the start cycle's loose 40 bound.
        let mut b = CdfgBuilder::new("one");
        let x = b.input("x");
        b.output("o", x);
        let g = b.finish().unwrap();
        let t = TimingMap::from_entries(vec![
            crate::OpTiming {
                delay: 6,
                power: 20.0,
            },
            crate::OpTiming {
                delay: 1,
                power: 1.0,
            },
        ]);
        let budget = PowerBudget::steps(vec![(0, 40.0), (5, 15.0)]);
        let mut locked = LockedStarts::none(g.len());
        locked.lock(g.topological()[0], 0);
        let err = pasap_locked_budget(&g, &t, &budget, 20, &locked).unwrap_err();
        match err {
            ScheduleError::PowerExceeded {
                cycle,
                power,
                bound,
            } => {
                assert_eq!(cycle, 5);
                assert_eq!(bound, 15.0);
                assert!(power > bound, "diagnostic must be self-consistent");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn palap_budget_mirrors_the_envelope() {
        let (g, t) = hal_timing();
        // Tight tail: the latest-start schedule must respect the 9.0
        // bound in forward cycles [10, 16), which map to the reversed
        // opening — this only works if the envelope is time-mirrored.
        let budget = PowerBudget::steps(vec![(0, 40.0), (10, 9.0)]);
        let latency = 16;
        let s = palap_budget(&g, &t, &budget, latency).unwrap();
        s.validate_budget(&g, &t, Some(latency), &budget).unwrap();
    }
}
