//! Time- and power-constrained scheduling for high-level synthesis.
//!
//! This crate implements the scheduling layer of the paper:
//!
//! * [`asap`] / [`alap`] — the classical unconstrained-resource schedules.
//! * [`pasap`] / [`palap`] — the paper's **power-constrained** variants
//!   (§2): operations are scheduled as early (late) as possible *but only
//!   if power is available* over their whole execution interval,
//!   otherwise they are delayed cycle by cycle ("stretching" the
//!   schedule to fit under the per-cycle power budget).
//! * [`list_schedule`] — resource-constrained list scheduling (baseline).
//! * [`force_directed`] — Paulin/Knight force-directed scheduling
//!   (baseline).
//! * [`two_step`] — the two-phase schedule-then-flatten approach the
//!   paper contrasts itself with (refs [1, 2]): first a purely
//!   time-constrained schedule, then a mobility-based reordering pass
//!   that pushes operations out of power-peak cycles.
//!
//! All algorithms consume a [`TimingMap`]: the per-operation execution
//! delay and per-cycle power implied by a module selection. Power is
//! accounted per clock cycle via [`PowerProfile`] and [`PowerLedger`],
//! matching the paper's "maximum power per clock-cycle" constraint.
//!
//! # Example: stretching HAL under a power cap
//!
//! ```
//! use pchls_cdfg::benchmarks::hal;
//! use pchls_fulib::{paper_library, SelectionPolicy};
//! use pchls_sched::{asap, pasap, PowerProfile, TimingMap};
//!
//! # fn main() -> Result<(), pchls_sched::ScheduleError> {
//! let g = hal();
//! let lib = paper_library();
//! let timing = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
//!
//! let unconstrained = asap(&g, &timing);
//! let peak = PowerProfile::of(&unconstrained, &timing).peak();
//!
//! let capped = pasap(&g, &timing, peak / 2.0, 100)?;
//! let capped_peak = PowerProfile::of(&capped, &timing).peak();
//! assert!(capped_peak <= peak / 2.0 + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alap;
mod asap;
mod budget;
mod error;
mod exact;
mod fds;
mod list;
mod mobility;
mod pasap;
mod power;
mod schedule;
mod timing;
mod twostep;

pub use alap::alap;
pub use asap::asap;
pub use budget::PowerBudget;
pub use error::ScheduleError;
pub use exact::{minimal_latency_exact, ExactLimits};
pub use fds::{force_directed, force_directed_with};
pub use list::{latency_lower_bound, list_schedule, list_schedule_budget, Allocation};
pub use mobility::Mobility;
pub use pasap::{
    palap, palap_budget, palap_locked, palap_locked_budget, pasap, pasap_budget, pasap_locked,
    pasap_locked_budget, LockedStarts,
};
pub use power::{NaivePowerLedger, PowerLedger, PowerProfile};
pub use schedule::Schedule;
pub use timing::{OpTiming, TimingMap};
pub use twostep::{two_step, two_step_budget, TwoStepOutcome};
