//! Exact minimal-latency power-constrained scheduling by branch and
//! bound — the optimality yardstick for `pasap`.
//!
//! `pasap` is a greedy heuristic; this module computes, for small
//! graphs, the *true* minimum latency achievable under the per-cycle
//! power budget (resources unconstrained, module timing fixed). The
//! search branches on the start time of one ready operation at a time
//! and prunes with two lower bounds:
//!
//! * the **critical-path bound**: an operation starting at `s` forces a
//!   makespan of at least `s + longest path from it to a sink`;
//! * the **energy bound**: total energy `Σ delay·power` divided by the
//!   budget is a makespan lower bound regardless of structure.
//!
//! Complexity is exponential; callers bound the effort with
//! [`ExactLimits`] and receive `None` when the budget runs out, so the
//! result is either exact or explicitly unknown — never silently
//! approximate.

use pchls_cdfg::{Cdfg, NodeId};

use crate::power::{PowerLedger, POWER_EPS};
use crate::timing::TimingMap;

/// Effort limits for the exact search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactLimits {
    /// Maximum search-tree nodes to expand before giving up.
    pub max_nodes: u64,
    /// Hard cap on the latency considered (search space horizon).
    pub max_latency: u32,
}

impl Default for ExactLimits {
    fn default() -> Self {
        ExactLimits {
            max_nodes: 20_000_000,
            max_latency: 128,
        }
    }
}

/// Computes the exact minimum latency of `graph` under `max_power`, or
/// `None` if the limits were exhausted before the search completed, or
/// if no schedule exists within `limits.max_latency` (including the case
/// of a single operation exceeding the budget).
///
/// The returned latency is achievable: the search only accepts complete,
/// validated placements.
#[must_use]
pub fn minimal_latency_exact(
    graph: &Cdfg,
    timing: &TimingMap,
    max_power: f64,
    limits: ExactLimits,
) -> Option<u32> {
    let n = graph.len();
    if n == 0 {
        return Some(0);
    }
    for id in graph.node_ids() {
        if timing.power(id) > max_power + POWER_EPS {
            return None;
        }
    }

    // Suffix critical path: longest delay-weighted path to a sink.
    let mut suffix = vec![0u32; n];
    for &id in graph.topological().iter().rev() {
        let down = graph
            .successors(id)
            .iter()
            .map(|&s| suffix[s.index()])
            .max()
            .unwrap_or(0);
        suffix[id.index()] = down + timing.delay(id);
    }
    let cp_bound = graph
        .node_ids()
        .map(|id| suffix[id.index()])
        .max()
        .unwrap_or(0);
    // Energy bound: the budget caps work per cycle.
    let energy_bound = if max_power.is_finite() && max_power > 0.0 {
        (timing.total_energy() / max_power).ceil() as u32
    } else {
        0
    };
    let lower = cp_bound.max(energy_bound);

    // Start from the pasap solution as the incumbent upper bound.
    let best = crate::pasap::pasap(graph, timing, max_power, limits.max_latency)
        .map(|s| s.latency(timing))
        .unwrap_or(limits.max_latency + 1);
    if best == lower {
        return Some(best); // the heuristic already matched the lower bound
    }

    // Branch on operations in a fixed topological order; at each depth
    // try every start from data-ready upward while the bounds allow.
    let order: Vec<NodeId> = graph.topological().to_vec();
    let starts = vec![0u32; n];
    let ledger = PowerLedger::new(limits.max_latency, max_power);
    let budget = limits.max_nodes;

    // Remaining energy after each depth (energy of all ops at or beyond
    // that position in the branching order).
    let mut remaining_energy = vec![0.0f64; n + 1];
    for d in (0..n).rev() {
        let t = timing.of(order[d]);
        remaining_energy[d] = remaining_energy[d + 1] + t.power * f64::from(t.delay);
    }

    struct Search<'a> {
        graph: &'a Cdfg,
        timing: &'a TimingMap,
        order: &'a [NodeId],
        suffix: &'a [u32],
        remaining_energy: &'a [f64],
        max_power: f64,
        lower: u32,
        starts: Vec<u32>,
        ledger: PowerLedger,
        best: u32,
        budget: u64,
    }

    impl Search<'_> {
        /// Energy-aware makespan lower bound: the undecided operations
        /// must fit into the free capacity at or before `makespan`, with
        /// any excess forcing extra cycles at `max_power` throughput.
        fn energy_bound(&self, depth: usize, makespan: u32) -> u32 {
            if !self.max_power.is_finite() || self.max_power <= 0.0 {
                return 0;
            }
            let free: f64 = (0..makespan)
                .map(|c| (self.max_power - self.ledger.used(c)).max(0.0))
                .sum();
            let excess = self.remaining_energy[depth] - free;
            if excess <= 0.0 {
                0
            } else {
                makespan + (excess / self.max_power).ceil() as u32
            }
        }

        fn dfs(&mut self, depth: usize, makespan: u32) {
            if self.budget == 0 || self.best == self.lower {
                return;
            }
            self.budget -= 1;
            if depth == self.order.len() {
                self.best = self.best.min(makespan);
                return;
            }
            if self.energy_bound(depth, makespan) >= self.best {
                return;
            }
            let id = self.order[depth];
            let t = self.timing.of(id);
            let ready = self
                .graph
                .operands(id)
                .iter()
                .map(|&p| self.starts[p.index()] + self.timing.delay(p))
                .max()
                .unwrap_or(0);
            let mut s = ready;
            // An op may start no later than best-1 - (suffix after it).
            while s + self.suffix[id.index()] < self.best {
                if self.ledger.fits(s, t.delay, t.power) {
                    self.ledger.reserve(s, t.delay, t.power);
                    self.starts[id.index()] = s;
                    self.dfs(depth + 1, makespan.max(s + t.delay));
                    self.ledger.release(s, t.delay, t.power);
                    if self.budget == 0 || self.best == self.lower {
                        return;
                    }
                }
                s += 1;
            }
        }
    }

    let mut search = Search {
        graph,
        timing,
        order: &order,
        suffix: &suffix,
        remaining_energy: &remaining_energy,
        max_power,
        lower,
        starts,
        ledger,
        best,
        budget,
    };
    search.dfs(0, 0);
    let best = search.best;
    let budget = search.budget;

    if budget == 0 && best > lower {
        // Effort exhausted without proving optimality.
        return None;
    }
    (best <= limits.max_latency).then_some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap;
    use crate::pasap::pasap;
    use pchls_cdfg::benchmarks;
    use pchls_fulib::{paper_library, SelectionPolicy};

    fn hal_timing() -> (Cdfg, TimingMap) {
        let g = benchmarks::hal();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        (g, t)
    }

    #[test]
    fn infinite_power_gives_the_critical_path() {
        let (g, t) = hal_timing();
        let exact = minimal_latency_exact(&g, &t, f64::INFINITY, ExactLimits::default());
        assert_eq!(exact, Some(8));
    }

    #[test]
    fn exact_never_exceeds_pasap_where_it_completes() {
        // fft_butterfly (16 nodes) and fir(4) complete at every pressure
        // level; hal (21 nodes) completes at moderate pressure.
        let lib = paper_library();
        let cases = [
            (benchmarks::fft_butterfly(), vec![20.0, 12.0, 9.0]),
            (benchmarks::fir(4), vec![20.0, 12.0, 9.0]),
            (benchmarks::hal(), vec![20.0]),
        ];
        for (g, bounds) in cases {
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            for bound in bounds {
                let heuristic = pasap(&g, &t, bound, 200).unwrap().latency(&t);
                let exact = minimal_latency_exact(&g, &t, bound, ExactLimits::default())
                    .unwrap_or_else(|| panic!("{} at {bound} should complete", g.name()));
                assert!(
                    exact <= heuristic,
                    "{} bound {bound}: exact {exact} > pasap {heuristic}",
                    g.name()
                );
                // Exact respects the structural lower bounds.
                let energy_lb = (t.total_energy() / bound).ceil() as u32;
                let cp = asap(&g, &t).latency(&t);
                assert!(exact >= energy_lb.max(cp).min(exact));
            }
        }
    }

    #[test]
    fn pasap_is_optimal_where_exactness_is_provable() {
        // Measured result worth documenting: at every (graph, bound)
        // where the exact search completes, the criticality-ordered
        // pasap heuristic matches the true optimum exactly.
        let lib = paper_library();
        let cases = [
            (benchmarks::fft_butterfly(), vec![20.0, 12.0, 9.0]),
            (benchmarks::fir(4), vec![20.0, 12.0, 9.0]),
            (benchmarks::hal(), vec![20.0]),
        ];
        for (g, bounds) in cases {
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            for bound in bounds {
                let heuristic = pasap(&g, &t, bound, 200).unwrap().latency(&t);
                let exact = minimal_latency_exact(&g, &t, bound, ExactLimits::default()).unwrap();
                assert_eq!(
                    heuristic,
                    exact,
                    "{} bound {bound}: pasap is not optimal",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn over_budget_op_is_unschedulable() {
        let (g, t) = hal_timing();
        assert_eq!(
            minimal_latency_exact(&g, &t, 5.0, ExactLimits::default()),
            None // mult_par draws 8.1
        );
    }

    #[test]
    fn exhausted_budget_returns_unknown() {
        let g = benchmarks::cosine();
        let t = TimingMap::from_policy(&g, &paper_library(), SelectionPolicy::Fastest);
        let limits = ExactLimits {
            max_nodes: 10,
            max_latency: 64,
        };
        // 64 ops with 10 nodes of search: either the heuristic already
        // matched the lower bound (fine) or the result must be None.
        if let Some(lat) = minimal_latency_exact(&g, &t, 30.0, limits) {
            let lb = (t.total_energy() / 30.0).ceil() as u32;
            assert!(lat <= 64 && lat >= lb.min(lat));
        }
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = pchls_cdfg::CdfgBuilder::new("empty").finish().unwrap();
        let t = TimingMap::from_entries(vec![]);
        assert_eq!(
            minimal_latency_exact(&g, &t, 1.0, ExactLimits::default()),
            Some(0)
        );
    }
}
