//! Property-based tests over the scheduling algorithms on random DAGs.

use proptest::prelude::*;

use pchls_cdfg::{random_dag, RandomDagConfig};
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{
    alap, asap, force_directed, list_schedule, palap, pasap, two_step, Allocation, PowerProfile,
    TimingMap,
};

prop_compose! {
    fn config()(
        ops in 2usize..50,
        inputs in 1usize..5,
        outputs in 1usize..3,
        mul_permille in 0u32..800,
        depth_bias in 0u32..5,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pasap always respects the power bound and dependences, and with an
    /// infinite bound equals asap.
    #[test]
    fn pasap_respects_bound_and_degenerates_to_asap(cfg in config(), frac in 0.3f64..1.0) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        prop_assert_eq!(&pasap(&g, &t, f64::INFINITY, 10_000).unwrap(), &base);

        let peak = PowerProfile::of(&base, &t).peak();
        let bound = (peak * frac).max(t.max_single_op_power());
        let s = pasap(&g, &t, bound, 10_000).unwrap();
        s.validate(&g, &t, None, Some(bound)).unwrap();
    }

    /// palap respects the latency it is given and the power bound.
    #[test]
    fn palap_respects_latency_and_bound(cfg in config(), slack in 0u32..20) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        let peak = PowerProfile::of(&base, &t).peak();
        // Start from a latency pasap itself achieves, plus slack.
        let lat = pasap(&g, &t, peak, 10_000).unwrap().latency(&t) + slack;
        let s = palap(&g, &t, peak, lat).unwrap();
        s.validate(&g, &t, Some(lat), Some(peak)).unwrap();
    }

    /// alap mobility windows are well-formed: asap <= alap pointwise.
    #[test]
    fn asap_alap_windows_are_ordered(cfg in config(), slack in 0u32..16) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::MinArea);
        let early = asap(&g, &t);
        let lat = early.latency(&t) + slack;
        let late = alap(&g, &t, lat).unwrap();
        for id in g.node_ids() {
            prop_assert!(early.start(id) <= late.start(id));
        }
    }

    /// List scheduling respects resource limits and is dependence-valid.
    #[test]
    fn list_schedule_is_valid(cfg in config(), units in 1usize..4) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        let alloc = Allocation::from_pairs(lib.ids().map(|m| (m, units)));
        let s = list_schedule(&g, &lib, &modules, &alloc, f64::INFINITY).unwrap();
        let t = TimingMap::from_modules(&g, &lib, &modules);
        s.validate(&g, &t, None, None).unwrap();
        // Resource check: concurrency per module never exceeds the count.
        let latency = s.latency(&t);
        for m in lib.ids() {
            for c in 0..latency {
                let busy = g
                    .node_ids()
                    .filter(|&id| modules[id.index()] == m)
                    .filter(|&id| s.start(id) <= c && c < s.finish(id, &t))
                    .count();
                prop_assert!(busy <= units, "module {m} uses {busy} units at cycle {c}");
            }
        }
    }

    /// Force-directed scheduling meets its latency bound on random DAGs.
    #[test]
    fn force_directed_is_valid(cfg in config(), slack in 0u32..8) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        let t = TimingMap::from_modules(&g, &lib, &modules);
        let lat = asap(&g, &t).latency(&t) + slack;
        let s = force_directed(&g, &lib, &modules, lat).unwrap();
        s.validate(&g, &t, Some(lat), None).unwrap();
    }

    /// The two-step baseline never violates dependences or latency, and
    /// when it claims to meet power, it actually does.
    #[test]
    fn two_step_claims_are_honest(cfg in config(), frac in 0.2f64..1.2, slack in 0u32..12) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        let peak = PowerProfile::of(&base, &t).peak();
        let bound = peak * frac;
        let lat = base.latency(&t) + slack;
        let out = two_step(&g, &t, lat, bound).unwrap();
        out.schedule.validate(&g, &t, Some(lat), None).unwrap();
        if out.met_power {
            out.schedule.validate(&g, &t, Some(lat), Some(bound)).unwrap();
        }
    }
}

mod locked_props {
    use super::*;
    use pchls_sched::{pasap_locked, LockedStarts};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Locking a subset of operations to their positions in a valid
        /// pasap schedule keeps the problem feasible, preserves the
        /// locked starts, and still meets the power bound.
        #[test]
        fn relocking_a_valid_schedule_is_feasible(
            cfg in config(),
            frac in 0.4f64..1.0,
            lock_mask in any::<u64>(),
        ) {
            let g = random_dag(&cfg);
            let lib = paper_library();
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            let peak = PowerProfile::of(&asap(&g, &t), &t).peak();
            let bound = (peak * frac).max(t.max_single_op_power());
            let horizon = 10_000;
            let base = pasap(&g, &t, bound, horizon).unwrap();

            let mut locked = LockedStarts::none(g.len());
            for id in g.node_ids() {
                if lock_mask >> (id.index() % 64) & 1 == 1 {
                    locked.lock(id, base.start(id));
                }
            }
            let s = pasap_locked(&g, &t, bound, horizon, &locked)
                .expect("relocking a valid schedule stays feasible");
            for id in g.node_ids() {
                if let Some(fixed) = locked.get(id) {
                    prop_assert_eq!(s.start(id), fixed);
                }
            }
            s.validate(&g, &t, None, Some(bound)).unwrap();
        }
    }
}
