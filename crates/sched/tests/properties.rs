//! Property-based tests over the scheduling algorithms on random DAGs.

use proptest::prelude::*;

use pchls_cdfg::{random_dag, RandomDagConfig};
use pchls_fulib::{paper_library, SelectionPolicy};
use pchls_sched::{
    alap, asap, force_directed, list_schedule, palap, pasap, two_step, Allocation, PowerProfile,
    TimingMap,
};

prop_compose! {
    fn config()(
        ops in 2usize..50,
        inputs in 1usize..5,
        outputs in 1usize..3,
        mul_permille in 0u32..800,
        depth_bias in 0u32..5,
        seed in any::<u64>(),
    ) -> RandomDagConfig {
        RandomDagConfig { ops, inputs, outputs, mul_permille, depth_bias, seed }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// pasap always respects the power bound and dependences, and with an
    /// infinite bound equals asap.
    #[test]
    fn pasap_respects_bound_and_degenerates_to_asap(cfg in config(), frac in 0.3f64..1.0) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        prop_assert_eq!(&pasap(&g, &t, f64::INFINITY, 10_000).unwrap(), &base);

        let peak = PowerProfile::of(&base, &t).peak();
        let bound = (peak * frac).max(t.max_single_op_power());
        let s = pasap(&g, &t, bound, 10_000).unwrap();
        s.validate(&g, &t, None, Some(bound)).unwrap();
    }

    /// pasap under a stepwise budget envelope respects every cycle's
    /// own bound, and a constant envelope reproduces scalar pasap
    /// exactly.
    #[test]
    fn pasap_budget_respects_the_envelope(cfg in config(), frac in 0.5f64..1.0, split in 1u32..40) {
        use pchls_sched::{pasap_budget, PowerBudget};
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        let peak = PowerProfile::of(&base, &t).peak();
        let lo = (peak * frac).max(t.max_single_op_power());

        // Constant envelope ≡ scalar path, bit for bit.
        let scalar = pasap(&g, &t, lo, 10_000).unwrap();
        let constant = pasap_budget(&g, &t, &PowerBudget::constant(lo), 10_000).unwrap();
        prop_assert_eq!(&scalar, &constant);

        // Loose opening phase, tight tail: the schedule must satisfy
        // the per-cycle bounds everywhere.
        let budget = PowerBudget::steps(vec![(0, peak * 2.0), (split, lo)]);
        let s = pasap_budget(&g, &t, &budget, 10_000).unwrap();
        s.validate_budget(&g, &t, None, &budget).unwrap();
    }

    /// palap respects the latency it is given and the power bound.
    #[test]
    fn palap_respects_latency_and_bound(cfg in config(), slack in 0u32..20) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        let peak = PowerProfile::of(&base, &t).peak();
        // Start from a latency pasap itself achieves, plus slack.
        let lat = pasap(&g, &t, peak, 10_000).unwrap().latency(&t) + slack;
        let s = palap(&g, &t, peak, lat).unwrap();
        s.validate(&g, &t, Some(lat), Some(peak)).unwrap();
    }

    /// alap mobility windows are well-formed: asap <= alap pointwise.
    #[test]
    fn asap_alap_windows_are_ordered(cfg in config(), slack in 0u32..16) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::MinArea);
        let early = asap(&g, &t);
        let lat = early.latency(&t) + slack;
        let late = alap(&g, &t, lat).unwrap();
        for id in g.node_ids() {
            prop_assert!(early.start(id) <= late.start(id));
        }
    }

    /// List scheduling respects resource limits and is dependence-valid.
    #[test]
    fn list_schedule_is_valid(cfg in config(), units in 1usize..4) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        let alloc = Allocation::from_pairs(lib.ids().map(|m| (m, units)));
        let s = list_schedule(&g, &lib, &modules, &alloc, f64::INFINITY).unwrap();
        let t = TimingMap::from_modules(&g, &lib, &modules);
        s.validate(&g, &t, None, None).unwrap();
        // Resource check: concurrency per module never exceeds the count.
        let latency = s.latency(&t);
        for m in lib.ids() {
            for c in 0..latency {
                let busy = g
                    .node_ids()
                    .filter(|&id| modules[id.index()] == m)
                    .filter(|&id| s.start(id) <= c && c < s.finish(id, &t))
                    .count();
                prop_assert!(busy <= units, "module {m} uses {busy} units at cycle {c}");
            }
        }
    }

    /// Force-directed scheduling meets its latency bound on random DAGs.
    #[test]
    fn force_directed_is_valid(cfg in config(), slack in 0u32..8) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let modules: Vec<_> = g
            .nodes()
            .iter()
            .map(|n| lib.select(n.kind(), SelectionPolicy::Fastest).unwrap())
            .collect();
        let t = TimingMap::from_modules(&g, &lib, &modules);
        let lat = asap(&g, &t).latency(&t) + slack;
        let s = force_directed(&g, &lib, &modules, lat).unwrap();
        s.validate(&g, &t, Some(lat), None).unwrap();
    }

    /// The two-step baseline never violates dependences or latency, and
    /// when it claims to meet power, it actually does.
    #[test]
    fn two_step_claims_are_honest(cfg in config(), frac in 0.2f64..1.2, slack in 0u32..12) {
        let g = random_dag(&cfg);
        let lib = paper_library();
        let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
        let base = asap(&g, &t);
        let peak = PowerProfile::of(&base, &t).peak();
        let bound = peak * frac;
        let lat = base.latency(&t) + slack;
        let out = two_step(&g, &t, lat, bound).unwrap();
        out.schedule.validate(&g, &t, Some(lat), None).unwrap();
        if out.met_power {
            out.schedule.validate(&g, &t, Some(lat), Some(bound)).unwrap();
        }
    }
}

mod locked_props {
    use super::*;
    use pchls_sched::{pasap_locked, LockedStarts};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Locking a subset of operations to their positions in a valid
        /// pasap schedule keeps the problem feasible, preserves the
        /// locked starts, and still meets the power bound.
        #[test]
        fn relocking_a_valid_schedule_is_feasible(
            cfg in config(),
            frac in 0.4f64..1.0,
            lock_mask in any::<u64>(),
        ) {
            let g = random_dag(&cfg);
            let lib = paper_library();
            let t = TimingMap::from_policy(&g, &lib, SelectionPolicy::Fastest);
            let peak = PowerProfile::of(&asap(&g, &t), &t).peak();
            let bound = (peak * frac).max(t.max_single_op_power());
            let horizon = 10_000;
            let base = pasap(&g, &t, bound, horizon).unwrap();

            let mut locked = LockedStarts::none(g.len());
            for id in g.node_ids() {
                if lock_mask >> (id.index() % 64) & 1 == 1 {
                    locked.lock(id, base.start(id));
                }
            }
            let s = pasap_locked(&g, &t, bound, horizon, &locked)
                .expect("relocking a valid schedule stays feasible");
            for id in g.node_ids() {
                if let Some(fixed) = locked.get(id) {
                    prop_assert_eq!(s.start(id), fixed);
                }
            }
            s.validate(&g, &t, None, Some(bound)).unwrap();
        }
    }
}

mod ledger_props {
    use super::*;
    use pchls_sched::{NaivePowerLedger, PowerBudget, PowerLedger};

    /// One random ledger operation: `(opcode, start, delay, power)`.
    type LedgerOp = (u8, u32, u32, f64);

    /// Drives the segment-tree [`PowerLedger`] and the reference
    /// [`NaivePowerLedger`] through the same operation sequence,
    /// asserting every query answer matches along the way and that the
    /// final per-cycle reservations are bit-identical.
    fn check_agreement(horizon: u32, budget: f64, ops: &[LedgerOp]) -> Result<(), TestCaseError> {
        let tree = PowerLedger::new(horizon, budget);
        let naive = NaivePowerLedger::new(horizon, budget);
        check_ledger_pair(tree, naive, horizon, ops)
    }

    /// As [`check_agreement`], over an arbitrary budget envelope.
    fn check_agreement_budget(
        horizon: u32,
        budget: &PowerBudget,
        ops: &[LedgerOp],
    ) -> Result<(), TestCaseError> {
        let tree = PowerLedger::with_budget(horizon, budget);
        let naive = NaivePowerLedger::with_budget(horizon, budget);
        check_ledger_pair(tree, naive, horizon, ops)
    }

    fn check_ledger_pair(
        mut tree: PowerLedger,
        mut naive: NaivePowerLedger,
        horizon: u32,
        ops: &[LedgerOp],
    ) -> Result<(), TestCaseError> {
        prop_assert_eq!(tree.horizon(), naive.horizon());
        let mut snaps: Vec<(u32, Vec<f64>)> = Vec::new();
        for &(op, start, delay, power) in ops {
            match op % 5 {
                0 => prop_assert_eq!(
                    tree.fits(start, delay, power),
                    naive.fits(start, delay, power),
                    "fits({start}, {delay}, {power})"
                ),
                1 => {
                    prop_assert_eq!(
                        tree.earliest_fit(start, delay, power),
                        naive.earliest_fit(start, delay, power),
                        "earliest_fit({start}, {delay}, {power})"
                    );
                    // The deadline-bounded search the synthesis kernel
                    // actually calls. Oracle: an unbounded naive search
                    // whose result must also finish by the deadline —
                    // the earliest fit below the bound is the earliest
                    // fit overall whenever one qualifies, so the filter
                    // is exact (including the `delay == 0` arm).
                    let deadline = start / 2 + delay + horizon / 4;
                    prop_assert_eq!(
                        tree.earliest_fit_by(start, delay, power, deadline),
                        naive
                            .earliest_fit(start, delay, power)
                            .filter(|&s| s + delay <= deadline.min(horizon)),
                        "earliest_fit_by({start}, {delay}, {power}, {deadline})"
                    );
                }
                2 => {
                    let (a, b) = (
                        tree.fits(start, delay, power),
                        naive.fits(start, delay, power),
                    );
                    prop_assert_eq!(a, b);
                    if a {
                        tree.reserve(start, delay, power);
                        naive.reserve(start, delay, power);
                    }
                }
                3 => {
                    // Release stays within the horizon (releasing beyond
                    // it is a caller bug both ledgers reject loudly).
                    if u64::from(start) + u64::from(delay) <= u64::from(horizon) {
                        tree.release(start, delay, power);
                        naive.release(start, delay, power);
                    }
                }
                _ => {
                    let (a, b) = (tree.snapshot(start, delay), naive.snapshot(start, delay));
                    prop_assert_eq!(&a, &b, "snapshot({start}, {delay})");
                    if !a.is_empty() {
                        snaps.push((start, a));
                    }
                }
            }
        }
        // Unwind every snapshot (newest first, as the synthesis loop's
        // candidate rollback does) and compare the final state bit for
        // bit.
        for (start, values) in snaps.into_iter().rev() {
            tree.restore(start, &values);
            naive.restore(start, &values);
        }
        for c in 0..horizon {
            prop_assert_eq!(
                tree.used(c).to_bits(),
                naive.used(c).to_bits(),
                "cycle {} diverged: {} vs {}",
                c,
                tree.used(c),
                naive.used(c)
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The segment-tree ledger and the naive reference agree on
        /// every `fits` / `earliest_fit` / `reserve` / `release` /
        /// `snapshot` / `restore` under random operation sequences —
        /// across both the leaf-scan regime (small horizons) and the
        /// tree regime (horizons past the scan limit).
        #[test]
        fn segment_tree_ledger_agrees_with_naive(
            horizon in 0u32..200,
            budget_step in 0u8..5,
            ops in proptest::collection::vec(
                (0u8..15, 0u32..220, 0u32..24, 0f64..12.5),
                1..80,
            ),
        ) {
            let budget = match budget_step {
                0 => f64::INFINITY,
                b => f64::from(b) * 7.5,
            };
            check_agreement(horizon, budget, &ops)?;
        }

        /// Under random **stepwise** envelopes, the slack-min tree
        /// ledger and the naive per-cycle-slack reference agree on every
        /// operation — across the leaf-scan regime (small horizons) and
        /// the tree regime, including budgets whose phases are all
        /// equal (which must collapse to the constant fast path on both
        /// sides).
        #[test]
        fn stepwise_envelope_ledger_agrees_with_naive(
            horizon in 0u32..200,
            raw_steps in proptest::collection::vec((0u32..200, 0u8..6), 1..6),
            ops in proptest::collection::vec(
                (0u8..15, 0u32..220, 0u32..24, 0f64..12.5),
                1..80,
            ),
        ) {
            // Strictly increasing cycles, first step at 0; bound levels
            // quantized so equal-phase (constant-collapse) envelopes
            // occur often.
            let mut steps: Vec<(u32, f64)> = Vec::new();
            for (i, &(c, level)) in raw_steps.iter().enumerate() {
                let cycle = if i == 0 { 0 } else { c };
                let bound = match level {
                    0 => f64::INFINITY,
                    l => f64::from(l) * 6.25,
                };
                if steps.last().is_none_or(|&(prev, _)| cycle > prev) {
                    steps.push((cycle, bound));
                }
            }
            let budget = PowerBudget::steps(steps);
            check_agreement_budget(horizon, &budget, &ops)?;
        }

        /// Under random **per-cycle** envelopes (arbitrary bound per
        /// cycle), the two ledgers agree on every operation.
        #[test]
        fn per_cycle_envelope_ledger_agrees_with_naive(
            bounds in proptest::collection::vec(0f64..40.0, 1..200),
            ops in proptest::collection::vec(
                (0u8..15, 0u32..220, 0u32..24, 0f64..12.5),
                1..80,
            ),
        ) {
            let horizon = bounds.len() as u32;
            let budget = PowerBudget::per_cycle(bounds);
            check_agreement_budget(horizon, &budget, &ops)?;
        }

        /// The chunked (4-wide unrolled) leaf scans answer exactly like
        /// the naive cycle scan on windows straddling every regime
        /// boundary: delays crossing the former 8-cycle scalar cutoff,
        /// the 32-cycle chunk limit, and beyond (tree descent), over
        /// horizons past the 64-leaf scan limit so tree mode is engaged.
        /// Both the constant max-reduction and the envelope
        /// min-slack-reduction paths are exercised.
        #[test]
        fn chunked_leaf_scans_agree_with_naive_across_regimes(
            horizon in 65u32..300,
            envelope in any::<bool>(),
            ops in proptest::collection::vec(
                (0u8..15, 0u32..300, 0u32..80, 0f64..12.5),
                1..60,
            ),
        ) {
            if envelope {
                // A two-phase envelope keeps the slack path engaged.
                let budget = PowerBudget::steps(vec![(0, 25.0), (horizon / 2, 10.0)]);
                check_agreement_budget(horizon, &budget, &ops)?;
            } else {
                check_agreement(horizon, 20.0, &ops)?;
            }
        }

        /// Dedicated large-horizon cases keep the tree-mode descent and
        /// headroom skip under pressure (long intervals, tight budget).
        #[test]
        fn tree_mode_earliest_fit_matches_naive_scan(
            horizon in 65u32..400,
            ops in proptest::collection::vec(
                (0u32..380, 1u32..40, 0f64..6.0),
                1..40,
            ),
            probes in proptest::collection::vec((0u32..380, 1u32..60, 0f64..6.0), 1..30),
        ) {
            let budget = 10.0;
            let mut tree = PowerLedger::new(horizon, budget);
            let mut naive = NaivePowerLedger::new(horizon, budget);
            for &(start, delay, power) in &ops {
                if tree.fits(start, delay, power) && naive.fits(start, delay, power) {
                    tree.reserve(start, delay, power);
                    naive.reserve(start, delay, power);
                }
            }
            for &(start, delay, power) in &probes {
                prop_assert_eq!(
                    tree.earliest_fit(start, delay, power),
                    naive.earliest_fit(start, delay, power),
                    "earliest_fit({start}, {delay}, {power})"
                );
                let deadline = start / 2 + delay + horizon / 3;
                prop_assert_eq!(
                    tree.earliest_fit_by(start, delay, power, deadline),
                    naive
                        .earliest_fit(start, delay, power)
                        .filter(|&s| s + delay <= deadline.min(horizon)),
                    "earliest_fit_by({start}, {delay}, {power}, {deadline})"
                );
            }
        }
    }
}
