//! The functional-unit library of the paper (Table 1).

use pchls_cdfg::OpKind;

use crate::library::ModuleLibrary;
use crate::module::ModuleSpec;

/// Table 1 of the paper, verbatim:
///
/// | Module      | Oprs      | Area | Clk-cyc. | P   |
/// |-------------|-----------|------|----------|-----|
/// | add         | {+}       | 87   | 1        | 2.5 |
/// | sub         | {−}       | 87   | 1        | 2.5 |
/// | comp        | {>}       | 8    | 1        | 2.5 |
/// | ALU         | {+,−,>}   | 97   | 1        | 2.5 |
/// | mult_ser    | {∗}       | 103  | 4        | 2.7 |
/// | mult_par    | {∗}       | 339  | 2        | 8.1 |
/// | input (imp) | {imp}     | 16   | 1        | 0.2 |
/// | output (xpt)| {xpt}     | 16   | 1        | 1.7 |
///
/// ```
/// let lib = pchls_fulib::paper_library();
/// assert_eq!(lib.len(), 8);
/// assert_eq!(lib.module(lib.by_name("mult_par").unwrap()).area(), 339);
/// ```
#[must_use]
pub fn paper_library() -> ModuleLibrary {
    ModuleLibrary::new([
        ModuleSpec::new("add", [OpKind::Add], 87, 1, 2.5),
        ModuleSpec::new("sub", [OpKind::Sub], 87, 1, 2.5),
        ModuleSpec::new("comp", [OpKind::Comp], 8, 1, 2.5),
        ModuleSpec::new("ALU", [OpKind::Add, OpKind::Sub, OpKind::Comp], 97, 1, 2.5),
        ModuleSpec::new("mult_ser", [OpKind::Mul], 103, 4, 2.7),
        ModuleSpec::new("mult_par", [OpKind::Mul], 339, 2, 8.1),
        ModuleSpec::new("input", [OpKind::Input], 16, 1, 0.2),
        ModuleSpec::new("output", [OpKind::Output], 16, 1, 1.7),
    ])
    .expect("paper library has unique names")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_exact() {
        let l = paper_library();
        let rows: Vec<(&str, u32, u32, f64)> = l
            .modules()
            .iter()
            .map(|m| (m.name(), m.area(), m.latency(), m.power()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("add", 87, 1, 2.5),
                ("sub", 87, 1, 2.5),
                ("comp", 8, 1, 2.5),
                ("ALU", 97, 1, 2.5),
                ("mult_ser", 103, 4, 2.7),
                ("mult_par", 339, 2, 8.1),
                ("input", 16, 1, 0.2),
                ("output", 16, 1, 1.7),
            ]
        );
    }

    #[test]
    fn alu_implements_three_kinds() {
        let l = paper_library();
        let alu = l.module(l.by_name("ALU").unwrap());
        assert!(alu.implements_all([OpKind::Add, OpKind::Sub, OpKind::Comp]));
        assert!(!alu.implements(OpKind::Mul));
    }

    #[test]
    fn library_covers_every_op_kind() {
        assert!(paper_library().check_coverage(OpKind::ALL).is_ok());
    }
}
