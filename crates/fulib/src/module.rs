//! Module descriptors.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use pchls_cdfg::OpKind;

/// One functional-unit module type: a hardware component that can execute
/// a set of operations.
///
/// `power` is the draw **per clock cycle while the module is executing an
/// operation**, in the paper's (unit-less) power units; an idle module
/// draws nothing in this model, matching the paper's per-cycle power
/// accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    name: String,
    ops: BTreeSet<OpKind>,
    area: u32,
    latency: u32,
    power: f64,
    #[serde(default)]
    idle_power: f64,
}

impl ModuleSpec {
    /// Creates a module descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty, `latency` is zero, or `power` is negative
    /// or non-finite — such a module could never appear in a real library
    /// and would corrupt scheduling arithmetic.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        ops: impl IntoIterator<Item = OpKind>,
        area: u32,
        latency: u32,
        power: f64,
    ) -> ModuleSpec {
        let ops: BTreeSet<OpKind> = ops.into_iter().collect();
        assert!(!ops.is_empty(), "module must implement at least one op");
        assert!(latency > 0, "module latency must be at least one cycle");
        assert!(
            power.is_finite() && power >= 0.0,
            "module power must be finite and non-negative"
        );
        ModuleSpec {
            name: name.into(),
            ops,
            area,
            latency,
            power,
            idle_power: 0.0,
        }
    }

    /// Returns the module with a static (idle) power draw — consumed in
    /// every cycle the unit exists but executes nothing. The paper's
    /// model is idle-free (Table 1 has no idle column); this supports the
    /// leakage-aware extension experiments.
    ///
    /// # Panics
    ///
    /// Panics if `idle_power` is negative or non-finite.
    #[must_use]
    pub fn with_idle_power(mut self, idle_power: f64) -> ModuleSpec {
        assert!(
            idle_power.is_finite() && idle_power >= 0.0,
            "idle power must be finite and non-negative"
        );
        self.idle_power = idle_power;
        self
    }

    /// Power drawn in each cycle the module is instantiated but idle
    /// (0 in the paper's model).
    #[must_use]
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }

    /// The module's name, unique within a library (e.g. `"mult_ser"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations this module can execute.
    #[must_use]
    pub fn ops(&self) -> &BTreeSet<OpKind> {
        &self.ops
    }

    /// Whether the module can execute `kind`.
    #[must_use]
    pub fn implements(&self, kind: OpKind) -> bool {
        self.ops.contains(&kind)
    }

    /// Whether the module can execute every kind in `kinds`.
    pub fn implements_all(&self, kinds: impl IntoIterator<Item = OpKind>) -> bool {
        kinds.into_iter().all(|k| self.implements(k))
    }

    /// Silicon area in the paper's (unit-less) area units.
    #[must_use]
    pub fn area(&self) -> u32 {
        self.area
    }

    /// Execution latency in clock cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Power drawn in each clock cycle the module executes.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Total energy of one execution (`power × latency`).
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.power * f64::from(self.latency)
    }
}

impl fmt::Display for ModuleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ops: Vec<&str> = self.ops.iter().map(|k| k.symbol()).collect();
        write!(
            f,
            "{} {{{}}} area={} cycles={} power={}",
            self.name,
            ops.join(","),
            self.area,
            self.latency,
            self.power
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_defaults_to_zero_and_is_settable() {
        let m = ModuleSpec::new("m", [OpKind::Add], 87, 1, 2.5);
        assert_eq!(m.idle_power(), 0.0);
        let m = m.with_idle_power(0.3);
        assert!((m.idle_power() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "idle power")]
    fn negative_idle_power_rejected() {
        let _ = ModuleSpec::new("m", [OpKind::Add], 87, 1, 2.5).with_idle_power(-1.0);
    }

    #[test]
    fn energy_is_power_times_latency() {
        let m = ModuleSpec::new("m", [OpKind::Mul], 103, 4, 2.7);
        assert!((m.energy() - 10.8).abs() < 1e-12);
    }

    #[test]
    fn implements_all_requires_every_kind() {
        let alu = ModuleSpec::new("alu", [OpKind::Add, OpKind::Sub, OpKind::Comp], 97, 1, 2.5);
        assert!(alu.implements_all([OpKind::Add, OpKind::Comp]));
        assert!(!alu.implements_all([OpKind::Add, OpKind::Mul]));
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = ModuleSpec::new("m", [OpKind::Add], 1, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_ops_rejected() {
        let _ = ModuleSpec::new("m", [], 1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "power")]
    fn negative_power_rejected() {
        let _ = ModuleSpec::new("m", [OpKind::Add], 1, 1, -0.5);
    }

    #[test]
    fn display_mentions_everything() {
        let m = ModuleSpec::new("alu", [OpKind::Add, OpKind::Sub], 97, 1, 2.5);
        let s = m.to_string();
        assert!(s.contains("alu") && s.contains("97") && s.contains("2.5"));
    }
}
