//! Module-selection policies.

use serde::{Deserialize, Serialize};

use crate::module::ModuleSpec;

/// How to choose among several modules that implement an operation.
///
/// Used to seed the synthesis heuristic with per-operation delay/power
/// estimates before binding has fixed the real module, and by the
/// baseline schedulers which do no module selection of their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SelectionPolicy {
    /// Minimize latency; ties toward smaller area.
    Fastest,
    /// Minimize area; ties toward lower latency.
    MinArea,
    /// Minimize per-cycle power; ties toward lower latency.
    MinPower,
    /// Minimize energy per execution (`power × latency`); ties toward
    /// smaller area.
    MinEnergy,
}

impl SelectionPolicy {
    /// A sortable key: smaller is preferred under this policy.
    #[must_use]
    pub fn key(self, m: &ModuleSpec) -> (f64, f64) {
        match self {
            SelectionPolicy::Fastest => (f64::from(m.latency()), f64::from(m.area())),
            SelectionPolicy::MinArea => (f64::from(m.area()), f64::from(m.latency())),
            SelectionPolicy::MinPower => (m.power(), f64::from(m.latency())),
            SelectionPolicy::MinEnergy => (m.energy(), f64::from(m.area())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_library;
    use pchls_cdfg::OpKind;

    #[test]
    fn policies_pick_expected_multipliers() {
        let l = paper_library();
        let pick = |p| {
            l.module(l.select(OpKind::Mul, p).unwrap())
                .name()
                .to_owned()
        };
        assert_eq!(pick(SelectionPolicy::Fastest), "mult_par");
        assert_eq!(pick(SelectionPolicy::MinArea), "mult_ser");
        assert_eq!(pick(SelectionPolicy::MinPower), "mult_ser");
        // serial: 2.7*4 = 10.8, parallel: 8.1*2 = 16.2
        assert_eq!(pick(SelectionPolicy::MinEnergy), "mult_ser");
    }

    #[test]
    fn fastest_add_prefers_smaller_area_on_tie() {
        let l = paper_library();
        let id = l.select(OpKind::Add, SelectionPolicy::Fastest).unwrap();
        assert_eq!(l.module(id).name(), "add"); // 87 < 97 (ALU), same latency
    }
}
