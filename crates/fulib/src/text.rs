//! A line-oriented textual exchange format for module libraries.
//!
//! ```text
//! # module <name> ops=<op,op,...> area=<u32> cycles=<u32> power=<f64>
//! library paper
//! module add   ops=+       area=87  cycles=1 power=2.5
//! module ALU   ops=+,-,>   area=97  cycles=1 power=2.5
//! module mult  ops=*       area=103 cycles=4 power=2.7
//! ```

use std::fmt::Write as _;

use pchls_cdfg::OpKind;

use crate::library::{LibraryError, ModuleLibrary};
use crate::module::ModuleSpec;

/// Errors from parsing the textual library format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibraryError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLibraryError {}

impl From<LibraryError> for ParseLibraryError {
    fn from(e: LibraryError) -> Self {
        ParseLibraryError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Serializes a library to the textual format parsed by
/// [`parse_library`].
#[must_use]
pub fn write_library(library: &ModuleLibrary) -> String {
    let mut s = String::from("library pchls\n");
    for m in library.modules() {
        let ops: Vec<&str> = m.ops().iter().map(|k| k.symbol()).collect();
        let _ = writeln!(
            s,
            "module {} ops={} area={} cycles={} power={}",
            m.name(),
            ops.join(","),
            m.area(),
            m.latency(),
            m.power()
        );
    }
    s
}

/// Parses the textual library format.
///
/// # Errors
///
/// Returns [`ParseLibraryError`] for malformed lines, unknown operation
/// symbols, or duplicate module names.
///
/// # Example
///
/// ```
/// let lib = pchls_fulib::paper_library();
/// let text = pchls_fulib::write_library(&lib);
/// let back = pchls_fulib::parse_library(&text)?;
/// assert_eq!(back, lib);
/// # Ok::<(), pchls_fulib::ParseLibraryError>(())
/// ```
pub fn parse_library(text: &str) -> Result<ModuleLibrary, ParseLibraryError> {
    let mut saw_header = false;
    let mut modules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line");
        if !saw_header {
            if head != "library" {
                return Err(err(lineno, "expected `library <name>` header"));
            }
            saw_header = true;
            continue;
        }
        if head != "module" {
            return Err(err(lineno, format!("expected `module`, found `{head}`")));
        }
        let name = tok
            .next()
            .ok_or_else(|| err(lineno, "missing module name"))?;
        let mut ops: Option<Vec<OpKind>> = None;
        let mut area: Option<u32> = None;
        let mut cycles: Option<u32> = None;
        let mut power: Option<f64> = None;
        for field in tok {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected key=value, found `{field}`")))?;
            match key {
                "ops" => {
                    let parsed: Result<Vec<OpKind>, _> = value
                        .split(',')
                        .map(|s| {
                            OpKind::from_mnemonic(s)
                                .ok_or_else(|| err(lineno, format!("unknown op `{s}`")))
                        })
                        .collect();
                    ops = Some(parsed?);
                }
                "area" => {
                    area = Some(
                        value
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid area `{value}`")))?,
                    );
                }
                "cycles" => {
                    cycles = Some(
                        value
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid cycle count `{value}`")))?,
                    );
                }
                "power" => {
                    power = Some(
                        value
                            .parse()
                            .map_err(|_| err(lineno, format!("invalid power `{value}`")))?,
                    );
                }
                other => return Err(err(lineno, format!("unknown field `{other}`"))),
            }
        }
        let ops = ops.ok_or_else(|| err(lineno, "missing ops="))?;
        let area = area.ok_or_else(|| err(lineno, "missing area="))?;
        let cycles = cycles.ok_or_else(|| err(lineno, "missing cycles="))?;
        let power = power.ok_or_else(|| err(lineno, "missing power="))?;
        if ops.is_empty() {
            return Err(err(lineno, "module implements no ops"));
        }
        if cycles == 0 {
            return Err(err(lineno, "cycles must be at least 1"));
        }
        if !(power.is_finite() && power >= 0.0) {
            return Err(err(lineno, "power must be finite and non-negative"));
        }
        modules.push(ModuleSpec::new(name, ops, area, cycles, power));
    }
    if !saw_header {
        return Err(err(0, "empty document"));
    }
    Ok(ModuleLibrary::new(modules)?)
}

fn err(line: usize, message: impl Into<String>) -> ParseLibraryError {
    ParseLibraryError {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_library;

    #[test]
    fn round_trip_paper_library() {
        let lib = paper_library();
        let text = write_library(&lib);
        let back = parse_library(&text).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# cmt\n\nlibrary t\n# another\nmodule a ops=+ area=1 cycles=1 power=0.5\n";
        let lib = parse_library(text).unwrap();
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn missing_header_reported() {
        let e = parse_library("module a ops=+ area=1 cycles=1 power=1\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unknown_op_reported() {
        let e = parse_library("library t\nmodule a ops=%% area=1 cycles=1 power=1\n").unwrap_err();
        assert!(e.message.contains("%%"));
    }

    #[test]
    fn missing_field_reported() {
        let e = parse_library("library t\nmodule a ops=+ area=1 cycles=1\n").unwrap_err();
        assert!(e.message.contains("power"));
    }

    #[test]
    fn zero_cycles_rejected() {
        let e = parse_library("library t\nmodule a ops=+ area=1 cycles=0 power=1\n").unwrap_err();
        assert!(e.message.contains("cycles"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let text = "library t\nmodule a ops=+ area=1 cycles=1 power=1\nmodule a ops=- area=1 cycles=1 power=1\n";
        let e = parse_library(text).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_field_rejected() {
        let e = parse_library("library t\nmodule a ops=+ area=1 cycles=1 power=1 volts=3\n")
            .unwrap_err();
        assert!(e.message.contains("volts"));
    }
}
