//! Module library container and queries.

use std::fmt;

use serde::{Deserialize, Serialize};

use pchls_cdfg::OpKind;

use crate::module::ModuleSpec;
use crate::selection::SelectionPolicy;

/// Index of a module within one [`ModuleLibrary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(usize);

impl ModuleId {
    /// Raw index into the library's module list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Errors from library validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LibraryError {
    /// Two modules share a name.
    DuplicateModule(String),
    /// No module in the library implements the given operation.
    Uncovered(OpKind),
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::DuplicateModule(n) => write!(f, "duplicate module name `{n}`"),
            LibraryError::Uncovered(k) => write!(f, "no module implements `{k}`"),
        }
    }
}

impl std::error::Error for LibraryError {}

/// An ordered collection of [`ModuleSpec`]s with unique names.
///
/// # Example
///
/// ```
/// use pchls_fulib::{ModuleLibrary, ModuleSpec, OpKind};
///
/// # fn main() -> Result<(), pchls_fulib::LibraryError> {
/// let lib = ModuleLibrary::new([
///     ModuleSpec::new("add", [OpKind::Add], 87, 1, 2.5),
///     ModuleSpec::new("io_in", [OpKind::Input], 16, 1, 0.2),
///     ModuleSpec::new("io_out", [OpKind::Output], 16, 1, 1.7),
/// ])?;
/// assert_eq!(lib.len(), 3);
/// assert!(lib.covers(OpKind::Add));
/// assert!(!lib.covers(OpKind::Mul));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleLibrary {
    modules: Vec<ModuleSpec>,
}

impl ModuleLibrary {
    /// Builds a library from modules, checking name uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::DuplicateModule`] if two modules share a
    /// name.
    pub fn new(
        modules: impl IntoIterator<Item = ModuleSpec>,
    ) -> Result<ModuleLibrary, LibraryError> {
        let modules: Vec<ModuleSpec> = modules.into_iter().collect();
        let mut names: Vec<&str> = modules.iter().map(ModuleSpec::name).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(LibraryError::DuplicateModule(w[0].to_owned()));
        }
        Ok(ModuleLibrary { modules })
    }

    /// Number of module types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// All modules in declaration order.
    #[must_use]
    pub fn modules(&self) -> &[ModuleSpec] {
        &self.modules
    }

    /// All module ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.modules.len()).map(ModuleId)
    }

    /// The module with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this library.
    #[must_use]
    pub fn module(&self, id: ModuleId) -> &ModuleSpec {
        &self.modules[id.0]
    }

    /// Looks a module up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name() == name)
            .map(ModuleId)
    }

    /// Ids of all modules that implement `kind`, in declaration order.
    pub fn candidates(&self, kind: OpKind) -> impl Iterator<Item = ModuleId> + '_ {
        self.modules
            .iter()
            .enumerate()
            .filter(move |(_, m)| m.implements(kind))
            .map(|(i, _)| ModuleId(i))
    }

    /// Whether any module implements `kind`.
    #[must_use]
    pub fn covers(&self, kind: OpKind) -> bool {
        self.candidates(kind).next().is_some()
    }

    /// Checks that every kind in `kinds` is implemented by some module.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Uncovered`] naming the first missing kind.
    pub fn check_coverage(
        &self,
        kinds: impl IntoIterator<Item = OpKind>,
    ) -> Result<(), LibraryError> {
        for k in kinds {
            if !self.covers(k) {
                return Err(LibraryError::Uncovered(k));
            }
        }
        Ok(())
    }

    /// Selects the preferred module for `kind` under `policy`, or `None`
    /// if nothing implements it. Ties break toward earlier declaration.
    #[must_use]
    pub fn select(&self, kind: OpKind, policy: SelectionPolicy) -> Option<ModuleId> {
        self.candidates(kind).min_by(|&a, &b| {
            policy
                .key(self.module(a))
                .partial_cmp(&policy.key(self.module(b)))
                .expect("module metrics are finite")
        })
    }

    /// The fastest latency available for `kind`, if covered.
    #[must_use]
    pub fn fastest_latency(&self, kind: OpKind) -> Option<u32> {
        self.candidates(kind)
            .map(|id| self.module(id).latency())
            .min()
    }

    /// Modules for `kind` that are pareto-optimal in
    /// (area, latency, power): no other candidate is at least as good in
    /// all three metrics and strictly better in one.
    #[must_use]
    pub fn pareto_candidates(&self, kind: OpKind) -> Vec<ModuleId> {
        let cands: Vec<ModuleId> = self.candidates(kind).collect();
        cands
            .iter()
            .copied()
            .filter(|&a| {
                let ma = self.module(a);
                !cands.iter().any(|&b| {
                    if a == b {
                        return false;
                    }
                    let mb = self.module(b);
                    let no_worse = mb.area() <= ma.area()
                        && mb.latency() <= ma.latency()
                        && mb.power() <= ma.power();
                    let better = mb.area() < ma.area()
                        || mb.latency() < ma.latency()
                        || mb.power() < ma.power();
                    no_worse && better
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> ModuleLibrary {
        crate::paper_library()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = ModuleLibrary::new([
            ModuleSpec::new("a", [OpKind::Add], 1, 1, 1.0),
            ModuleSpec::new("a", [OpKind::Sub], 1, 1, 1.0),
        ])
        .unwrap_err();
        assert_eq!(err, LibraryError::DuplicateModule("a".to_owned()));
    }

    #[test]
    fn by_name_finds_modules() {
        let l = lib();
        let id = l.by_name("ALU").unwrap();
        assert_eq!(l.module(id).area(), 97);
        assert!(l.by_name("nope").is_none());
    }

    #[test]
    fn candidates_for_add_include_alu() {
        let l = lib();
        let names: Vec<&str> = l
            .candidates(OpKind::Add)
            .map(|id| l.module(id).name())
            .collect();
        assert_eq!(names, vec!["add", "ALU"]);
    }

    #[test]
    fn coverage_check() {
        let l = lib();
        assert!(l.check_coverage(OpKind::ALL).is_ok());
        let partial = ModuleLibrary::new([ModuleSpec::new("a", [OpKind::Add], 1, 1, 1.0)]).unwrap();
        assert_eq!(
            partial.check_coverage([OpKind::Add, OpKind::Mul]),
            Err(LibraryError::Uncovered(OpKind::Mul))
        );
    }

    #[test]
    fn fastest_latency_for_mul_is_parallel() {
        assert_eq!(lib().fastest_latency(OpKind::Mul), Some(2));
        assert_eq!(lib().fastest_latency(OpKind::Add), Some(1));
    }

    #[test]
    fn pareto_multiplier_keeps_both() {
        // Serial mult: smaller+lower power; parallel: faster. Both pareto.
        let l = lib();
        let p = l.pareto_candidates(OpKind::Mul);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn pareto_add_prefers_dedicated_adder() {
        // add (87) dominates ALU (97) for pure additions: same latency and
        // power, smaller area.
        let l = lib();
        let p = l.pareto_candidates(OpKind::Add);
        assert_eq!(p.len(), 1);
        assert_eq!(l.module(p[0]).name(), "add");
    }
}
