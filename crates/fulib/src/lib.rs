//! Functional-unit module library for power-constrained high-level
//! synthesis.
//!
//! A [`ModuleLibrary`] describes the RT-level components available to the
//! synthesizer: each [`ModuleSpec`] implements a set of operations
//! ([`OpKind`]s) with a silicon area, an execution latency in clock
//! cycles, and a power draw per clock cycle while executing. Module
//! selection is a first-class part of the paper's design space — e.g. the
//! slow-but-small serial multiplier versus the fast-but-big parallel
//! multiplier, or folding `+`, `-` and `>` onto one ALU.
//!
//! [`paper_library`] reproduces Table 1 of the paper exactly.
//!
//! # Example
//!
//! ```
//! use pchls_fulib::{paper_library, SelectionPolicy};
//! use pchls_cdfg::OpKind;
//!
//! let lib = paper_library();
//! let fast = lib.select(OpKind::Mul, SelectionPolicy::Fastest).unwrap();
//! assert_eq!(lib.module(fast).name(), "mult_par");
//! let small = lib.select(OpKind::Mul, SelectionPolicy::MinArea).unwrap();
//! assert_eq!(lib.module(small).name(), "mult_ser");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod library;
mod module;
mod paper;
mod selection;
mod text;

pub use library::{LibraryError, ModuleId, ModuleLibrary};
pub use module::ModuleSpec;
pub use paper::paper_library;
pub use selection::SelectionPolicy;
pub use text::{parse_library, write_library, ParseLibraryError};

// Re-exported so downstream crates name one source of truth for op kinds.
pub use pchls_cdfg::OpKind;
