//! Peukert-law battery.

use serde::{Deserialize, Serialize};

use crate::models::{BatteryModel, Lifetime, MAX_ITERATIONS};

/// A battery obeying Peukert's law: drawing power `p` for one cycle costs
/// `p^k` effective charge, with exponent `k > 1`, so the same energy
/// delivered in spikes exhausts the battery sooner than delivered flat.
///
/// Typical exponents: ~1.05 for high-quality lithium cells, 1.2–1.4 for
/// cheap lead-acid-like chemistry — the "low-priced (low-quality)
/// battery" of the paper's introduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeukertBattery {
    capacity: f64,
    exponent: f64,
}

impl PeukertBattery {
    /// A battery with `capacity` effective charge and Peukert exponent
    /// `exponent`.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > 0` and `exponent ≥ 1`.
    #[must_use]
    pub fn new(capacity: f64, exponent: f64) -> PeukertBattery {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "Peukert exponent must be at least 1"
        );
        PeukertBattery { capacity, exponent }
    }

    /// A high-quality cell (`k = 1.05`).
    #[must_use]
    pub fn high_quality(capacity: f64) -> PeukertBattery {
        PeukertBattery::new(capacity, 1.05)
    }

    /// A low-quality cell (`k = 1.3`) — the battery the paper's low-cost
    /// systems are stuck with.
    #[must_use]
    pub fn low_quality(capacity: f64) -> PeukertBattery {
        PeukertBattery::new(capacity, 1.3)
    }

    /// The Peukert exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl BatteryModel for PeukertBattery {
    fn lifetime(&self, profile: &[f64]) -> Lifetime {
        let per_iteration: f64 = profile.iter().map(|&p| p.powf(self.exponent)).sum();
        let delivered_per_iteration: f64 = profile.iter().sum();
        if per_iteration <= 0.0 || profile.is_empty() {
            return Lifetime {
                iterations: MAX_ITERATIONS,
                extra_cycles: 0,
                delivered_charge: 0.0,
            };
        }
        let full = ((self.capacity / per_iteration) as u64).min(MAX_ITERATIONS);
        let mut remaining = self.capacity - full as f64 * per_iteration;
        let mut delivered = full as f64 * delivered_per_iteration;
        let mut extra = 0u64;
        for &p in profile {
            let cost = p.powf(self.exponent);
            if remaining < cost {
                break;
            }
            remaining -= cost;
            delivered += p;
            extra += 1;
        }
        Lifetime {
            iterations: full,
            extra_cycles: extra,
            delivered_charge: delivered,
        }
    }

    fn name(&self) -> &str {
        "peukert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spikes_cost_more_than_flat() {
        let b = PeukertBattery::low_quality(1e6);
        let spiky = vec![20.0, 0.0];
        let flat = vec![10.0, 10.0]; // same energy per iteration
        let s = b.lifetime(&spiky);
        let f = b.lifetime(&flat);
        assert!(
            f.total_cycles(2) > s.total_cycles(2),
            "flat {} !> spiky {}",
            f.total_cycles(2),
            s.total_cycles(2)
        );
    }

    #[test]
    fn exponent_one_is_ideal() {
        let p = PeukertBattery::new(1000.0, 1.0);
        let i = crate::IdealBattery::new(1000.0);
        let profile = vec![7.0, 3.0, 0.0, 12.0];
        assert_eq!(
            p.lifetime(&profile).iterations,
            i.lifetime(&profile).iterations
        );
    }

    #[test]
    fn low_quality_punishes_spikes_harder() {
        let profile_spiky = vec![30.0, 0.0, 0.0];
        let profile_flat = vec![10.0, 10.0, 10.0];
        let hq = PeukertBattery::high_quality(1e6);
        let lq = PeukertBattery::low_quality(1e6);
        let hq_gain = hq
            .lifetime(&profile_flat)
            .ratio_to(&hq.lifetime(&profile_spiky), 3);
        let lq_gain = lq
            .lifetime(&profile_flat)
            .ratio_to(&lq.lifetime(&profile_spiky), 3);
        assert!(
            lq_gain > hq_gain,
            "low quality gain {lq_gain} !> high quality gain {hq_gain}"
        );
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn sub_unit_exponent_rejected() {
        let _ = PeukertBattery::new(10.0, 0.9);
    }
}
