//! The ideal coulomb-counting battery.

use serde::{Deserialize, Serialize};

use crate::models::{BatteryModel, Lifetime, MAX_ITERATIONS};

/// An ideal battery: a fixed charge reservoir drained by exactly the
/// power drawn, independent of the profile's shape.
///
/// Under this model, peak-flattening buys *nothing* — it is the control
/// case that isolates what the non-ideal models add.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealBattery {
    capacity: f64,
}

impl IdealBattery {
    /// A battery holding `capacity` charge units.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and positive.
    #[must_use]
    pub fn new(capacity: f64) -> IdealBattery {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        IdealBattery { capacity }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl BatteryModel for IdealBattery {
    fn lifetime(&self, profile: &[f64]) -> Lifetime {
        let per_iteration: f64 = profile.iter().sum();
        if per_iteration <= 0.0 || profile.is_empty() {
            return Lifetime {
                iterations: MAX_ITERATIONS,
                extra_cycles: 0,
                delivered_charge: 0.0,
            };
        }
        let full = ((self.capacity / per_iteration) as u64).min(MAX_ITERATIONS);
        let mut remaining = self.capacity - full as f64 * per_iteration;
        let mut extra = 0u64;
        let mut delivered = full as f64 * per_iteration;
        for &p in profile {
            if remaining < p {
                break;
            }
            remaining -= p;
            delivered += p;
            extra += 1;
        }
        Lifetime {
            iterations: full,
            extra_cycles: extra,
            delivered_charge: delivered,
        }
    }

    fn name(&self) -> &str {
        "ideal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_does_not_matter() {
        let b = IdealBattery::new(1000.0);
        let spiky = vec![10.0, 0.0];
        let flat = vec![5.0, 5.0];
        let a = b.lifetime(&spiky);
        let c = b.lifetime(&flat);
        assert_eq!(a.iterations, c.iterations);
        assert_eq!(a.iterations, 100);
    }

    #[test]
    fn partial_iteration_counts_extra_cycles() {
        let b = IdealBattery::new(25.0);
        // 10 per iteration of 2 cycles: 2 full iterations, then cycle 0
        // of the third (5 remaining >= 5... draws 5) — remaining 0, next needs 5.
        let l = b.lifetime(&[5.0, 5.0]);
        assert_eq!(l.iterations, 2);
        assert_eq!(l.extra_cycles, 1);
        assert!((l.delivered_charge - 25.0).abs() < 1e-9);
    }

    #[test]
    fn zero_profile_saturates() {
        let b = IdealBattery::new(10.0);
        assert_eq!(b.lifetime(&[0.0, 0.0]).iterations, MAX_ITERATIONS);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn non_positive_capacity_rejected() {
        let _ = IdealBattery::new(0.0);
    }
}
