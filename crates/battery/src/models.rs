//! The battery model trait and lifetime result.

use serde::{Deserialize, Serialize};

/// How long a battery lasted under a repeated power profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lifetime {
    /// Complete profile repetitions before cutoff.
    pub iterations: u64,
    /// Additional cycles survived inside the final, incomplete
    /// repetition.
    pub extra_cycles: u64,
    /// Charge actually delivered to the load before cutoff.
    pub delivered_charge: f64,
}

impl Lifetime {
    /// Total cycles survived (`iterations × profile length + extra`).
    #[must_use]
    pub fn total_cycles(&self, profile_len: usize) -> u64 {
        self.iterations * profile_len as u64 + self.extra_cycles
    }

    /// Lifetime ratio against a baseline (`> 1` means this one lasted
    /// longer). Compares total cycles for the same profile length.
    #[must_use]
    pub fn ratio_to(&self, baseline: &Lifetime, profile_len: usize) -> f64 {
        self.total_cycles(profile_len) as f64 / baseline.total_cycles(profile_len).max(1) as f64
    }
}

/// A battery that can simulate discharging under a cyclic per-cycle power
/// profile.
///
/// Implementations replay `profile` until their cutoff condition, with a
/// hard stop (counted as cutoff) once delivered charge would exceed any
/// physically available charge. Power and current are identified (unit
/// supply voltage), matching the paper's unit-less power numbers.
pub trait BatteryModel {
    /// Simulates repeated executions of `profile` until cutoff.
    ///
    /// An all-zero or empty profile yields a lifetime of `u64::MAX`
    /// iterations conceptually; implementations return a saturated value
    /// instead of looping forever.
    fn lifetime(&self, profile: &[f64]) -> Lifetime;

    /// Human-readable model name for reports.
    fn name(&self) -> &str;
}

/// Iteration cap so that degenerate (zero-power) profiles terminate.
pub(crate) const MAX_ITERATIONS: u64 = 10_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cycles_combines_parts() {
        let l = Lifetime {
            iterations: 3,
            extra_cycles: 2,
            delivered_charge: 0.0,
        };
        assert_eq!(l.total_cycles(10), 32);
    }

    #[test]
    fn ratio_is_relative() {
        let a = Lifetime {
            iterations: 12,
            extra_cycles: 0,
            delivered_charge: 0.0,
        };
        let b = Lifetime {
            iterations: 10,
            extra_cycles: 0,
            delivered_charge: 0.0,
        };
        assert!((a.ratio_to(&b, 5) - 1.2).abs() < 1e-12);
    }
}
