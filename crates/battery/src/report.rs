//! Lifetime comparison of two power profiles on one battery.

use serde::{Deserialize, Serialize};

use crate::models::{BatteryModel, Lifetime};

/// Lifetimes of a baseline (typically power-oblivious) and a flattened
/// (power-constrained) profile on the same battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeComparison {
    /// Model name.
    pub model: String,
    /// Lifetime of the baseline profile.
    pub baseline: Lifetime,
    /// Lifetime of the flattened profile.
    pub flattened: Lifetime,
    /// `flattened / baseline` total-cycle ratio (`> 1` = extension).
    pub extension: f64,
}

/// Runs both profiles on `model` and reports the lifetime extension.
///
/// The profiles may have different lengths (a power-constrained schedule
/// is usually longer); the comparison is on *total clock cycles
/// survived*, so a longer-but-flatter schedule must overcome its own
/// overhead to show a gain — exactly the trade-off a designer faces.
#[must_use]
pub fn compare_profiles(
    model: &dyn BatteryModel,
    baseline: &[f64],
    flattened: &[f64],
) -> LifetimeComparison {
    let b = model.lifetime(baseline);
    let f = model.lifetime(flattened);
    let b_cycles = b.total_cycles(baseline.len()).max(1);
    let f_cycles = f.total_cycles(flattened.len());
    LifetimeComparison {
        model: model.name().to_owned(),
        baseline: b,
        flattened: f,
        extension: f_cycles as f64 / b_cycles as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdealBattery, RateCapacityBattery};

    #[test]
    fn ideal_battery_shows_no_real_extension() {
        let m = IdealBattery::new(100_000.0);
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!((cmp.extension - 1.0).abs() < 0.01);
    }

    #[test]
    fn rate_capacity_shows_extension() {
        let m = RateCapacityBattery::low_quality(100_000.0);
        let spiky = vec![30.0, 0.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!(cmp.extension > 1.05, "extension {}", cmp.extension);
        assert_eq!(cmp.model, "rate-capacity");
    }

    #[test]
    fn longer_flat_schedule_must_pay_its_overhead() {
        // A flattened profile that is twice as long with the same average
        // power per cycle: the ideal model sees no extension, because the
        // comparison is on total cycles survived, not iterations.
        let m = IdealBattery::new(100_000.0);
        let spiky = vec![20.0, 0.0];
        let flat = vec![10.0, 10.0, 10.0, 10.0];
        let cmp = compare_profiles(&m, &spiky, &flat);
        assert!((cmp.extension - 1.0).abs() < 0.01);
    }
}
